//! The [`Value`] type: one element of the extended domain `D̂ = D ∪ {⊥}`.

use std::fmt;

/// A concrete attribute value, including the paper's explicit
/// *non-existence* marker `⊥` ([`Value::Null`]): the statement that the
/// corresponding property does not exist for the described object (distinct
/// from "unknown").
///
/// `Value` implements `Eq`, `Ord` and `Hash` for *all* variants — floats are
/// compared by their canonicalized bit pattern (`NaN`s are unified, `-0.0`
/// equals `0.0`), which gives the total order needed for sorting keys,
/// blocking and deduplication of distribution supports.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Value {
    /// Non-existence, written `⊥` in the paper.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Real(f64),
    /// A UTF-8 string.
    Text(String),
}

impl Value {
    /// Whether this is the non-existence marker `⊥`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A reference to the string content, if this is a text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content as `f64`, if this is an `Int` or `Real`.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// The boolean content, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render the value for key construction and display. `⊥` renders as the
    /// empty string so that sorting keys derived from non-existent values
    /// sort first (mirroring Fig. 13, where `t43`'s `Joh` key comes from a
    /// `⊥` job).
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            // Render through the same canonicalization as Eq/Hash
            // (`-0.0` ⇒ `0.0`, one NaN), so equal values always render
            // equally — interned keys resolve symbols to one
            // representative per equality class and rely on this.
            Value::Real(r) => format!("{}", f64::from_bits(Self::real_bits(*r))),
            Value::Text(s) => s.clone(),
        }
    }

    /// Canonical bits for float hashing/equality: NaNs unified, `-0.0 → 0.0`.
    fn real_bits(r: f64) -> u64 {
        if r.is_nan() {
            f64::NAN.to_bits()
        } else if r == 0.0 {
            0.0_f64.to_bits()
        } else {
            r.to_bits()
        }
    }

    /// Discriminant rank used for the cross-variant total order.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Real(_) => 3,
            Value::Text(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Real(a), Value::Real(b)) => Self::real_bits(*a) == Self::real_bits(*b),
            (Value::Text(a), Value::Text(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u8(self.rank());
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Real(r) => Self::real_bits(*r).hash(state),
            Value::Text(s) => s.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Real(a), Value::Real(b)) => {
                // total_cmp after canonicalization keeps Eq/Ord consistent.
                f64::from_bits(Self::real_bits(*a)).total_cmp(&f64::from_bits(Self::real_bits(*b)))
            }
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "⊥"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_values_render_equally() {
        // Eq unifies -0.0/0.0 and NaNs; render must follow, or equal
        // values would produce different sorting/blocking keys.
        assert_eq!(Value::Real(0.0), Value::Real(-0.0));
        assert_eq!(Value::Real(-0.0).render(), Value::Real(0.0).render());
        assert_eq!(Value::Real(-0.0).render(), "0");
        assert_eq!(
            Value::Real(f64::NAN).render(),
            Value::Real(-f64::NAN).render()
        );
    }

    #[test]
    fn null_identity() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Null.to_string(), "⊥");
        assert_eq!(Value::Null.render(), "");
    }

    #[test]
    fn float_equality_canonicalized() {
        assert_eq!(Value::Real(f64::NAN), Value::Real(f64::NAN));
        assert_eq!(Value::Real(0.0), Value::Real(-0.0));
        assert_ne!(Value::Real(1.0), Value::Real(2.0));
        assert_eq!(hash_of(&Value::Real(0.0)), hash_of(&Value::Real(-0.0)));
        assert_eq!(
            hash_of(&Value::Real(f64::NAN)),
            hash_of(&Value::Real(f64::NAN))
        );
    }

    #[test]
    fn cross_variant_inequality() {
        assert_ne!(Value::Int(1), Value::Real(1.0));
        assert_ne!(Value::Text("1".into()), Value::Int(1));
        assert_ne!(Value::Null, Value::Text(String::new()));
    }

    #[test]
    fn total_order_is_consistent() {
        let mut vals = [
            Value::Text("b".into()),
            Value::Int(5),
            Value::Null,
            Value::Real(2.5),
            Value::Bool(true),
            Value::Text("a".into()),
            Value::Int(-1),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Int(-1));
        assert_eq!(vals[3], Value::Int(5));
        assert_eq!(vals[4], Value::Real(2.5));
        assert_eq!(vals[5], Value::Text("a".into()));
        assert_eq!(vals[6], Value::Text("b".into()));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("Tim"), Value::Text("Tim".into()));
        assert_eq!(Value::from(3_i32), Value::Int(3));
        assert_eq!(Value::from(3_i64), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Real(2.5));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Int(3).as_text(), None);
        assert_eq!(Value::Int(3).as_number(), Some(3.0));
        assert_eq!(Value::Real(2.5).as_number(), Some(2.5));
        assert_eq!(Value::Text("x".into()).as_number(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Null.as_bool(), None);
    }

    #[test]
    fn render_for_keys() {
        assert_eq!(Value::Text("John".into()).render(), "John");
        assert_eq!(Value::Int(42).render(), "42");
        assert_eq!(Value::Bool(false).render(), "false");
    }
}
