//! Finite attribute domains and pattern values.
//!
//! The ULDB model "does not support an infinite number of alternatives"; the
//! paper's workaround (Section IV-B) is pattern values like `mu*`,
//! representing a uniform distribution over all domain values starting with
//! `mu`. A [`Domain`] is the finite dictionary such patterns expand against.

use crate::error::ModelError;
use crate::pvalue::PValue;

/// A named, sorted dictionary of domain values (e.g. all job titles).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Domain {
    name: String,
    /// Sorted, deduplicated values.
    values: Vec<String>,
}

impl Domain {
    /// Build a domain from an iterator of values (sorted and deduplicated).
    pub fn new<I, S>(name: &str, values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut vals: Vec<String> = values.into_iter().map(|s| s.as_ref().to_string()).collect();
        vals.sort();
        vals.dedup();
        Self {
            name: name.to_string(),
            values: vals,
        }
    }

    /// The domain's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All values, sorted.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether `v` is a member.
    pub fn contains(&self, v: &str) -> bool {
        self.values.binary_search_by(|x| x.as_str().cmp(v)).is_ok()
    }

    /// All values with the given prefix (binary-search range scan,
    /// `O(log n + m)`).
    pub fn with_prefix(&self, prefix: &str) -> &[String] {
        let start = self.values.partition_point(|v| v.as_str() < prefix);
        let end = start
            + self.values[start..]
                .iter()
                .take_while(|v| v.starts_with(prefix))
                .count();
        &self.values[start..end]
    }

    /// Expand a pattern into a [`PValue`]:
    ///
    /// * `"mu*"` → uniform distribution over all members starting with `mu`
    ///   (the paper's `t31.job` example);
    /// * `"musician"` (no `*`) → certain value, required to be a member.
    ///
    /// Errors with [`ModelError::PatternNoMatch`] when nothing matches.
    pub fn expand_pattern(&self, pattern: &str) -> Result<PValue, ModelError> {
        let no_match = || ModelError::PatternNoMatch {
            pattern: pattern.to_string(),
            domain: self.name.clone(),
        };
        if let Some(prefix) = pattern.strip_suffix('*') {
            let matches = self.with_prefix(prefix);
            if matches.is_empty() {
                return Err(no_match());
            }
            PValue::uniform(matches.iter().map(String::as_str))
        } else if self.contains(pattern) {
            Ok(PValue::certain(pattern))
        } else {
            Err(no_match())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs() -> Domain {
        Domain::new(
            "jobs",
            [
                "baker",
                "confectioner",
                "engineer",
                "machinist",
                "mechanic",
                "museum guide",
                "musician",
                "pilot",
                "pianist",
            ],
        )
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let d = Domain::new("d", ["b", "a", "b", "c"]);
        assert_eq!(d.values(), &["a", "b", "c"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.name(), "d");
    }

    #[test]
    fn membership() {
        let d = jobs();
        assert!(d.contains("pilot"));
        assert!(!d.contains("astronaut"));
    }

    #[test]
    fn prefix_scan() {
        let d = jobs();
        assert_eq!(d.with_prefix("mu"), &["museum guide", "musician"]);
        assert_eq!(d.with_prefix("pi"), &["pianist", "pilot"]);
        assert!(d.with_prefix("zz").is_empty());
        // Full-domain scan with the empty prefix.
        assert_eq!(d.with_prefix("").len(), d.len());
    }

    #[test]
    fn mu_star_pattern_expands_uniformly() {
        // The paper: 'mu*' represents a uniform distribution over all
        // possible jobs starting with 'mu'.
        let d = jobs();
        let v = d.expand_pattern("mu*").unwrap();
        assert_eq!(v.support_len(), 2);
        for (_, p) in v.alternatives() {
            assert!((p - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_pattern_requires_membership() {
        let d = jobs();
        assert!(d.expand_pattern("pilot").unwrap().is_certain());
        assert!(matches!(
            d.expand_pattern("astronaut"),
            Err(ModelError::PatternNoMatch { .. })
        ));
    }

    #[test]
    fn unmatched_prefix_errors() {
        let d = jobs();
        assert!(matches!(
            d.expand_pattern("zz*"),
            Err(ModelError::PatternNoMatch { .. })
        ));
    }

    #[test]
    fn empty_domain() {
        let d = Domain::new("empty", Vec::<String>::new());
        assert!(d.is_empty());
        assert!(d.expand_pattern("a*").is_err());
    }
}
