//! Probabilistic relational data model — the substrate of *Duplicate
//! Detection in Probabilistic Data* (Panse et al., ICDE 2010).
//!
//! A probabilistic database is a pair `PDB = (W, P)` of possible worlds and a
//! probability distribution over them. Because worlds overlap heavily (and
//! may be infinite in number), this crate implements the succinct
//! representation the paper works with:
//!
//! * **Attribute-value-level uncertainty** — [`PValue`]: a categorical
//!   distribution over domain values with an *implicit non-existence mass*
//!   (`⊥`, [`Value::Null`]): if the alternatives of a value sum to `p < 1`,
//!   the remaining `1 − p` is the probability that the property does not
//!   exist (e.g. tuple `t11` of Fig. 4 is jobless with probability 0.1).
//! * **Tuple-level uncertainty** — [`ProbTuple::probability`]: the likelihood
//!   that a tuple belongs to its relation. Per the paper's Section IV,
//!   membership must *not* influence duplicate detection; the
//!   [`condition`] module implements the conditioning/scaling this requires.
//! * **Dependencies between attribute values** — [`XTuple`]: a Trio-style
//!   x-tuple of mutually exclusive alternative tuples, each with its own
//!   probability; *maybe* x-tuples (probability sum < 1, marked `?` in the
//!   paper's figures) are supported, as are per-attribute distributions
//!   inside an alternative (e.g. the `mu*` pattern value of tuple `t31`).
//! * **Possible worlds** — [`world`]: lazy enumeration of the worlds induced
//!   by a set of x-tuples, their probabilities, and conditioning on the
//!   event *B* that all considered tuples exist (Fig. 7).
//! * **Value interning** — [`intern`]: a [`ValuePool`] mapping each distinct
//!   [`Value`] to a dense `u32` [`Symbol`], so the matching hot path,
//!   similarity caches and blocking keys can work with integer comparisons
//!   instead of cloning and hashing strings.
//!
//! The model is deliberately self-contained (no external DB) and
//! deterministic; everything needed by the matching, decision and reduction
//! layers lives here.
//!
//! # Example
//!
//! Interning gives every distinct value a dense [`Symbol`]; the
//! [`KeyPool`] sidecar does the same for rendered key prefixes:
//!
//! ```
//! use probdedup_model::{KeyPool, Value, ValuePool};
//!
//! let mut pool = ValuePool::new();
//! let tim = pool.intern(&Value::from("Tim"));
//! assert_eq!(pool.intern(&Value::from("Tim")), tim); // idempotent
//! assert_eq!(pool.resolve(tim), &Value::from("Tim"));
//!
//! let mut keys = KeyPool::new();
//! let prefix = keys.prefix_of(&pool, tim, 2); // rendered once, cached
//! assert_eq!(keys.resolve(prefix), "Ti");
//! assert_eq!(keys.render_count(), 1);
//! keys.prefix_of(&pool, tim, 2);
//! assert_eq!(keys.render_count(), 1); // cache hit: no second render
//! ```

pub mod condition;
pub mod convert;
pub mod domain;
pub mod error;
pub mod format;
pub mod ids;
pub mod intern;
pub mod lineage;
pub mod pvalue;
pub mod relation;
pub mod sample;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod tuple;
pub mod util;
pub mod value;
pub mod world;
pub mod xtuple;

pub use condition::{existence_event_probability, normalized_alternative_probs};
pub use domain::Domain;
pub use error::ModelError;
pub use ids::{SourceId, TupleHandle};
pub use intern::{
    shard_of_key, stable_key_hash, KeyPool, KeyRanks, KeySymbol, PoolSnapshot, Symbol, SymbolMap,
    ValuePool,
};
pub use lineage::{AlternativeSets, MutexGroups};
pub use pvalue::PValue;
pub use relation::{Relation, XRelation};
pub use sample::WorldSampler;
pub use schema::{AttrType, Schema};
pub use snapshot::SnapshotError;
pub use tuple::ProbTuple;
pub use value::Value;
pub use world::{World, WorldIter};
pub use xtuple::{XAlternative, XTuple};
