//! Descriptive statistics of probabilistic relations — used by the
//! experiment harness to characterize synthetic datasets and by examples to
//! show what a dataset looks like.

use crate::relation::{Relation, XRelation};
use crate::world::world_count;
use crate::xtuple::XTuple;

/// Uncertainty profile of an x-relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationStats {
    /// Number of x-tuples.
    pub tuples: usize,
    /// Total number of alternatives across all x-tuples.
    pub alternatives: usize,
    /// Maximum alternatives of a single x-tuple.
    pub max_alternatives: usize,
    /// Number of maybe x-tuples (`p(t) < 1`).
    pub maybe_tuples: usize,
    /// Number of attribute values (across alternatives) that are uncertain
    /// distributions rather than certain values.
    pub uncertain_values: usize,
    /// Number of attribute values that are certain ⊥.
    pub null_values: usize,
    /// Mean entropy (nats) over all attribute values.
    pub mean_value_entropy: f64,
    /// `log10` of the number of possible worlds (saturating).
    pub log10_worlds: f64,
}

impl RelationStats {
    /// Compute statistics for an x-relation.
    pub fn for_xrelation(r: &XRelation) -> Self {
        Self::for_xtuples(r.xtuples())
    }

    /// Compute statistics for a dependency-free relation (via its x-view).
    pub fn for_relation(r: &Relation) -> Self {
        let xs: Vec<XTuple> = r.tuples().iter().map(XTuple::from_prob_tuple).collect();
        Self::for_xtuples(&xs)
    }

    fn for_xtuples(xs: &[XTuple]) -> Self {
        let mut alternatives = 0;
        let mut max_alternatives = 0;
        let mut maybe_tuples = 0;
        let mut uncertain_values = 0;
        let mut null_values = 0;
        let mut entropy_sum = 0.0;
        let mut value_count = 0usize;
        for t in xs {
            alternatives += t.len();
            max_alternatives = max_alternatives.max(t.len());
            if t.is_maybe() {
                maybe_tuples += 1;
            }
            for a in t.alternatives() {
                for v in a.values() {
                    value_count += 1;
                    entropy_sum += v.entropy();
                    if v.is_null() {
                        null_values += 1;
                    } else if !v.is_certain() {
                        uncertain_values += 1;
                    }
                }
            }
        }
        let worlds = world_count(xs);
        Self {
            tuples: xs.len(),
            alternatives,
            max_alternatives,
            maybe_tuples,
            uncertain_values,
            null_values,
            mean_value_entropy: if value_count == 0 {
                0.0
            } else {
                entropy_sum / value_count as f64
            },
            log10_worlds: if worlds == u128::MAX {
                f64::INFINITY
            } else {
                (worlds as f64).log10()
            },
        }
    }
}

impl std::fmt::Display for RelationStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "tuples:              {}", self.tuples)?;
        writeln!(f, "alternatives:        {}", self.alternatives)?;
        writeln!(f, "max alternatives:    {}", self.max_alternatives)?;
        writeln!(f, "maybe tuples (?):    {}", self.maybe_tuples)?;
        writeln!(f, "uncertain values:    {}", self.uncertain_values)?;
        writeln!(f, "null (⊥) values:     {}", self.null_values)?;
        writeln!(
            f,
            "mean value entropy:  {:.4} nats",
            self.mean_value_entropy
        )?;
        write!(f, "log10(|worlds|):     {:.2}", self.log10_worlds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pvalue::PValue;
    use crate::schema::Schema;
    use crate::tuple::ProbTuple;
    use crate::value::Value;

    #[test]
    fn stats_of_fig5_style_relation() {
        let s = Schema::new(["name", "job"]);
        let mut r = XRelation::new(s.clone());
        r.push(
            XTuple::builder(&s)
                .alt(0.3, ["Tim", "mechanic"])
                .alt(0.2, ["Jim", "mechanic"])
                .alt(0.4, ["Jim", "baker"])
                .build()
                .unwrap(),
        );
        r.push(
            XTuple::builder(&s)
                .alt(0.8, ["Tom", "mechanic"])
                .build()
                .unwrap(),
        );
        r.push(
            XTuple::builder(&s)
                .alt(0.2, [Value::from("John"), Value::Null])
                .alt(0.6, ["Sean", "pilot"])
                .build()
                .unwrap(),
        );
        let st = RelationStats::for_xrelation(&r);
        assert_eq!(st.tuples, 3);
        assert_eq!(st.alternatives, 6);
        assert_eq!(st.max_alternatives, 3);
        assert_eq!(st.maybe_tuples, 3);
        assert_eq!(st.null_values, 1);
        assert_eq!(st.uncertain_values, 0);
        // Worlds: (3+1)·(1+1)·(2+1) = 24.
        assert!((st.log10_worlds - 24f64.log10()).abs() < 1e-12);
        let rendered = st.to_string();
        assert!(rendered.contains("tuples:              3"));
    }

    #[test]
    fn stats_count_uncertain_values() {
        let s = Schema::new(["name", "job"]);
        let mut r = Relation::new(s.clone());
        r.push(
            ProbTuple::builder(&s)
                .dist("name", [("Tim", 0.6), ("Tom", 0.4)])
                .pvalue("job", PValue::certain("machinist"))
                .build()
                .unwrap(),
        );
        let st = RelationStats::for_relation(&r);
        assert_eq!(st.uncertain_values, 1);
        assert!(st.mean_value_entropy > 0.0);
    }

    #[test]
    fn stats_of_empty_relation() {
        let r = XRelation::new(Schema::new(["a"]));
        let st = RelationStats::for_xrelation(&r);
        assert_eq!(st.tuples, 0);
        assert_eq!(st.mean_value_entropy, 0.0);
        assert_eq!(st.log10_worlds, 0.0);
    }
}
