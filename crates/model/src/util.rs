//! Small utilities shared across the workspace: a fast non-cryptographic
//! hasher (FxHash, reimplemented locally to avoid an external dependency)
//! and float helpers.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant of FxHash (as used in rustc / Firefox).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, DoS-*unsafe* hasher for internal hot paths (blocking keys,
/// similarity caches, q-gram profiles). Do **not** expose it to untrusted
/// adversarial input where HashDoS matters; duplicate detection workloads
/// control their own keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Tolerance used when validating probability sums.
pub const PROB_EPS: f64 = 1e-9;

/// Whether two floats are equal within `eps` (absolute).
#[inline]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_is_deterministic_and_discriminating() {
        fn h(bytes: &[u8]) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        }
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"hellp"));
        assert_ne!(h(b""), h(b"\0"));
        // Longer-than-8-byte inputs exercise the chunked path.
        assert_ne!(h(b"0123456789abcdef"), h(b"0123456789abcdeg"));
    }

    #[test]
    fn fx_map_works_as_drop_in() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.len(), 2);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(42);
        assert!(s.contains(&42));
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(approx_eq(0.1 + 0.2, 0.3, 1e-12));
        assert!(!approx_eq(0.1, 0.2, 1e-3));
    }
}
