//! Possible-world semantics over sets of x-tuples.
//!
//! A *world* fixes, for every considered x-tuple, either one of its
//! alternatives or its absence (possible only for maybe x-tuples). World
//! probabilities are the products of the chosen alternative probabilities
//! (absence contributes `1 − p(t)`). This module reproduces Fig. 7 of the
//! paper: the eight worlds of the pair `(t32, t42)` and their probabilities.
//!
//! Enumeration is **lazy** ([`WorldIter`]); materialization takes an explicit
//! limit so that callers cannot accidentally explode (`|W|` grows as the
//! product of alternative counts).

use std::collections::BinaryHeap;

use crate::error::ModelError;
use crate::util::{FxHashSet, PROB_EPS};
use crate::xtuple::XTuple;

/// One possible world over a slice of x-tuples: `choices[i]` is
/// `Some(alternative index)` if tuple `i` is present, `None` if absent.
#[derive(Debug, Clone, PartialEq)]
pub struct World {
    /// Chosen alternative per x-tuple (`None` = tuple absent).
    pub choices: Vec<Option<usize>>,
    /// Unconditioned probability of this world.
    pub probability: f64,
}

impl World {
    /// Whether all considered tuples are present (the event *B* of the
    /// paper's Eq. 6 derivation).
    pub fn is_full(&self) -> bool {
        self.choices.iter().all(Option::is_some)
    }

    /// Normalized Hamming-style distance between two worlds over the same
    /// tuple set: the fraction of x-tuples whose choice differs. Used to
    /// select *pairwise dissimilar* worlds for the multi-pass SNM
    /// (Section V-A.1 argues top-probability worlds alone are too similar).
    pub fn distance(&self, other: &World) -> f64 {
        assert_eq!(
            self.choices.len(),
            other.choices.len(),
            "worlds must range over the same tuples"
        );
        if self.choices.is_empty() {
            return 0.0;
        }
        let differing = self
            .choices
            .iter()
            .zip(&other.choices)
            .filter(|(a, b)| a != b)
            .count();
        differing as f64 / self.choices.len() as f64
    }
}

/// Per-tuple outcome list: alternative indices (plus `None` if the tuple is
/// a maybe x-tuple), with their probabilities.
fn outcomes_of(t: &XTuple) -> Vec<(Option<usize>, f64)> {
    let mut v: Vec<(Option<usize>, f64)> = (0..t.len())
        .map(|i| (Some(i), t.alternatives()[i].probability()))
        .collect();
    let absent = 1.0 - t.probability();
    if absent > PROB_EPS {
        v.push((None, absent));
    }
    v
}

/// Number of possible worlds induced by `tuples` (product of per-tuple
/// outcome counts). Saturates at `u128::MAX`.
pub fn world_count(tuples: &[XTuple]) -> u128 {
    tuples.iter().fold(1u128, |acc, t| {
        acc.saturating_mul(outcomes_of(t).len() as u128)
    })
}

/// Lazy iterator over **all** possible worlds of `tuples` (odometer order:
/// first tuple varies slowest). Worlds with zero probability are skipped.
#[derive(Debug)]
pub struct WorldIter {
    outcomes: Vec<Vec<(Option<usize>, f64)>>,
    /// Odometer position; `None` once exhausted.
    cursor: Option<Vec<usize>>,
}

impl WorldIter {
    /// Enumerate the worlds of `tuples`.
    pub fn new(tuples: &[XTuple]) -> Self {
        let outcomes: Vec<_> = tuples.iter().map(outcomes_of).collect();
        let cursor = if outcomes.iter().all(|o| !o.is_empty()) {
            Some(vec![0; outcomes.len()])
        } else {
            None
        };
        Self { outcomes, cursor }
    }
}

impl Iterator for WorldIter {
    type Item = World;

    fn next(&mut self) -> Option<World> {
        let cursor = self.cursor.as_mut()?;
        let mut choices = Vec::with_capacity(cursor.len());
        let mut probability = 1.0;
        for (i, &pos) in cursor.iter().enumerate() {
            let (choice, p) = self.outcomes[i][pos];
            choices.push(choice);
            probability *= p;
        }
        // Advance the odometer (last position varies fastest).
        let mut done = true;
        for i in (0..cursor.len()).rev() {
            cursor[i] += 1;
            if cursor[i] < self.outcomes[i].len() {
                done = false;
                break;
            }
            cursor[i] = 0;
        }
        if done {
            self.cursor = None;
        }
        Some(World {
            choices,
            probability,
        })
    }
}

/// Materialize all worlds, refusing if there are more than `limit`.
pub fn enumerate_worlds(tuples: &[XTuple], limit: u128) -> Result<Vec<World>, ModelError> {
    let count = world_count(tuples);
    if count > limit {
        return Err(ModelError::WorldLimitExceeded { count, limit });
    }
    Ok(WorldIter::new(tuples).collect())
}

/// Lazy iterator over the worlds in which **every** tuple is present
/// (the event *B*). Their probabilities are unconditioned; divide by
/// [`crate::condition::existence_event_probability`] to condition on *B*.
pub fn full_worlds(tuples: &[XTuple]) -> impl Iterator<Item = World> + '_ {
    WorldIter::new(tuples).filter(World::is_full)
}

/// The `k` most probable worlds, optionally restricted to full worlds,
/// without enumerating the whole product space.
///
/// Uses best-first search over the product of per-tuple outcome lists
/// (sorted by descending probability): the most probable world is the
/// all-argmax choice; successors of a world relax one coordinate to the next
/// best outcome. Runs in `O(k · n · log k)` with a visited set.
pub fn top_k_worlds(tuples: &[XTuple], k: usize, full_only: bool) -> Vec<World> {
    if k == 0 || tuples.is_empty() {
        // A zero-tuple world set has exactly one (empty) world.
        if k > 0 && tuples.is_empty() {
            return vec![World {
                choices: vec![],
                probability: 1.0,
            }];
        }
        return Vec::new();
    }
    // Sorted outcome lists (descending probability, deterministic ties).
    let outcomes: Vec<Vec<(Option<usize>, f64)>> = tuples
        .iter()
        .map(|t| {
            let mut o = outcomes_of(t);
            if full_only {
                o.retain(|(c, _)| c.is_some());
            }
            o.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN").then(a.0.cmp(&b.0)));
            o
        })
        .collect();
    if outcomes.iter().any(Vec::is_empty) {
        return Vec::new();
    }

    /// Heap entry ordered by probability.
    struct Entry {
        prob: f64,
        pos: Vec<usize>,
    }
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.prob == other.prob && self.pos == other.pos
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.prob
                .partial_cmp(&other.prob)
                .expect("no NaN")
                .then_with(|| other.pos.cmp(&self.pos)) // deterministic ties
        }
    }

    let prob_at = |pos: &[usize]| -> f64 {
        pos.iter()
            .enumerate()
            .map(|(i, &p)| outcomes[i][p].1)
            .product()
    };

    let mut heap = BinaryHeap::new();
    let mut seen: FxHashSet<Vec<usize>> = FxHashSet::default();
    let start = vec![0usize; outcomes.len()];
    heap.push(Entry {
        prob: prob_at(&start),
        pos: start.clone(),
    });
    seen.insert(start);

    let mut result = Vec::with_capacity(k);
    while let Some(Entry { prob, pos }) = heap.pop() {
        result.push(World {
            choices: pos
                .iter()
                .enumerate()
                .map(|(i, &p)| outcomes[i][p].0)
                .collect(),
            probability: prob,
        });
        if result.len() == k {
            break;
        }
        for i in 0..pos.len() {
            if pos[i] + 1 < outcomes[i].len() {
                let mut next = pos.clone();
                next[i] += 1;
                if seen.insert(next.clone()) {
                    heap.push(Entry {
                        prob: prob_at(&next),
                        pos: next,
                    });
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::new(["name", "job"])
    }

    /// Fig. 5's t32 and t42.
    fn fig7_tuples() -> Vec<XTuple> {
        vec![
            XTuple::builder(&schema())
                .alt(0.3, ["Tim", "mechanic"])
                .alt(0.2, ["Jim", "mechanic"])
                .alt(0.4, ["Jim", "baker"])
                .label("t32")
                .build()
                .unwrap(),
            XTuple::builder(&schema())
                .alt(0.8, ["Tom", "mechanic"])
                .label("t42")
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn fig7_eight_worlds_with_exact_probabilities() {
        let ts = fig7_tuples();
        assert_eq!(world_count(&ts), 8);
        let worlds = enumerate_worlds(&ts, 100).unwrap();
        assert_eq!(worlds.len(), 8);
        let total: f64 = worlds.iter().map(|w| w.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);

        // Paper's Fig. 7 probabilities.
        let p = |c1: Option<usize>, c2: Option<usize>| {
            worlds
                .iter()
                .find(|w| w.choices == vec![c1, c2])
                .map(|w| w.probability)
                .unwrap()
        };
        assert!((p(Some(0), Some(0)) - 0.24).abs() < 1e-12); // I1
        assert!((p(Some(1), Some(0)) - 0.16).abs() < 1e-12); // I2
        assert!((p(Some(2), Some(0)) - 0.32).abs() < 1e-12); // I3
        assert!((p(None, Some(0)) - 0.08).abs() < 1e-12); // I4
        assert!((p(Some(0), None) - 0.06).abs() < 1e-12); // I5
        assert!((p(Some(1), None) - 0.04).abs() < 1e-12); // I6
        assert!((p(Some(2), None) - 0.08).abs() < 1e-12); // I7
        assert!((p(None, None) - 0.02).abs() < 1e-12); // I8
    }

    #[test]
    fn fig7_full_worlds_are_i1_i2_i3() {
        let ts = fig7_tuples();
        let full: Vec<World> = full_worlds(&ts).collect();
        assert_eq!(full.len(), 3);
        let total: f64 = full.iter().map(|w| w.probability).sum();
        // P(B) = 0.72 (paper).
        assert!((total - 0.72).abs() < 1e-12);
    }

    #[test]
    fn enumeration_limit_enforced() {
        let ts = fig7_tuples();
        assert!(matches!(
            enumerate_worlds(&ts, 7),
            Err(ModelError::WorldLimitExceeded { count: 8, limit: 7 })
        ));
    }

    #[test]
    fn no_absence_outcome_for_certain_tuples() {
        let t = XTuple::builder(&schema())
            .alt(0.5, ["a", "b"])
            .alt(0.5, ["c", "d"])
            .build()
            .unwrap();
        assert_eq!(world_count(&[t]), 2);
    }

    #[test]
    fn top_k_is_sorted_and_correct() {
        let ts = fig7_tuples();
        let top3 = top_k_worlds(&ts, 3, false);
        assert_eq!(top3.len(), 3);
        assert!((top3[0].probability - 0.32).abs() < 1e-12); // I3
        assert!((top3[1].probability - 0.24).abs() < 1e-12); // I1
        assert!((top3[2].probability - 0.16).abs() < 1e-12); // I2
                                                             // Against full enumeration.
        let mut all = enumerate_worlds(&ts, 100).unwrap();
        all.sort_by(|a, b| b.probability.partial_cmp(&a.probability).unwrap());
        for (t, a) in top3.iter().zip(all.iter()) {
            assert!((t.probability - a.probability).abs() < 1e-12);
        }
    }

    #[test]
    fn top_k_full_only_restricts_to_event_b() {
        let ts = fig7_tuples();
        let top = top_k_worlds(&ts, 10, true);
        assert_eq!(top.len(), 3);
        assert!(top.iter().all(World::is_full));
    }

    #[test]
    fn top_k_with_k_exceeding_world_count() {
        let ts = fig7_tuples();
        assert_eq!(top_k_worlds(&ts, 100, false).len(), 8);
    }

    #[test]
    fn empty_tuple_set_has_one_world() {
        assert_eq!(world_count(&[]), 1);
        let ws = enumerate_worlds(&[], 10).unwrap();
        assert_eq!(ws.len(), 1);
        assert!(ws[0].is_full());
        assert_eq!(top_k_worlds(&[], 5, false).len(), 1);
    }

    #[test]
    fn world_distance() {
        let ts = fig7_tuples();
        let worlds = enumerate_worlds(&ts, 100).unwrap();
        let i1 = &worlds[0]; // (0, 0)
        assert_eq!(i1.distance(i1), 0.0);
        let other = worlds
            .iter()
            .find(|w| w.choices == vec![Some(1), None])
            .unwrap();
        assert_eq!(i1.distance(other), 1.0);
        let half = worlds
            .iter()
            .find(|w| w.choices == vec![Some(1), Some(0)])
            .unwrap();
        assert_eq!(i1.distance(half), 0.5);
    }

    #[test]
    fn lazy_iterator_counts_match() {
        let ts = fig7_tuples();
        assert_eq!(WorldIter::new(&ts).count() as u128, world_count(&ts));
    }
}
