//! Conditioning on the existence event *B* (both/all tuples belong to their
//! relations).
//!
//! The paper's central modelling decision (Section IV) is that *tuple
//! membership must not influence duplicate detection*: a person may appear
//! with `p = 1.0` in one relation and `p = 0.1` in another and still be the
//! same person. All similarity derivations therefore condition on the event
//! *B* that the compared tuples exist, normalizing each alternative's
//! probability by `p(t)` — called *conditioning* (Koch & Olteanu) or
//! *scaling* (Widom) in the referenced literature.

use crate::xtuple::XTuple;

/// `P(B)`: probability that **all** given x-tuples belong to their
/// relations, `Π p(tᵢ)` (tuples are independent across x-tuples).
///
/// For Fig. 7's pair `(t32, t42)`: `P(B) = 0.9 · 0.8 = 0.72`.
pub fn existence_event_probability(tuples: &[XTuple]) -> f64 {
    tuples.iter().map(XTuple::probability).product()
}

/// The conditioned per-alternative probabilities `p(tⁱ)/p(t)` of one
/// x-tuple (they sum to 1).
pub fn normalized_alternative_probs(t: &XTuple) -> Vec<f64> {
    let total = t.probability();
    t.alternatives()
        .iter()
        .map(|a| a.probability() / total)
        .collect()
}

/// The conditioned probability of a *full* world `(i, j, …)` over `tuples`:
/// `Π p(tᵢ^{cᵢ}) / P(B)`. Panics if `choices` and `tuples` differ in length.
pub fn conditioned_world_probability(tuples: &[XTuple], choices: &[usize]) -> f64 {
    assert_eq!(tuples.len(), choices.len(), "one choice per tuple");
    let joint: f64 = tuples
        .iter()
        .zip(choices)
        .map(|(t, &c)| t.alternatives()[c].probability())
        .product();
    joint / existence_event_probability(tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn fig7_tuples() -> Vec<XTuple> {
        let s = Schema::new(["name", "job"]);
        vec![
            XTuple::builder(&s)
                .alt(0.3, ["Tim", "mechanic"])
                .alt(0.2, ["Jim", "mechanic"])
                .alt(0.4, ["Jim", "baker"])
                .build()
                .unwrap(),
            XTuple::builder(&s)
                .alt(0.8, ["Tom", "mechanic"])
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn fig7_event_b_probability() {
        let ts = fig7_tuples();
        assert!((existence_event_probability(&ts) - 0.72).abs() < 1e-12);
    }

    #[test]
    fn normalized_probs_sum_to_one() {
        let ts = fig7_tuples();
        let probs = normalized_alternative_probs(&ts[0]);
        assert_eq!(probs.len(), 3);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((probs[0] - 0.3 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn fig7_conditioned_world_probabilities() {
        // P(I1|B) = 0.24/0.72 = 1/3, P(I2|B) = 2/9, P(I3|B) = 4/9.
        let ts = fig7_tuples();
        assert!((conditioned_world_probability(&ts, &[0, 0]) - 1.0 / 3.0).abs() < 1e-12);
        assert!((conditioned_world_probability(&ts, &[1, 0]) - 2.0 / 9.0).abs() < 1e-12);
        assert!((conditioned_world_probability(&ts, &[2, 0]) - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn conditioned_probs_invariant_under_membership_scaling() {
        // Scaling all alternative probabilities of a tuple by a constant
        // factor must not change conditioned probabilities: the core of the
        // paper's "membership does not matter" argument.
        let s = Schema::new(["name"]);
        let t_full = XTuple::builder(&s)
            .alt(0.6, ["a"])
            .alt(0.4, ["b"])
            .build()
            .unwrap();
        let t_scaled = XTuple::builder(&s)
            .alt(0.06, ["a"])
            .alt(0.04, ["b"])
            .build()
            .unwrap();
        assert!(normalized_alternative_probs(&t_full)
            .iter()
            .zip(normalized_alternative_probs(&t_scaled).iter())
            .all(|(a, b)| (a - b).abs() < 1e-12));
    }

    #[test]
    fn empty_tuple_set_event_probability_is_one() {
        assert_eq!(existence_event_probability(&[]), 1.0);
    }
}
