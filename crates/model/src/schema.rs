//! Relation schemas: attribute names and types.

use std::fmt;
use std::sync::Arc;

/// Declared type of an attribute. Used by the matching layer to route values
/// to string vs numeric comparators, and by the data generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AttrType {
    /// Free text (names, jobs, …).
    #[default]
    Text,
    /// Integer-valued (ages, years).
    Int,
    /// Real-valued (magnitudes, coordinates).
    Real,
    /// Boolean flags.
    Bool,
}

/// One attribute definition.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttrDef {
    /// Attribute name (unique within a schema).
    pub name: String,
    /// Declared type.
    pub ty: AttrType,
}

/// An ordered list of attribute definitions, shared cheaply between
/// relations and tuples via `Arc`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schema {
    attrs: Arc<Vec<AttrDef>>,
}

impl Schema {
    /// A schema of text attributes with the given names.
    ///
    /// ```
    /// use probdedup_model::schema::Schema;
    /// let s = Schema::new(["name", "job"]);
    /// assert_eq!(s.arity(), 2);
    /// ```
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Self {
            attrs: Arc::new(
                names
                    .into_iter()
                    .map(|n| AttrDef {
                        name: n.as_ref().to_string(),
                        ty: AttrType::Text,
                    })
                    .collect(),
            ),
        }
    }

    /// A schema with explicit types.
    pub fn with_types<I, S>(defs: I) -> Self
    where
        I: IntoIterator<Item = (S, AttrType)>,
        S: AsRef<str>,
    {
        Self {
            attrs: Arc::new(
                defs.into_iter()
                    .map(|(n, ty)| AttrDef {
                        name: n.as_ref().to_string(),
                        ty,
                    })
                    .collect(),
            ),
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The attribute definitions in order.
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// Index of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Name of attribute `i` (panics if out of range).
    pub fn name_of(&self, i: usize) -> &str {
        &self.attrs[i].name
    }

    /// Type of attribute `i` (panics if out of range).
    pub fn type_of(&self, i: usize) -> AttrType {
        self.attrs[i].ty
    }

    /// Whether two schemas are structurally compatible (same arity and
    /// types; names may differ after schema matching/mapping, which the
    /// paper treats as an upstream integration step).
    pub fn compatible_with(&self, other: &Schema) -> bool {
        self.arity() == other.arity()
            && self
                .attrs
                .iter()
                .zip(other.attrs.iter())
                .all(|(a, b)| a.ty == b.ty)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {:?}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_defaults_to_text() {
        let s = Schema::new(["name", "job"]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.type_of(0), AttrType::Text);
        assert_eq!(s.name_of(1), "job");
    }

    #[test]
    fn with_types() {
        let s = Schema::with_types([("name", AttrType::Text), ("age", AttrType::Int)]);
        assert_eq!(s.type_of(1), AttrType::Int);
        assert_eq!(s.index_of("age"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn compatibility_ignores_names() {
        let a = Schema::with_types([("name", AttrType::Text), ("age", AttrType::Int)]);
        let b = Schema::with_types([("nom", AttrType::Text), ("années", AttrType::Int)]);
        let c = Schema::with_types([("name", AttrType::Text), ("age", AttrType::Real)]);
        assert!(a.compatible_with(&b));
        assert!(!a.compatible_with(&c));
        assert!(!a.compatible_with(&Schema::new(["one"])));
    }

    #[test]
    fn display() {
        let s = Schema::new(["x"]);
        assert_eq!(s.to_string(), "(x: Text)");
    }

    #[test]
    fn clone_shares_attrs() {
        let s = Schema::new(["a", "b", "c"]);
        let t = s.clone();
        assert!(Arc::ptr_eq(&s.attrs, &t.attrs));
    }
}
