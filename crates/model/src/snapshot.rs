//! Crash-safe binary snapshot primitives: a hand-rolled, versioned flat
//! format for persisting warm session state (pools, caches, resident
//! relations) across restarts.
//!
//! The format is deliberately dependency-free (no serde registry, per the
//! offline-shims rule) and **paranoid on read**: every load path is
//! bounds-checked, every section carries its own length and FNV-1a
//! checksum, and the whole file carries a trailing checksum, so any
//! truncation, bit flip or version skew surfaces as a typed
//! [`SnapshotError`] — never a panic, never a silent misread.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! ┌──────────┬─────────┬──────────────────────────────┬───────────┐
//! │ magic ×8 │ version │ section*                     │ file cksum│
//! │ "PXDSNAP" │ u32    │ tag u32 · len u64 · payload  │ u64 FNV-1a│
//! │          │         │           · payload cksum u64 │ (of all   │
//! │          │         │                              │ prior     │
//! │          │         │                              │ bytes)    │
//! └──────────┴─────────┴──────────────────────────────┴───────────┘
//! ```
//!
//! This module owns the *primitives* (writer, reader, checksums) and the
//! codecs for model-layer state ([`Value`], [`PValue`], [`XTuple`],
//! [`XRelation`], [`ValuePool`], [`KeyPool`]); the session-level file
//! layout — which sections exist and in what order — is composed by the
//! core crate's `DedupSession::save`/`open`.

use std::fmt;

use crate::error::ModelError;
use crate::intern::{KeyPool, KeySymbol, ValuePool};
use crate::pvalue::PValue;
use crate::relation::XRelation;
use crate::schema::{AttrType, Schema};
use crate::value::Value;
use crate::xtuple::{XAlternative, XTuple};

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"PXDSNAP\0";

/// Current snapshot format version. Bump on any incompatible layout
/// change; old files then fail with [`SnapshotError::UnsupportedVersion`]
/// instead of being misread.
pub const FORMAT_VERSION: u32 = 1;

/// Typed failure modes of snapshot encoding/decoding. Every corrupt,
/// truncated or mismatched input maps to one of these — loading never
/// panics and never silently accepts bad data.
#[derive(Debug)]
pub enum SnapshotError {
    /// An underlying filesystem error (open/read/write/fsync/rename).
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file's format version is not one this build can read.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
    /// The input ended before a read completed.
    Truncated {
        /// What was being read.
        context: &'static str,
    },
    /// Bytes remain after the final expected field of a section or file.
    TrailingBytes {
        /// What was being read.
        context: &'static str,
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// A section or file checksum does not match its contents.
    ChecksumMismatch {
        /// What was being verified.
        context: &'static str,
    },
    /// A section tag differs from the expected one.
    BadSection {
        /// Tag the reader expected.
        expected: u32,
        /// Tag found in the file.
        found: u32,
    },
    /// A stored symbol index is out of range for its pool.
    InvalidSymbol {
        /// What was being read.
        context: &'static str,
        /// The out-of-range raw index.
        raw: u64,
        /// Exclusive upper bound (pool length).
        limit: u64,
    },
    /// A structural invariant of the payload is violated (bad enum tag,
    /// invalid UTF-8, impossible count, …).
    Malformed {
        /// What was being read.
        context: &'static str,
    },
    /// Decoded data failed model-level validation (bad probability mass,
    /// empty alternative set, …).
    Model(ModelError),
    /// The snapshot was written by a session whose configuration is
    /// incompatible with the one it is being opened into.
    ConfigMismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a probdedup snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads ≤ {supported})"
            ),
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::TrailingBytes { context, extra } => {
                write!(f, "{extra} unexpected trailing bytes after {context}")
            }
            SnapshotError::ChecksumMismatch { context } => {
                write!(f, "checksum mismatch in {context} (corrupt snapshot)")
            }
            SnapshotError::BadSection { expected, found } => {
                write!(f, "expected section tag {expected:#x}, found {found:#x}")
            }
            SnapshotError::InvalidSymbol {
                context,
                raw,
                limit,
            } => write!(
                f,
                "out-of-range symbol {raw} in {context} (pool has {limit} entries)"
            ),
            SnapshotError::Malformed { context } => write!(f, "malformed snapshot data: {context}"),
            SnapshotError::Model(e) => write!(f, "snapshot data fails model validation: {e}"),
            SnapshotError::ConfigMismatch { detail } => {
                write!(f, "snapshot/session configuration mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<ModelError> for SnapshotError {
    fn from(e: ModelError) -> Self {
        SnapshotError::Model(e)
    }
}

/// 64-bit FNV-1a over `bytes` — the snapshot's (non-cryptographic)
/// corruption detector for sections and the whole file.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A growable little-endian payload buffer: the body of one section.
#[derive(Debug, Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    /// An empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its raw IEEE-754 bits.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `usize` as a `u64`.
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The accumulated payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A bounds-checked little-endian reader over one section's payload.
///
/// Every `take_*` returns [`SnapshotError::Truncated`] past the end;
/// [`SectionReader::finish`] rejects unconsumed bytes, so a payload must
/// parse *exactly* or fail loudly.
#[derive(Debug)]
pub struct SectionReader<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> SectionReader<'a> {
    /// Wrap a payload with a context label used in error messages.
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        Self {
            buf,
            pos: 0,
            context,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                context: self.context,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    /// Read a little-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    /// Read an `f64` from its raw IEEE-754 bits.
    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Read a `u64` count/length and check it is plausible: each counted
    /// element occupies at least `min_elem_bytes` of the remaining
    /// payload, so a flipped length byte cannot drive a huge allocation.
    pub fn take_len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.take_u64()?;
        let cap = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if n > cap {
            return Err(SnapshotError::Malformed {
                context: self.context,
            });
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, SnapshotError> {
        let n = self.take_len(1)?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map_err(|_| SnapshotError::Malformed {
            context: self.context,
        })
    }

    /// Assert the payload is fully consumed.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes {
                context: self.context,
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Writer for a whole snapshot file: magic + version header, framed
/// checksummed sections, trailing whole-file checksum.
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotWriter {
    /// Start a snapshot (writes the magic and format version).
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        Self { buf }
    }

    /// Append one framed section: tag, payload length, payload, payload
    /// checksum.
    pub fn section(&mut self, tag: u32, payload: SectionWriter) {
        let payload = payload.into_bytes();
        self.buf.extend_from_slice(&tag.to_le_bytes());
        self.buf
            .extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let cksum = fnv1a(&payload);
        self.buf.extend_from_slice(&payload);
        self.buf.extend_from_slice(&cksum.to_le_bytes());
    }

    /// Seal the file: append the whole-file checksum and return the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let cksum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&cksum.to_le_bytes());
        self.buf
    }
}

/// Reader for a whole snapshot file. Construction verifies magic, version
/// and the whole-file checksum; [`SnapshotReader::section`] then yields
/// payloads in order, verifying each frame.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    /// Section bytes (between the header and the file checksum).
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Validate the file envelope and position at the first section.
    pub fn open(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        let header = MAGIC.len() + 4;
        let magic_ok = bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC;
        if !magic_ok {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < header + 8 {
            return Err(SnapshotError::Truncated {
                context: "file envelope",
            });
        }
        let version = u32::from_le_bytes(
            bytes[MAGIC.len()..header]
                .try_into()
                .expect("4-byte version"),
        );
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let body_end = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8-byte checksum"));
        if fnv1a(&bytes[..body_end]) != stored {
            return Err(SnapshotError::ChecksumMismatch {
                context: "whole file",
            });
        }
        Ok(Self {
            buf: &bytes[header..body_end],
            pos: 0,
        })
    }

    /// Read the next section, asserting its tag, and return its verified
    /// payload as a [`SectionReader`].
    pub fn section(
        &mut self,
        expected_tag: u32,
        context: &'static str,
    ) -> Result<SectionReader<'a>, SnapshotError> {
        let frame = &self.buf[self.pos..];
        if frame.len() < 12 {
            return Err(SnapshotError::Truncated { context });
        }
        let tag = u32::from_le_bytes(frame[..4].try_into().expect("4B tag"));
        if tag != expected_tag {
            return Err(SnapshotError::BadSection {
                expected: expected_tag,
                found: tag,
            });
        }
        let len = u64::from_le_bytes(frame[4..12].try_into().expect("8B len"));
        let len = usize::try_from(len).map_err(|_| SnapshotError::Malformed { context })?;
        if frame.len() < 12 + len + 8 {
            return Err(SnapshotError::Truncated { context });
        }
        let payload = &frame[12..12 + len];
        let stored = u64::from_le_bytes(
            frame[12 + len..12 + len + 8]
                .try_into()
                .expect("8B checksum"),
        );
        if fnv1a(payload) != stored {
            return Err(SnapshotError::ChecksumMismatch { context });
        }
        self.pos += 12 + len + 8;
        Ok(SectionReader::new(payload, context))
    }

    /// Whether any section frames remain unread. Lets a caller accept an
    /// *optional trailing section* (e.g. a newer writer appending state an
    /// older file lacks) without bumping the format version: peek, read the
    /// section if present, then [`finish`](Self::finish) as usual.
    pub fn has_more(&self) -> bool {
        self.pos != self.buf.len()
    }

    /// Assert all sections have been consumed.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::TrailingBytes {
                context: "section list",
                extra: self.buf.len() - self.pos,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Model-layer codecs
// ---------------------------------------------------------------------------

const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_REAL: u8 = 3;
const VAL_TEXT: u8 = 4;

/// Encode one [`Value`] (tag byte + payload; reals as raw bits — `Value`'s
/// own equality canonicalizes on compare, so round-trips stay equal).
pub fn write_value(w: &mut SectionWriter, v: &Value) {
    match v {
        Value::Null => w.put_u8(VAL_NULL),
        Value::Bool(b) => {
            w.put_u8(VAL_BOOL);
            w.put_u8(u8::from(*b));
        }
        Value::Int(i) => {
            w.put_u8(VAL_INT);
            w.put_i64(*i);
        }
        Value::Real(r) => {
            w.put_u8(VAL_REAL);
            w.put_u64(r.to_bits());
        }
        Value::Text(s) => {
            w.put_u8(VAL_TEXT);
            w.put_str(s);
        }
    }
}

/// Decode one [`Value`].
pub fn read_value(r: &mut SectionReader<'_>) -> Result<Value, SnapshotError> {
    match r.take_u8()? {
        VAL_NULL => Ok(Value::Null),
        VAL_BOOL => match r.take_u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            _ => Err(SnapshotError::Malformed {
                context: "boolean value",
            }),
        },
        VAL_INT => Ok(Value::Int(r.take_i64()?)),
        VAL_REAL => Ok(Value::Real(f64::from_bits(r.take_u64()?))),
        VAL_TEXT => Ok(Value::Text(r.take_str()?.to_string())),
        _ => Err(SnapshotError::Malformed {
            context: "value tag",
        }),
    }
}

/// Encode one [`PValue`] as its explicit alternatives (the implicit ⊥
/// mass is derived, not stored).
pub fn write_pvalue(w: &mut SectionWriter, v: &PValue) {
    w.put_u32(v.alternatives().len() as u32);
    for (val, p) in v.alternatives() {
        write_value(w, val);
        w.put_f64(*p);
    }
}

/// Decode one [`PValue`], revalidating probabilities and mass through
/// [`PValue::categorical`] — corrupt floats become [`SnapshotError::Model`].
pub fn read_pvalue(r: &mut SectionReader<'_>) -> Result<PValue, SnapshotError> {
    let n = r.take_u32()? as usize;
    let mut entries = Vec::new();
    for _ in 0..n {
        let v = read_value(r)?;
        let p = r.take_f64()?;
        entries.push((v, p));
    }
    Ok(PValue::categorical(entries)?)
}

const TYPE_TAGS: [(AttrType, u8); 4] = [
    (AttrType::Text, 0),
    (AttrType::Int, 1),
    (AttrType::Real, 2),
    (AttrType::Bool, 3),
];

/// Encode a [`Schema`] (attribute names and types).
pub fn write_schema(w: &mut SectionWriter, schema: &Schema) {
    w.put_u32(schema.arity() as u32);
    for attr in schema.attrs() {
        w.put_str(&attr.name);
        let tag = TYPE_TAGS
            .iter()
            .find(|(t, _)| *t == attr.ty)
            .map(|(_, b)| *b)
            .expect("every AttrType has a tag");
        w.put_u8(tag);
    }
}

/// Decode a [`Schema`].
pub fn read_schema(r: &mut SectionReader<'_>) -> Result<Schema, SnapshotError> {
    let arity = r.take_u32()? as usize;
    let mut defs = Vec::new();
    for _ in 0..arity {
        let name = r.take_str()?.to_string();
        let tag = r.take_u8()?;
        let ty = TYPE_TAGS
            .iter()
            .find(|(_, b)| *b == tag)
            .map(|(t, _)| *t)
            .ok_or(SnapshotError::Malformed {
                context: "attribute type tag",
            })?;
        defs.push((name, ty));
    }
    Ok(Schema::with_types(defs))
}

/// Encode one [`XTuple`] (label, then alternatives with their
/// probabilities and per-attribute distributions).
pub fn write_xtuple(w: &mut SectionWriter, t: &XTuple) {
    match t.label() {
        Some(l) => {
            w.put_u8(1);
            w.put_str(l);
        }
        None => w.put_u8(0),
    }
    w.put_u32(t.alternatives().len() as u32);
    for alt in t.alternatives() {
        w.put_f64(alt.probability());
        w.put_u32(alt.values().len() as u32);
        for v in alt.values() {
            write_pvalue(w, v);
        }
    }
}

/// Decode one [`XTuple`], revalidating every invariant (alternative
/// probabilities in `(0, 1]`, mass ≤ 1, non-empty, arity = `arity`)
/// through the ordinary model constructors.
pub fn read_xtuple(r: &mut SectionReader<'_>, arity: usize) -> Result<XTuple, SnapshotError> {
    let label = match r.take_u8()? {
        0 => None,
        1 => Some(r.take_str()?.to_string()),
        _ => {
            return Err(SnapshotError::Malformed {
                context: "x-tuple label flag",
            })
        }
    };
    let n_alts = r.take_u32()? as usize;
    let mut alts = Vec::new();
    for _ in 0..n_alts {
        let p = r.take_f64()?;
        let n_vals = r.take_u32()? as usize;
        if n_vals != arity {
            return Err(SnapshotError::Malformed {
                context: "x-tuple alternative arity",
            });
        }
        let mut vals = Vec::with_capacity(arity);
        for _ in 0..n_vals {
            vals.push(read_pvalue(r)?);
        }
        alts.push(XAlternative::new(vals, p)?);
    }
    let t = XTuple::new(alts)?;
    Ok(match label {
        Some(l) => t.with_label(l),
        None => t,
    })
}

/// Encode an [`XRelation`] (schema + rows).
pub fn write_xrelation(w: &mut SectionWriter, rel: &XRelation) {
    write_schema(w, rel.schema());
    w.put_len(rel.len());
    for t in rel.xtuples() {
        write_xtuple(w, t);
    }
}

/// Decode an [`XRelation`].
pub fn read_xrelation(r: &mut SectionReader<'_>) -> Result<XRelation, SnapshotError> {
    let schema = read_schema(r)?;
    let n = r.take_len(1)?;
    let mut rel = XRelation::new(schema.clone());
    for _ in 0..n {
        let t = read_xtuple(r, schema.arity())?;
        rel.try_push(t)?;
    }
    Ok(rel)
}

/// Encode a [`ValuePool`]'s contents in symbol order (the reserved `⊥` at
/// symbol 0 is implicit).
pub fn write_value_pool(w: &mut SectionWriter, pool: &ValuePool) {
    w.put_len(pool.len() - 1);
    for (_, v) in pool.iter().skip(1) {
        write_value(w, v);
    }
}

/// Decode a [`ValuePool`], re-interning the values in symbol order so
/// every symbol lands on the same dense index it had when saved.
pub fn read_value_pool(r: &mut SectionReader<'_>) -> Result<ValuePool, SnapshotError> {
    let n = r.take_len(1)?;
    let mut pool = ValuePool::new();
    for i in 0..n {
        let v = read_value(r)?;
        let sym = pool.intern(&v);
        if sym.index() != i + 1 {
            // A duplicate (or ⊥) in the stream means the pool was not
            // written in dense symbol order — reject rather than let
            // symbol-keyed caches silently alias.
            return Err(SnapshotError::Malformed {
                context: "value pool symbol order",
            });
        }
    }
    Ok(pool)
}

/// Encode a [`KeyPool`]: key strings in symbol order (the reserved `""`
/// implicit), then the prefix/concat memo entries and the lifetime render
/// counter — restoring the memos is what makes the first warm pass over a
/// reopened session render **zero** keys.
pub fn write_key_pool(w: &mut SectionWriter, pool: &KeyPool) {
    w.put_len(pool.len() - 1);
    for (_, s) in pool.iter().skip(1) {
        w.put_str(s);
    }
    let prefix: Vec<(u64, KeySymbol)> = pool.prefix_cache_entries().collect();
    w.put_len(prefix.len());
    for (k, sym) in prefix {
        w.put_u64(k);
        w.put_u32(sym.raw());
    }
    let concat: Vec<(u64, KeySymbol)> = pool.concat_cache_entries().collect();
    w.put_len(concat.len());
    for (k, sym) in concat {
        w.put_u64(k);
        w.put_u32(sym.raw());
    }
    w.put_u64(pool.render_count());
}

/// Decode a [`KeyPool`]. `value_pool_len` is the length of the
/// [`ValuePool`] the prefix memo refers to; memo entries referencing
/// symbols outside either pool are rejected as
/// [`SnapshotError::InvalidSymbol`].
pub fn read_key_pool(
    r: &mut SectionReader<'_>,
    value_pool_len: usize,
) -> Result<KeyPool, SnapshotError> {
    let n = r.take_len(1)?;
    let mut pool = KeyPool::new();
    for i in 0..n {
        let s = r.take_str()?;
        let sym = pool.intern_str(s);
        if sym.index() != i + 1 {
            return Err(SnapshotError::Malformed {
                context: "key pool symbol order",
            });
        }
    }
    let key_len = pool.len() as u64;
    let n_prefix = r.take_len(12)?;
    for _ in 0..n_prefix {
        let cache_key = r.take_u64()?;
        let raw = r.take_u32()?;
        let value_sym = cache_key >> 32;
        if value_sym >= value_pool_len as u64 {
            return Err(SnapshotError::InvalidSymbol {
                context: "prefix memo value symbol",
                raw: value_sym,
                limit: value_pool_len as u64,
            });
        }
        if u64::from(raw) >= key_len {
            return Err(SnapshotError::InvalidSymbol {
                context: "prefix memo key symbol",
                raw: u64::from(raw),
                limit: key_len,
            });
        }
        pool.restore_prefix_entry(cache_key, KeySymbol::from_raw(raw));
    }
    let n_concat = r.take_len(12)?;
    for _ in 0..n_concat {
        let cache_key = r.take_u64()?;
        let raw = r.take_u32()?;
        for part in [cache_key >> 32, cache_key & 0xffff_ffff] {
            if part >= key_len {
                return Err(SnapshotError::InvalidSymbol {
                    context: "concat memo operand symbol",
                    raw: part,
                    limit: key_len,
                });
            }
        }
        if u64::from(raw) >= key_len {
            return Err(SnapshotError::InvalidSymbol {
                context: "concat memo key symbol",
                raw: u64::from(raw),
                limit: key_len,
            });
        }
        pool.restore_concat_entry(cache_key, KeySymbol::from_raw(raw));
    }
    let renders = r.take_u64()?;
    pool.set_render_count(renders);
    Ok(pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: &Value) -> Value {
        let mut w = SectionWriter::new();
        write_value(&mut w, v);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new(&bytes, "test value");
        let out = read_value(&mut r).expect("decode");
        r.finish().expect("fully consumed");
        out
    }

    #[test]
    fn value_roundtrip_all_variants() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Real(2.5),
            Value::Real(-0.0),
            Value::Text("Łukasz".into()),
            Value::Text(String::new()),
        ] {
            assert_eq!(roundtrip_value(&v), v);
        }
    }

    #[test]
    fn pvalue_roundtrip_preserves_distribution() {
        let v = PValue::categorical([("machinist", 0.7), ("mechanic", 0.2)]).unwrap();
        let mut w = SectionWriter::new();
        write_pvalue(&mut w, &v);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new(&bytes, "test pvalue");
        assert_eq!(read_pvalue(&mut r).unwrap(), v);
    }

    #[test]
    fn xrelation_roundtrip() {
        let schema = Schema::new(["name", "job"]);
        let mut rel = XRelation::new(schema.clone());
        rel.push(
            XTuple::builder(&schema)
                .alt(0.3, ["Tim", "mechanic"])
                .alt(0.4, ["Jim", "baker"])
                .label("t32")
                .build()
                .unwrap(),
        );
        rel.push(
            XTuple::builder(&schema)
                .alt(0.2, [Value::from("John"), Value::Null])
                .build()
                .unwrap(),
        );
        let mut w = SectionWriter::new();
        write_xrelation(&mut w, &rel);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new(&bytes, "test relation");
        let back = read_xrelation(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, rel);
        assert_eq!(back.xtuples()[0].label(), Some("t32"));
    }

    #[test]
    fn value_pool_roundtrip_preserves_symbols() {
        let mut pool = ValuePool::new();
        let syms: Vec<_> = [Value::from("Tim"), Value::Int(30), Value::Real(1.5)]
            .iter()
            .map(|v| pool.intern(v))
            .collect();
        let mut w = SectionWriter::new();
        write_value_pool(&mut w, &pool);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new(&bytes, "test pool");
        let back = read_value_pool(&mut r).unwrap();
        assert_eq!(back.len(), pool.len());
        for (sym, v) in pool.iter() {
            assert_eq!(back.resolve(sym), v);
        }
        assert_eq!(back.lookup(&Value::from("Tim")), Some(syms[0]));
    }

    #[test]
    fn key_pool_roundtrip_renders_nothing_after_restore() {
        let mut vp = ValuePool::new();
        let john = vp.intern(&Value::from("John"));
        let pilot = vp.intern(&Value::from("pilot"));
        let mut kp = KeyPool::new();
        let a = kp.prefix_of(&vp, john, 3);
        let b = kp.prefix_of(&vp, pilot, 2);
        let ab = kp.concat2(a, b);
        assert_eq!(kp.render_count(), 2);

        let mut w = SectionWriter::new();
        write_key_pool(&mut w, &kp);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new(&bytes, "test key pool");
        let mut back = read_key_pool(&mut r, vp.len()).unwrap();
        r.finish().unwrap();

        assert_eq!(back.len(), kp.len());
        assert_eq!(back.render_count(), 2);
        // Warm re-derivation is pure memo hits: zero new renders.
        assert_eq!(back.prefix_of(&vp, john, 3), a);
        assert_eq!(back.prefix_of(&vp, pilot, 2), b);
        assert_eq!(back.concat2(a, b), ab);
        assert_eq!(back.render_count(), 2);
    }

    #[test]
    fn key_pool_rejects_out_of_range_memo_symbols() {
        let mut kp = KeyPool::new();
        kp.intern_str("Joh");
        // Forge a prefix memo entry pointing at value symbol 99.
        let mut w = SectionWriter::new();
        write_key_pool(&mut w, &kp);
        let mut w2 = SectionWriter::new();
        w2.put_len(1);
        w2.put_str("Joh");
        w2.put_len(1); // one prefix entry
        w2.put_u64(99u64 << 32 | 3); // value symbol 99, len 3
        w2.put_u32(1);
        w2.put_len(0); // no concat entries
        w2.put_u64(1);
        let bytes = w2.into_bytes();
        let mut r = SectionReader::new(&bytes, "forged key pool");
        let err = read_key_pool(&mut r, 2).unwrap_err();
        assert!(matches!(err, SnapshotError::InvalidSymbol { .. }), "{err}");
    }

    #[test]
    fn file_envelope_detects_corruption() {
        let mut w = SnapshotWriter::new();
        let mut s = SectionWriter::new();
        s.put_str("payload");
        w.section(7, s);
        let bytes = w.finish();

        // Pristine file opens and yields the section.
        let mut r = SnapshotReader::open(&bytes).unwrap();
        let mut sec = r.section(7, "payload section").unwrap();
        assert_eq!(sec.take_str().unwrap(), "payload");
        sec.finish().unwrap();
        r.finish().unwrap();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            SnapshotReader::open(&bad),
            Err(SnapshotError::BadMagic)
        ));

        // Future version.
        let mut bad = bytes.clone();
        bad[8] = 0xfe;
        assert!(matches!(
            SnapshotReader::open(&bad),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));

        // Any single flipped payload bit breaks a checksum.
        for i in 12..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                SnapshotReader::open(&bad).is_err()
                    || SnapshotReader::open(&bad)
                        .and_then(|mut r| r.section(7, "payload section").map(|_| ()))
                        .is_err(),
                "flip at {i} went undetected"
            );
        }

        // Truncation at every length.
        for end in 0..bytes.len() {
            let trunc = &bytes[..end];
            assert!(
                SnapshotReader::open(trunc).is_err(),
                "truncation to {end} bytes went undetected"
            );
        }

        // Wrong tag.
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            r.section(8, "payload section"),
            Err(SnapshotError::BadSection {
                expected: 8,
                found: 7
            })
        ));
    }

    #[test]
    fn oversized_count_is_rejected_without_allocation() {
        // A forged u64::MAX count must fail fast (Malformed), not try to
        // allocate.
        let mut w = SectionWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SectionReader::new(&bytes, "forged count");
        assert!(matches!(
            r.take_len(1),
            Err(SnapshotError::Malformed { .. })
        ));
    }
}
