//! [`XTuple`]: Trio-style x-tuples (Section IV-B) — mutually exclusive
//! alternative tuples modelling dependencies between attribute values.

use crate::error::{check_probability, ModelError};
use crate::pvalue::PValue;
use crate::schema::Schema;
use crate::util::PROB_EPS;
use crate::value::Value;

/// One alternative of an x-tuple: a full row of attribute values with the
/// probability that *this* alternative is the true one.
///
/// Attribute values inside an alternative may themselves be uncertain
/// ([`PValue`]) — the paper's tuple `t31` has the alternative
/// `(Johan, mu*)` whose job is a uniform distribution over all jobs starting
/// with `mu` (avoiding a blow-up of alternatives).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct XAlternative {
    values: Vec<PValue>,
    probability: f64,
}

impl XAlternative {
    /// Build an alternative; `probability` must be in `(0, 1]`.
    pub fn new(values: Vec<PValue>, probability: f64) -> Result<Self, ModelError> {
        let p = check_probability(probability, "alternative")?;
        if p == 0.0 {
            return Err(ModelError::InvalidProbability {
                value: 0.0,
                context: "alternative (must be positive)",
            });
        }
        Ok(Self {
            values,
            probability: p,
        })
    }

    /// The attribute values of this alternative.
    pub fn values(&self) -> &[PValue] {
        &self.values
    }

    /// The value of attribute `i`.
    pub fn value(&self, i: usize) -> &PValue {
        &self.values[i]
    }

    /// Mutable access for in-place standardization.
    pub fn value_mut(&mut self, i: usize) -> &mut PValue {
        &mut self.values[i]
    }

    /// Unnormalized probability `p(tⁱ)` of this alternative.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

/// An x-tuple: one or more mutually exclusive [`XAlternative`]s.
///
/// The probability that the x-tuple belongs to its relation is
/// `p(t) = Σᵢ p(tⁱ) ≤ 1`; if the sum is below 1 the x-tuple is a *maybe*
/// x-tuple (rendered `?` in the paper's Fig. 5).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct XTuple {
    alternatives: Vec<XAlternative>,
    /// Optional display label (`t31`, `t42`, …) used when reproducing the
    /// paper's figures.
    label: Option<String>,
}

impl XTuple {
    /// Build an x-tuple from alternatives. Errors if empty or if the
    /// probability mass exceeds 1.
    pub fn new(alternatives: Vec<XAlternative>) -> Result<Self, ModelError> {
        if alternatives.is_empty() {
            return Err(ModelError::EmptyXTuple);
        }
        let sum: f64 = alternatives.iter().map(XAlternative::probability).sum();
        if sum > 1.0 + PROB_EPS {
            return Err(ModelError::MassExceeded {
                sum,
                context: "x-tuple alternatives",
            });
        }
        Ok(Self {
            alternatives,
            label: None,
        })
    }

    /// A fluent builder bound to a schema.
    pub fn builder(schema: &Schema) -> XTupleBuilder {
        XTupleBuilder {
            schema: schema.clone(),
            alternatives: Vec::new(),
            label: None,
            error: None,
        }
    }

    /// Wrap a dependency-free [`crate::tuple::ProbTuple`] as an x-tuple with
    /// a single alternative carrying the attribute-level distributions.
    pub fn from_prob_tuple(t: &crate::tuple::ProbTuple) -> Self {
        Self {
            alternatives: vec![XAlternative {
                values: t.values().to_vec(),
                probability: t.probability(),
            }],
            label: None,
        }
    }

    /// Attach a display label (`t31`, …).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The display label, if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// The alternatives `t¹ … tᵏ`.
    pub fn alternatives(&self) -> &[XAlternative] {
        &self.alternatives
    }

    /// Mutable access to alternatives (data preparation).
    pub fn alternatives_mut(&mut self) -> &mut [XAlternative] {
        &mut self.alternatives
    }

    /// Number of alternatives `k`.
    pub fn len(&self) -> usize {
        self.alternatives.len()
    }

    /// Whether the x-tuple has exactly one alternative with certainty 1.
    pub fn is_empty(&self) -> bool {
        false // invariant: never empty (constructor rejects)
    }

    /// Membership probability `p(t) = Σ p(tⁱ)`.
    pub fn probability(&self) -> f64 {
        self.alternatives
            .iter()
            .map(XAlternative::probability)
            .sum::<f64>()
            .min(1.0)
    }

    /// Whether this is a *maybe* x-tuple (`p(t) < 1`, `?` in Fig. 5).
    pub fn is_maybe(&self) -> bool {
        self.probability() < 1.0 - PROB_EPS
    }

    /// Conditioned (normalized) probability of alternative `i`:
    /// `p(tⁱ)/p(t)` — the scaling the paper calls conditioning \[32\] or
    /// scaling \[33\], which removes tuple-membership influence (Eq. 6).
    pub fn normalized_prob(&self, i: usize) -> f64 {
        self.alternatives[i].probability() / self.probability()
    }

    /// Iterate `(alternative, normalized probability)`.
    pub fn conditioned(&self) -> impl Iterator<Item = (&XAlternative, f64)> {
        let total = self.probability();
        self.alternatives
            .iter()
            .map(move |a| (a, a.probability() / total))
    }
}

/// Fluent builder for [`XTuple`].
#[derive(Debug, Clone)]
pub struct XTupleBuilder {
    schema: Schema,
    alternatives: Vec<XAlternative>,
    label: Option<String>,
    error: Option<ModelError>,
}

impl XTupleBuilder {
    /// Add an alternative with certain values given in schema order.
    /// `Value::Null` entries model ⊥ (e.g. `t43`'s alternative
    /// `(John, ⊥)` in Fig. 5).
    pub fn alt<I, V>(mut self, probability: f64, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let vals: Vec<PValue> = values
            .into_iter()
            .map(|v| PValue::certain(v.into()))
            .collect();
        self.push_alt(vals, probability);
        self
    }

    /// Add an alternative with possibly-uncertain values in schema order.
    pub fn alt_pvalues<I>(mut self, probability: f64, values: I) -> Self
    where
        I: IntoIterator<Item = PValue>,
    {
        let vals: Vec<PValue> = values.into_iter().collect();
        self.push_alt(vals, probability);
        self
    }

    /// Attach a display label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Finish, validating arity and mass.
    pub fn build(self) -> Result<XTuple, ModelError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let mut t = XTuple::new(self.alternatives)?;
        t.label = self.label;
        Ok(t)
    }

    fn push_alt(&mut self, vals: Vec<PValue>, probability: f64) {
        if vals.len() != self.schema.arity() {
            self.error = self.error.take().or(Some(ModelError::SchemaMismatch {
                expected: self.schema.arity(),
                got: vals.len(),
            }));
            return;
        }
        match XAlternative::new(vals, probability) {
            Ok(a) => self.alternatives.push(a),
            Err(e) => self.error = self.error.take().or(Some(e)),
        }
    }
}

impl std::fmt::Display for XTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(l) = &self.label {
            write!(f, "{l} ")?;
        }
        write!(f, "{{")?;
        for (i, a) in self.alternatives.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "(")?;
            for (j, v) in a.values().iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "): {}", a.probability())?;
        }
        write!(f, "}}")?;
        if self.is_maybe() {
            write!(f, " ?")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["name", "job"])
    }

    /// The paper's x-tuple t32 (Fig. 5).
    fn t32() -> XTuple {
        XTuple::builder(&schema())
            .alt(0.3, ["Tim", "mechanic"])
            .alt(0.2, ["Jim", "mechanic"])
            .alt(0.4, ["Jim", "baker"])
            .label("t32")
            .build()
            .unwrap()
    }

    #[test]
    fn fig5_t32_membership_and_maybe() {
        let t = t32();
        assert_eq!(t.len(), 3);
        assert!((t.probability() - 0.9).abs() < 1e-12);
        assert!(t.is_maybe()); // ? in Fig. 5
        assert_eq!(t.label(), Some("t32"));
    }

    #[test]
    fn fig5_t42_not_maybe_vs_maybe() {
        let t42 = XTuple::builder(&schema())
            .alt(0.8, ["Tom", "mechanic"])
            .build()
            .unwrap();
        assert!(t42.is_maybe());
        let t41 = XTuple::builder(&schema())
            .alt(0.8, ["John", "pilot"])
            .alt(0.2, ["Johan", "pianist"])
            .build()
            .unwrap();
        assert!(!t41.is_maybe());
        assert!((t41.probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conditioning_normalizes() {
        // Fig. 7: p(t32¹)/p(t32) = 0.3/0.9.
        let t = t32();
        assert!((t.normalized_prob(0) - 0.3 / 0.9).abs() < 1e-12);
        let sum: f64 = t.conditioned().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(XTuple::new(vec![]), Err(ModelError::EmptyXTuple)));
    }

    #[test]
    fn excess_mass_rejected() {
        let r = XTuple::builder(&schema())
            .alt(0.8, ["a", "b"])
            .alt(0.3, ["c", "d"])
            .build();
        assert!(matches!(r, Err(ModelError::MassExceeded { .. })));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let r = XTuple::builder(&schema()).alt(0.5, ["only-name"]).build();
        assert!(matches!(r, Err(ModelError::SchemaMismatch { .. })));
    }

    #[test]
    fn null_values_in_alternatives() {
        // Fig. 5 t43: (John, ⊥): 0.2 | (Sean, pilot): 0.6, maybe.
        let t43 = XTuple::builder(&schema())
            .alt(0.2, [Value::from("John"), Value::Null])
            .alt(0.6, [Value::from("Sean"), Value::from("pilot")])
            .label("t43")
            .build()
            .unwrap();
        assert!(t43.is_maybe());
        assert!(t43.alternatives()[0].value(1).is_null());
    }

    #[test]
    fn uncertain_values_inside_alternative() {
        // Fig. 5 t31: (Johan, mu*): 0.3 with mu* a uniform distribution.
        let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
        let t31 = XTuple::builder(&schema())
            .alt(0.7, ["John", "pilot"])
            .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
            .build()
            .unwrap();
        assert_eq!(t31.alternatives()[1].value(1).support_len(), 2);
        assert!(!t31.is_maybe());
    }

    #[test]
    fn from_prob_tuple_preserves_distributions() {
        let pt = crate::tuple::ProbTuple::builder(&schema())
            .dist("name", [("Tim", 0.6), ("Tom", 0.4)])
            .certain("job", "machinist")
            .probability(0.6)
            .build()
            .unwrap();
        let xt = XTuple::from_prob_tuple(&pt);
        assert_eq!(xt.len(), 1);
        assert!((xt.probability() - 0.6).abs() < 1e-12);
        assert_eq!(xt.alternatives()[0].value(0).support_len(), 2);
    }

    #[test]
    fn display_marks_maybe() {
        let s = t32().to_string();
        assert!(s.ends_with('?'), "{s}");
        assert!(s.contains("t32"));
    }
}
