//! [`PValue`]: a probabilistic attribute value — a categorical distribution
//! over the extended domain `D̂ = D ∪ {⊥}`.

use crate::error::{check_probability, ModelError};
use crate::util::PROB_EPS;
use crate::value::Value;

/// A probabilistic attribute value.
///
/// Stores the explicit (non-⊥) alternatives with their probabilities; any
/// missing mass is the implicit probability of **non-existence** `⊥`. This
/// matches the paper's Fig. 4, where `t11.job = {machinist: 0.7,
/// mechanic: 0.2}` means the person is jobless with probability 0.1.
///
/// Invariants (enforced at construction):
///
/// * every probability lies in `(0, 1]`,
/// * duplicate values are merged,
/// * the total mass is ≤ 1 (within a small epsilon),
/// * alternatives are kept sorted by value for deterministic iteration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PValue {
    /// Sorted, deduplicated non-null alternatives.
    alts: Vec<(Value, f64)>,
}

impl PValue {
    /// A certain value. `Value::Null` yields the certain-⊥ distribution.
    pub fn certain(v: impl Into<Value>) -> Self {
        let v = v.into();
        if v.is_null() {
            Self::null()
        } else {
            Self {
                alts: vec![(v, 1.0)],
            }
        }
    }

    /// The certain non-existence value `⊥`.
    pub fn null() -> Self {
        Self { alts: Vec::new() }
    }

    /// A categorical distribution. Entries may include `Value::Null`, whose
    /// mass simply joins the implicit ⊥ mass. Zero-probability entries are
    /// dropped; duplicates merged; total mass must not exceed 1.
    ///
    /// ```
    /// use probdedup_model::pvalue::PValue;
    /// // Fig. 4: t12.name = {John: 0.5, Johan: 0.5}
    /// let v = PValue::categorical([("John", 0.5), ("Johan", 0.5)]).unwrap();
    /// assert_eq!(v.null_prob(), 0.0);
    /// assert_eq!(v.support_len(), 2);
    /// ```
    pub fn categorical<I, V>(entries: I) -> Result<Self, ModelError>
    where
        I: IntoIterator<Item = (V, f64)>,
        V: Into<Value>,
    {
        let mut alts: Vec<(Value, f64)> = Vec::new();
        let mut total = 0.0;
        for (v, p) in entries {
            let p = check_probability(p, "value alternative")?;
            if p == 0.0 {
                continue;
            }
            total += p;
            let v = v.into();
            if v.is_null() {
                continue; // joins the implicit ⊥ mass
            }
            match alts.iter_mut().find(|(w, _)| *w == v) {
                Some((_, q)) => *q += p,
                None => alts.push((v, p)),
            }
        }
        if total > 1.0 + PROB_EPS {
            return Err(ModelError::MassExceeded {
                sum: total,
                context: "value distribution",
            });
        }
        alts.sort_by(|(a, _), (b, _)| a.cmp(b));
        Ok(Self { alts })
    }

    /// A uniform distribution over `values` (e.g. the paper's `mu*` pattern
    /// expanded over a domain). Errors on an empty iterator.
    pub fn uniform<I, V>(values: I) -> Result<Self, ModelError>
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let vals: Vec<Value> = values.into_iter().map(Into::into).collect();
        if vals.is_empty() {
            return Err(ModelError::EmptyDistribution);
        }
        let p = 1.0 / vals.len() as f64;
        Self::categorical(vals.into_iter().map(|v| (v, p)))
    }

    /// The explicit non-⊥ alternatives, sorted by value.
    pub fn alternatives(&self) -> &[(Value, f64)] {
        &self.alts
    }

    /// Probability that the property does not exist (the ⊥ mass).
    pub fn null_prob(&self) -> f64 {
        (1.0 - self.existence_prob()).max(0.0)
    }

    /// Probability that the property exists (sum over alternatives).
    pub fn existence_prob(&self) -> f64 {
        self.alts.iter().map(|(_, p)| p).sum::<f64>().min(1.0)
    }

    /// Number of non-⊥ alternatives.
    pub fn support_len(&self) -> usize {
        self.alts.len()
    }

    /// Whether the value is certain (a single alternative with mass 1, or
    /// certain ⊥).
    pub fn is_certain(&self) -> bool {
        match self.alts.as_slice() {
            [] => true,
            [(_, p)] => (*p - 1.0).abs() <= PROB_EPS,
            _ => false,
        }
    }

    /// Whether this is the certain-⊥ value.
    pub fn is_null(&self) -> bool {
        self.alts.is_empty()
    }

    /// The most probable outcome: `Some(value)` or `None` for ⊥, together
    /// with its probability. Ties break toward the smaller value (sorted
    /// order) so the choice is deterministic — this implements the
    /// "metadata-based deciding strategy" used for conflict-resolved keys
    /// (Section V-A.2).
    pub fn most_probable(&self) -> (Option<&Value>, f64) {
        let null_p = self.null_prob();
        // Invariant, not input validation: every constructor routes
        // probabilities through `check_probability`, which rejects NaN
        // before a `PValue` can exist.
        let best = self
            .alts
            .iter()
            .max_by(|(_, p), (_, q)| p.partial_cmp(q).expect("no NaN probs"));
        match best {
            Some((v, p)) if *p >= null_p - PROB_EPS => (Some(v), *p),
            _ => (None, null_p),
        }
    }

    /// Iterate over all outcomes *including* the implicit ⊥ mass:
    /// yields `(None, p_⊥)` last when `p_⊥ > ε`.
    pub fn outcomes(&self) -> impl Iterator<Item = (Option<&Value>, f64)> {
        let null_p = self.null_prob();
        self.alts
            .iter()
            .map(|(v, p)| (Some(v), *p))
            .chain((null_p > PROB_EPS).then_some((None, null_p)))
    }

    /// Probability of a concrete outcome (`None` asks for ⊥).
    pub fn prob_of(&self, v: Option<&Value>) -> f64 {
        match v {
            None => self.null_prob(),
            Some(v) => self
                .alts
                .iter()
                .find(|(w, _)| w == v)
                .map_or(0.0, |(_, p)| *p),
        }
    }

    /// Map every alternative value through `f`, re-merging any collisions
    /// (used by data preparation: standardizing the support of a
    /// distribution may unify spellings). `f` returning `Value::Null` moves
    /// that alternative's mass to ⊥.
    pub fn map_values(&self, f: impl Fn(&Value) -> Value) -> Self {
        // Invariant, not input validation: the probabilities fed back in
        // are this value's own (already validated at construction), and
        // merging collisions can only keep the total mass equal.
        Self::categorical(self.alts.iter().map(|(v, p)| (f(v), *p)))
            .expect("mass is preserved by mapping")
    }

    /// Condition on existence: rescale the alternatives so they sum to 1.
    /// Returns `None` for the certain-⊥ value (conditioning on a
    /// zero-probability event).
    pub fn conditioned_on_existence(&self) -> Option<Self> {
        let mass = self.existence_prob();
        if mass <= PROB_EPS {
            return None;
        }
        Some(Self {
            alts: self
                .alts
                .iter()
                .map(|(v, p)| (v.clone(), (p / mass).min(1.0)))
                .collect(),
        })
    }

    /// Shannon entropy (nats) of the full outcome distribution including ⊥.
    /// Zero for certain values; larger means more uncertain.
    pub fn entropy(&self) -> f64 {
        self.outcomes()
            .map(|(_, p)| if p > 0.0 { -p * p.ln() } else { 0.0 })
            .sum()
    }

    /// Expected similarity helper: total probability mass shared with
    /// `other` under exact equality, i.e. `P(a = b)` of Eq. 4 assuming
    /// independence. (The general Eq. 5 with a similarity kernel lives in
    /// the matching crate; this is used by model-level tests.)
    pub fn equality_prob(&self, other: &PValue) -> f64 {
        let mut p = self.null_prob() * other.null_prob();
        for (v, pa) in &self.alts {
            p += pa * other.prob_of(Some(v));
        }
        p.min(1.0)
    }
}

impl From<Value> for PValue {
    fn from(v: Value) -> Self {
        PValue::certain(v)
    }
}

impl std::fmt::Display for PValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            return write!(f, "⊥");
        }
        if self.is_certain() {
            return write!(f, "{}", self.alts[0].0);
        }
        write!(f, "{{")?;
        for (i, (v, p)) in self.alts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}: {p}")?;
        }
        if self.null_prob() > PROB_EPS {
            write!(f, ", ⊥: {:.3}", self.null_prob())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certain_values() {
        let v = PValue::certain("Tim");
        assert!(v.is_certain());
        assert!(!v.is_null());
        assert_eq!(v.existence_prob(), 1.0);
        assert_eq!(v.null_prob(), 0.0);
        assert_eq!(v.support_len(), 1);
        assert_eq!(v.to_string(), "Tim");
    }

    #[test]
    fn certain_null() {
        let v = PValue::null();
        assert!(v.is_certain());
        assert!(v.is_null());
        assert_eq!(v.null_prob(), 1.0);
        assert_eq!(v.to_string(), "⊥");
        assert_eq!(PValue::certain(Value::Null), v);
    }

    #[test]
    fn paper_fig4_t11_job() {
        // {machinist: 0.7, mechanic: 0.2} → jobless with 0.1.
        let v = PValue::categorical([("machinist", 0.7), ("mechanic", 0.2)]).unwrap();
        assert!((v.null_prob() - 0.1).abs() < 1e-12);
        assert!((v.existence_prob() - 0.9).abs() < 1e-12);
        assert!(!v.is_certain());
        let (best, p) = v.most_probable();
        assert_eq!(best.unwrap().as_text(), Some("machinist"));
        assert!((p - 0.7).abs() < 1e-12);
    }

    #[test]
    fn categorical_merges_duplicates_and_drops_zeros() {
        let v = PValue::categorical([("a", 0.3), ("a", 0.2), ("b", 0.0)]).unwrap();
        assert_eq!(v.support_len(), 1);
        assert!((v.prob_of(Some(&Value::from("a"))) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn categorical_rejects_bad_mass() {
        assert!(PValue::categorical([("a", 0.7), ("b", 0.5)]).is_err());
        assert!(PValue::categorical([("a", -0.1)]).is_err());
        assert!(PValue::categorical([("a", f64::NAN)]).is_err());
    }

    #[test]
    fn explicit_null_mass_joins_implicit() {
        let v = PValue::categorical([(Value::from("a"), 0.5), (Value::Null, 0.3)]).unwrap();
        assert_eq!(v.support_len(), 1);
        assert!((v.null_prob() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_distribution() {
        let v = PValue::uniform(["musician", "museum guide"]).unwrap();
        assert!((v.prob_of(Some(&Value::from("musician"))) - 0.5).abs() < 1e-12);
        assert!(PValue::uniform(Vec::<String>::new()).is_err());
    }

    #[test]
    fn outcomes_include_null() {
        let v = PValue::categorical([("a", 0.6)]).unwrap();
        let outcomes: Vec<(Option<String>, f64)> = v
            .outcomes()
            .map(|(o, p)| (o.map(|v| v.render()), p))
            .collect();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].0.as_deref(), Some("a"));
        assert!((outcomes[1].1 - 0.4).abs() < 1e-12);
    }

    #[test]
    fn most_probable_prefers_null_when_dominant() {
        let v = PValue::categorical([("a", 0.2)]).unwrap();
        let (best, p) = v.most_probable();
        assert!(best.is_none());
        assert!((p - 0.8).abs() < 1e-12);
    }

    #[test]
    fn map_values_remerges() {
        let v = PValue::categorical([("Tim", 0.5), ("tim", 0.4)]).unwrap();
        let lower = v.map_values(|x| Value::from(x.render().to_lowercase()));
        assert_eq!(lower.support_len(), 1);
        assert!((lower.prob_of(Some(&Value::from("tim"))) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn map_values_to_null_moves_mass() {
        let v = PValue::categorical([("x", 0.5), ("y", 0.5)]).unwrap();
        let mapped = v.map_values(|w| {
            if w.render() == "x" {
                Value::Null
            } else {
                w.clone()
            }
        });
        assert!((mapped.null_prob() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conditioning_on_existence() {
        let v = PValue::categorical([("a", 0.6), ("b", 0.3)]).unwrap();
        let c = v.conditioned_on_existence().unwrap();
        assert!((c.existence_prob() - 1.0).abs() < 1e-9);
        assert!((c.prob_of(Some(&Value::from("a"))) - 2.0 / 3.0).abs() < 1e-12);
        assert!(PValue::null().conditioned_on_existence().is_none());
    }

    #[test]
    fn entropy_ordering() {
        let certain = PValue::certain("a");
        let coin = PValue::categorical([("a", 0.5), ("b", 0.5)]).unwrap();
        let skewed = PValue::categorical([("a", 0.9), ("b", 0.1)]).unwrap();
        assert_eq!(certain.entropy(), 0.0);
        assert!(coin.entropy() > skewed.entropy());
        assert!((coin.entropy() - f64::ln(2.0)).abs() < 1e-12);
    }

    #[test]
    fn equality_prob_eq4() {
        // Section IV-A (error-free): P(a1 = a2).
        let a = PValue::categorical([("Tim", 0.6), ("Tom", 0.4)]).unwrap();
        let b = PValue::categorical([("Tim", 0.7), ("Kim", 0.3)]).unwrap();
        assert!((a.equality_prob(&b) - 0.42).abs() < 1e-12);
        // ⊥ matches ⊥: sim(⊥,⊥) = 1 contributes null×null.
        let c = PValue::categorical([("x", 0.5)]).unwrap(); // ⊥ mass 0.5
        let d = PValue::categorical([("y", 0.2)]).unwrap(); // ⊥ mass 0.8
        assert!((c.equality_prob(&d) - 0.4).abs() < 1e-12);
        // Symmetry.
        assert!((a.equality_prob(&b) - b.equality_prob(&a)).abs() < 1e-12);
    }

    #[test]
    fn display_of_distributions() {
        let v = PValue::categorical([("John", 0.5), ("Johan", 0.5)]).unwrap();
        let s = v.to_string();
        assert!(s.contains("John") && s.contains("Johan"), "{s}");
        let with_null = PValue::categorical([("a", 0.7)]).unwrap();
        assert!(with_null.to_string().contains('⊥'));
    }

    #[test]
    fn deterministic_sorted_alternatives() {
        let v1 = PValue::categorical([("b", 0.5), ("a", 0.5)]).unwrap();
        let v2 = PValue::categorical([("a", 0.5), ("b", 0.5)]).unwrap();
        assert_eq!(v1, v2);
        assert_eq!(v1.alternatives()[0].0.render(), "a");
    }
}
