//! Probabilistic relations: collections of [`ProbTuple`]s (dependency-free
//! model, Fig. 4) and x-relations of [`XTuple`]s (Fig. 5).

use crate::error::ModelError;
use crate::schema::Schema;
use crate::tuple::ProbTuple;
use crate::xtuple::XTuple;

/// A probabilistic relation in the dependency-free model (Section IV-A):
/// each tuple carries attribute-level distributions and a membership
/// probability, and attribute values are treated as independent.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Relation {
    schema: Schema,
    tuples: Vec<ProbTuple>,
}

impl Relation {
    /// An empty relation over `schema`.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            tuples: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Append a tuple (panics on arity mismatch; use [`Relation::try_push`]
    /// for fallible insertion).
    pub fn push(&mut self, t: ProbTuple) {
        self.try_push(t).expect("tuple arity must match schema");
    }

    /// Append a tuple, validating arity.
    pub fn try_push(&mut self, t: ProbTuple) -> Result<(), ModelError> {
        if t.arity() != self.schema.arity() {
            return Err(ModelError::SchemaMismatch {
                expected: self.schema.arity(),
                got: t.arity(),
            });
        }
        self.tuples.push(t);
        Ok(())
    }

    /// The tuples in insertion order.
    pub fn tuples(&self) -> &[ProbTuple] {
        &self.tuples
    }

    /// Mutable tuple access (data preparation).
    pub fn tuples_mut(&mut self) -> &mut [ProbTuple] {
        &mut self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Convert to an x-relation (each tuple becomes a one-alternative
    /// x-tuple keeping its attribute-level distributions).
    pub fn to_x_relation(&self) -> XRelation {
        let mut x = XRelation::new(self.schema.clone());
        for t in &self.tuples {
            x.push(XTuple::from_prob_tuple(t));
        }
        x
    }
}

/// An x-relation: a probabilistic relation whose rows are x-tuples
/// (Fig. 5's ℛ3 and ℛ4).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct XRelation {
    schema: Schema,
    xtuples: Vec<XTuple>,
}

impl XRelation {
    /// An empty x-relation over `schema`.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            xtuples: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Append an x-tuple (panics on arity mismatch).
    pub fn push(&mut self, t: XTuple) {
        self.try_push(t).expect("x-tuple arity must match schema");
    }

    /// Append an x-tuple, validating the arity of every alternative.
    pub fn try_push(&mut self, t: XTuple) -> Result<(), ModelError> {
        for alt in t.alternatives() {
            if alt.values().len() != self.schema.arity() {
                return Err(ModelError::SchemaMismatch {
                    expected: self.schema.arity(),
                    got: alt.values().len(),
                });
            }
        }
        self.xtuples.push(t);
        Ok(())
    }

    /// The x-tuples in insertion order.
    pub fn xtuples(&self) -> &[XTuple] {
        &self.xtuples
    }

    /// Mutable access (data preparation).
    pub fn xtuples_mut(&mut self) -> &mut [XTuple] {
        &mut self.xtuples
    }

    /// Number of x-tuples.
    pub fn len(&self) -> usize {
        self.xtuples.len()
    }

    /// Whether the x-relation is empty.
    pub fn is_empty(&self) -> bool {
        self.xtuples.is_empty()
    }

    /// The x-tuple at `i`.
    pub fn get(&self, i: usize) -> Option<&XTuple> {
        self.xtuples.get(i)
    }

    /// Union of two x-relations (the paper's ℛ34 = ℛ3 ∪ ℛ4, Section V-A),
    /// requiring structurally compatible schemas. Tuples of `self` precede
    /// tuples of `other`; the returned offset is where `other`'s rows start.
    pub fn union(&self, other: &XRelation) -> Result<(XRelation, usize), ModelError> {
        if !self.schema.compatible_with(&other.schema) {
            return Err(ModelError::IncompatibleSchemas);
        }
        let mut out = self.clone();
        let offset = out.len();
        out.xtuples.extend(other.xtuples.iter().cloned());
        Ok((out, offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pvalue::PValue;

    fn schema() -> Schema {
        Schema::new(["name", "job"])
    }

    /// The paper's ℛ1 (Fig. 4).
    pub(crate) fn fig4_r1() -> Relation {
        let s = schema();
        let mut r = Relation::new(s.clone());
        r.push(
            ProbTuple::builder(&s)
                .certain("name", "Tim")
                .dist("job", [("machinist", 0.7), ("mechanic", 0.2)])
                .probability(1.0)
                .build()
                .unwrap(),
        );
        r.push(
            ProbTuple::builder(&s)
                .dist("name", [("John", 0.5), ("Johan", 0.5)])
                .dist("job", [("baker", 0.7), ("confectioner", 0.3)])
                .probability(1.0)
                .build()
                .unwrap(),
        );
        r.push(
            ProbTuple::builder(&s)
                .dist("name", [("Tim", 0.6), ("Tom", 0.4)])
                .certain("job", "machinist")
                .probability(0.6)
                .build()
                .unwrap(),
        );
        r
    }

    #[test]
    fn fig4_relation_roundtrip() {
        let r = fig4_r1();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        // t11 jobless with 0.1.
        assert!((r.tuples()[0].value(1).null_prob() - 0.1).abs() < 1e-12);
        let x = r.to_x_relation();
        assert_eq!(x.len(), 3);
        assert!((x.xtuples()[2].probability() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn push_validates_arity() {
        let mut r = Relation::new(schema());
        let bad = ProbTuple::new(vec![PValue::certain("only-one")], 1.0).unwrap();
        assert!(r.try_push(bad).is_err());
        assert!(r.is_empty());
    }

    #[test]
    fn xrelation_push_validates_alternative_arity() {
        let mut x = XRelation::new(schema());
        let one_col = Schema::new(["name"]);
        let bad = XTuple::builder(&one_col).alt(0.5, ["x"]).build().unwrap();
        assert!(x.try_push(bad).is_err());
    }

    #[test]
    fn union_concatenates_with_offset() {
        let s = schema();
        let mut r3 = XRelation::new(s.clone());
        r3.push(
            XTuple::builder(&s)
                .alt(1.0, ["John", "pilot"])
                .build()
                .unwrap(),
        );
        r3.push(
            XTuple::builder(&s)
                .alt(0.9, ["Tim", "mechanic"])
                .build()
                .unwrap(),
        );
        let mut r4 = XRelation::new(s.clone());
        r4.push(
            XTuple::builder(&s)
                .alt(0.8, ["Tom", "mechanic"])
                .build()
                .unwrap(),
        );
        let (r34, offset) = r3.union(&r4).unwrap();
        assert_eq!(r34.len(), 3);
        assert_eq!(offset, 2);
        assert!((r34.get(2).unwrap().probability() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn union_rejects_incompatible_schemas() {
        let a = XRelation::new(schema());
        let b = XRelation::new(Schema::new(["solo"]));
        assert!(matches!(a.union(&b), Err(ModelError::IncompatibleSchemas)));
    }

    #[test]
    fn get_out_of_range() {
        let x = XRelation::new(schema());
        assert!(x.get(0).is_none());
    }
}
