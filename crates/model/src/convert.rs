//! Conversions between the dependency-free model ([`ProbTuple`]) and the
//! x-tuple model ([`XTuple`]).
//!
//! * [`expand_prob_tuple`] turns attribute-level independence into explicit
//!   alternatives (the cartesian product of attribute outcomes) — exact but
//!   potentially exponential, hence the mandatory limit.
//! * [`marginalize_xtuple`] projects an x-tuple down to independent
//!   per-attribute marginals — always cheap, but *lossy*: dependencies
//!   between attribute values are forgotten.
//!
//! Round-tripping `expand ∘ marginalize` is the identity only for x-tuples
//! whose alternatives are already independent combinations; the tests
//! demonstrate both the lossless and the lossy direction.

use crate::error::ModelError;
use crate::pvalue::PValue;
use crate::tuple::ProbTuple;
use crate::value::Value;
use crate::xtuple::{XAlternative, XTuple};

/// Expand a dependency-free probabilistic tuple into an x-tuple whose
/// alternatives have **certain** values: one alternative per combination of
/// attribute outcomes (including ⊥ outcomes), with probability
/// `p(t) · Π P(attr = outcome)`.
///
/// Refuses with [`ModelError::ExpansionLimitExceeded`] if the number of
/// combinations exceeds `limit`.
pub fn expand_prob_tuple(t: &ProbTuple, limit: u128) -> Result<XTuple, ModelError> {
    // Outcome lists per attribute: (value-or-null, probability).
    let outcome_lists: Vec<Vec<(Option<Value>, f64)>> = t
        .values()
        .iter()
        .map(|pv| {
            pv.outcomes()
                .map(|(v, p)| (v.cloned(), p))
                .collect::<Vec<_>>()
        })
        .collect();
    let count = outcome_lists
        .iter()
        .fold(1u128, |acc, l| acc.saturating_mul(l.len() as u128));
    if count > limit {
        return Err(ModelError::ExpansionLimitExceeded { count, limit });
    }

    let mut alternatives = Vec::with_capacity(count as usize);
    // Odometer over the outcome lists.
    let mut cursor = vec![0usize; outcome_lists.len()];
    loop {
        let mut values = Vec::with_capacity(cursor.len());
        let mut p = t.probability();
        for (i, &pos) in cursor.iter().enumerate() {
            let (v, q) = &outcome_lists[i][pos];
            values.push(match v {
                Some(v) => PValue::certain(v.clone()),
                None => PValue::null(),
            });
            p *= q;
        }
        if p > 0.0 {
            alternatives.push(XAlternative::new(values, p)?);
        }
        // Advance.
        let mut done = true;
        for i in (0..cursor.len()).rev() {
            cursor[i] += 1;
            if cursor[i] < outcome_lists[i].len() {
                done = false;
                break;
            }
            cursor[i] = 0;
        }
        if done {
            break;
        }
    }
    XTuple::new(alternatives)
}

/// Project an x-tuple to a dependency-free tuple by per-attribute
/// marginalization, conditioning on existence:
/// `P(attr = v) = Σᵢ (p(tⁱ)/p(t)) · Pᵢ(attr = v)`.
///
/// The resulting tuple keeps the original membership probability `p(t)`.
/// **Lossy**: dependencies between attributes are dropped.
pub fn marginalize_xtuple(t: &XTuple) -> ProbTuple {
    let arity = t.alternatives()[0].values().len();
    let mut values = Vec::with_capacity(arity);
    for a in 0..arity {
        let mut entries: Vec<(Value, f64)> = Vec::new();
        for (alt, w) in t.conditioned() {
            for (v, p) in alt.value(a).alternatives() {
                entries.push((v.clone(), w * p));
            }
        }
        values.push(PValue::categorical(entries).expect("marginal mass ≤ 1 by construction"));
    }
    ProbTuple::new(values, t.probability()).expect("p(t) ∈ (0,1] by x-tuple invariant")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::new(["name", "job"])
    }

    #[test]
    fn expand_fig4_t11() {
        // t11 = (Tim, {machinist .7, mechanic .2}), p = 1.0
        // → 3 alternatives: (Tim, machinist) .7, (Tim, mechanic) .2, (Tim, ⊥) .1.
        let t = ProbTuple::builder(&schema())
            .certain("name", "Tim")
            .dist("job", [("machinist", 0.7), ("mechanic", 0.2)])
            .build()
            .unwrap();
        let x = expand_prob_tuple(&t, 100).unwrap();
        assert_eq!(x.len(), 3);
        assert!((x.probability() - 1.0).abs() < 1e-12);
        let null_alt = x
            .alternatives()
            .iter()
            .find(|a| a.value(1).is_null())
            .unwrap();
        assert!((null_alt.probability() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn expand_respects_membership_probability() {
        let t = ProbTuple::builder(&schema())
            .dist("name", [("Tim", 0.6), ("Tom", 0.4)])
            .certain("job", "machinist")
            .probability(0.6)
            .build()
            .unwrap();
        let x = expand_prob_tuple(&t, 100).unwrap();
        assert_eq!(x.len(), 2);
        assert!((x.probability() - 0.6).abs() < 1e-12);
        assert!((x.alternatives()[0].probability() - 0.36).abs() < 1e-12);
    }

    #[test]
    fn expand_limit_enforced() {
        let t = ProbTuple::builder(&schema())
            .dist("name", [("a", 0.5), ("b", 0.5)])
            .dist("job", [("x", 0.5), ("y", 0.5)])
            .build()
            .unwrap();
        assert!(matches!(
            expand_prob_tuple(&t, 3),
            Err(ModelError::ExpansionLimitExceeded { count: 4, limit: 3 })
        ));
        assert_eq!(expand_prob_tuple(&t, 4).unwrap().len(), 4);
    }

    #[test]
    fn marginalize_recovers_independent_distributions() {
        let t = ProbTuple::builder(&schema())
            .dist("name", [("Tim", 0.6), ("Tom", 0.4)])
            .dist("job", [("x", 0.5), ("y", 0.5)])
            .probability(0.8)
            .build()
            .unwrap();
        let x = expand_prob_tuple(&t, 100).unwrap();
        let back = marginalize_xtuple(&x);
        assert!((back.probability() - 0.8).abs() < 1e-12);
        for (orig, rec) in t.values().iter().zip(back.values()) {
            for (v, p) in orig.alternatives() {
                assert!(
                    (rec.prob_of(Some(v)) - p).abs() < 1e-9,
                    "marginal mismatch for {v}"
                );
            }
        }
    }

    #[test]
    fn marginalize_is_lossy_for_dependent_alternatives() {
        // Perfectly correlated: (a, x) or (b, y). Marginals are uniform, so
        // re-expansion would also produce the impossible (a, y) combination.
        let x = XTuple::builder(&schema())
            .alt(0.5, ["a", "x"])
            .alt(0.5, ["b", "y"])
            .build()
            .unwrap();
        let m = marginalize_xtuple(&x);
        assert!((m.value(0).prob_of(Some(&Value::from("a"))) - 0.5).abs() < 1e-12);
        let re = expand_prob_tuple(&m, 100).unwrap();
        assert_eq!(re.len(), 4, "dependency information is gone");
    }

    #[test]
    fn marginalize_handles_null_and_uncertain_values() {
        let mu = PValue::uniform(["musician", "museum guide"]).unwrap();
        let x = XTuple::builder(&schema())
            .alt(0.2, [Value::from("John"), Value::Null])
            .alt_pvalues(0.6, [PValue::certain("Johan"), mu])
            .build()
            .unwrap();
        let m = marginalize_xtuple(&x);
        // P(job = ⊥ | exists) = 0.2/0.8 = 0.25.
        assert!((m.value(1).null_prob() - 0.25).abs() < 1e-12);
        // P(job = musician | exists) = 0.75 · 0.5.
        assert!((m.value(1).prob_of(Some(&Value::from("musician"))) - 0.375).abs() < 1e-12);
    }
}
