//! A human-readable text format for probabilistic (x-)relations.
//!
//! Enables datasets to be checked into repositories, diffed, and fed to the
//! CLI. The format is line-based:
//!
//! ```text
//! # comments and blank lines are ignored
//! schema name:text job:text age:int
//! xtuple t31
//!   alt 0.7 | John | pilot | 34
//!   alt 0.3 | Johan | {musician: 0.5; museum guide: 0.5} | 34
//! xtuple
//!   alt 0.8 | Tom | mechanic | _
//! ```
//!
//! Value cells: `_` (or `⊥`) is non-existence; `{v: p; v: p}` is a
//! categorical distribution (missing mass is implicit ⊥); anything else is
//! a plain literal parsed according to the schema's attribute type.
//! Distributions parse their inner literals the same way. Pipes inside
//! values are not supported (the format targets clean identifiers, names
//! and numbers).

use std::fmt::Write as _;

use crate::pvalue::PValue;
use crate::relation::XRelation;
use crate::schema::{AttrType, Schema};
use crate::value::Value;
use crate::xtuple::XTuple;

/// Error with line information for parse failures.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

/// Render an x-relation in the text format.
pub fn write_xrelation(r: &XRelation) -> String {
    let mut out = String::new();
    write!(out, "schema").expect("write to String");
    for a in r.schema().attrs() {
        let ty = match a.ty {
            AttrType::Text => "text",
            AttrType::Int => "int",
            AttrType::Real => "real",
            AttrType::Bool => "bool",
        };
        write!(out, " {}:{}", a.name, ty).expect("write to String");
    }
    out.push('\n');
    for t in r.xtuples() {
        match t.label() {
            Some(l) => writeln!(out, "xtuple {l}").expect("write to String"),
            None => writeln!(out, "xtuple").expect("write to String"),
        }
        for alt in t.alternatives() {
            write!(out, "  alt {}", alt.probability()).expect("write to String");
            for v in alt.values() {
                write!(out, " | {}", render_pvalue(v)).expect("write to String");
            }
            out.push('\n');
        }
    }
    out
}

fn render_pvalue(v: &PValue) -> String {
    if v.is_null() {
        return "_".to_string();
    }
    if v.is_certain() {
        return v.alternatives()[0].0.render();
    }
    let inner: Vec<String> = v
        .alternatives()
        .iter()
        .map(|(val, p)| format!("{}: {}", val.render(), p))
        .collect();
    format!("{{{}}}", inner.join("; "))
}

/// An x-tuple under assembly: its optional label and alternative rows.
type PendingXTuple = (Option<String>, Vec<(f64, Vec<PValue>)>);

/// Parse an x-relation from the text format.
pub fn parse_xrelation(input: &str) -> Result<XRelation, ParseError> {
    let mut schema: Option<Schema> = None;
    let mut relation: Option<XRelation> = None;
    let mut pending: Option<PendingXTuple> = None;

    let flush = |relation: &mut Option<XRelation>,
                 pending: &mut Option<PendingXTuple>,
                 line: usize|
     -> Result<(), ParseError> {
        if let Some((label, alts)) = pending.take() {
            if alts.is_empty() {
                return Err(ParseError::new(line, "x-tuple without alternatives"));
            }
            let rel = relation.as_mut().expect("schema precedes xtuples");
            let mut builder_alts = Vec::new();
            for (p, values) in alts {
                builder_alts.push(
                    crate::xtuple::XAlternative::new(values, p)
                        .map_err(|e| ParseError::new(line, e.to_string()))?,
                );
            }
            let mut t =
                XTuple::new(builder_alts).map_err(|e| ParseError::new(line, e.to_string()))?;
            if let Some(l) = label {
                t = t.with_label(l);
            }
            rel.try_push(t)
                .map_err(|e| ParseError::new(line, e.to_string()))?;
        }
        Ok(())
    };

    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("schema") {
            if schema.is_some() {
                return Err(ParseError::new(lineno, "duplicate schema line"));
            }
            let mut defs = Vec::new();
            for part in rest.split_whitespace() {
                let (name, ty) = part.split_once(':').ok_or_else(|| {
                    ParseError::new(lineno, format!("attribute {part:?} needs name:type"))
                })?;
                let ty = match ty {
                    "text" => AttrType::Text,
                    "int" => AttrType::Int,
                    "real" => AttrType::Real,
                    "bool" => AttrType::Bool,
                    other => {
                        return Err(ParseError::new(
                            lineno,
                            format!("unknown attribute type {other:?}"),
                        ))
                    }
                };
                defs.push((name.to_string(), ty));
            }
            if defs.is_empty() {
                return Err(ParseError::new(
                    lineno,
                    "schema needs at least one attribute",
                ));
            }
            let s = Schema::with_types(defs);
            relation = Some(XRelation::new(s.clone()));
            schema = Some(s);
        } else if let Some(rest) = line.strip_prefix("xtuple") {
            if schema.is_none() {
                return Err(ParseError::new(lineno, "xtuple before schema"));
            }
            flush(&mut relation, &mut pending, lineno)?;
            let label = rest.trim();
            pending = Some(((!label.is_empty()).then(|| label.to_string()), Vec::new()));
        } else if let Some(rest) = line.strip_prefix("alt") {
            let schema = schema
                .as_ref()
                .ok_or_else(|| ParseError::new(lineno, "alt before schema"))?;
            let (_, alts) = pending
                .as_mut()
                .ok_or_else(|| ParseError::new(lineno, "alt outside an xtuple"))?;
            let mut cells = rest.split('|').map(str::trim);
            let prob: f64 = cells
                .next()
                .filter(|s| !s.is_empty())
                .ok_or_else(|| ParseError::new(lineno, "alt needs a probability"))?
                .parse()
                .map_err(|_| ParseError::new(lineno, "invalid probability"))?;
            let values: Vec<&str> = cells.collect();
            if values.len() != schema.arity() {
                return Err(ParseError::new(
                    lineno,
                    format!(
                        "expected {} value cells, got {}",
                        schema.arity(),
                        values.len()
                    ),
                ));
            }
            let parsed: Result<Vec<PValue>, ParseError> = values
                .iter()
                .enumerate()
                .map(|(i, cell)| parse_pvalue(cell, schema.type_of(i), lineno))
                .collect();
            alts.push((prob, parsed?));
        } else {
            return Err(ParseError::new(
                lineno,
                format!("unrecognized line {line:?}"),
            ));
        }
    }
    let last_line = input.lines().count();
    flush(&mut relation, &mut pending, last_line)?;
    relation.ok_or_else(|| ParseError::new(1, "input has no schema"))
}

fn parse_literal(s: &str, ty: AttrType, line: usize) -> Result<Value, ParseError> {
    if s == "_" || s == "⊥" {
        return Ok(Value::Null);
    }
    Ok(match ty {
        AttrType::Text => Value::Text(s.to_string()),
        AttrType::Int => Value::Int(
            s.parse()
                .map_err(|_| ParseError::new(line, format!("invalid int {s:?}")))?,
        ),
        AttrType::Real => Value::Real(
            s.parse()
                .map_err(|_| ParseError::new(line, format!("invalid real {s:?}")))?,
        ),
        AttrType::Bool => Value::Bool(
            s.parse()
                .map_err(|_| ParseError::new(line, format!("invalid bool {s:?}")))?,
        ),
    })
}

fn parse_pvalue(cell: &str, ty: AttrType, line: usize) -> Result<PValue, ParseError> {
    if cell == "_" || cell == "⊥" {
        return Ok(PValue::null());
    }
    if let Some(inner) = cell.strip_prefix('{') {
        let inner = inner
            .strip_suffix('}')
            .ok_or_else(|| ParseError::new(line, "unterminated distribution"))?;
        let mut entries = Vec::new();
        for part in inner.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (val, p) = part.rsplit_once(':').ok_or_else(|| {
                ParseError::new(line, format!("entry {part:?} needs value: prob"))
            })?;
            let p: f64 = p
                .trim()
                .parse()
                .map_err(|_| ParseError::new(line, format!("invalid probability in {part:?}")))?;
            entries.push((parse_literal(val.trim(), ty, line)?, p));
        }
        return PValue::categorical(entries).map_err(|e| ParseError::new(line, e.to_string()));
    }
    Ok(PValue::certain(parse_literal(cell, ty, line)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5_style_relation() -> XRelation {
        let s = Schema::with_types([
            ("name", AttrType::Text),
            ("job", AttrType::Text),
            ("age", AttrType::Int),
        ]);
        let mut r = XRelation::new(s.clone());
        let mu = PValue::categorical([("musician", 0.5), ("museum guide", 0.5)]).unwrap();
        r.push(
            XTuple::builder(&s)
                .alt(
                    0.7,
                    [Value::from("John"), Value::from("pilot"), Value::Int(34)],
                )
                .alt_pvalues(
                    0.3,
                    [
                        PValue::certain("Johan"),
                        mu,
                        PValue::certain(Value::Int(34)),
                    ],
                )
                .label("t31")
                .build()
                .unwrap(),
        );
        r.push(
            XTuple::builder(&s)
                .alt(0.8, [Value::from("Tom"), Value::Null, Value::Int(51)])
                .build()
                .unwrap(),
        );
        r
    }

    #[test]
    fn roundtrip_preserves_relation() {
        let r = fig5_style_relation();
        let text = write_xrelation(&r);
        let parsed = parse_xrelation(&text).unwrap();
        assert_eq!(parsed.len(), r.len());
        assert_eq!(parsed.schema().arity(), 3);
        assert_eq!(parsed.get(0).unwrap().label(), Some("t31"));
        for (a, b) in r.xtuples().iter().zip(parsed.xtuples()) {
            assert_eq!(a.len(), b.len());
            assert!((a.probability() - b.probability()).abs() < 1e-12);
            for (aa, ba) in a.alternatives().iter().zip(b.alternatives()) {
                assert_eq!(aa.values(), ba.values());
            }
        }
    }

    #[test]
    fn parse_minimal_document() {
        let doc = "\
# a comment
schema name:text job:text

xtuple t1
  alt 0.9 | Tim | {machinist: 0.7; mechanic: 0.2}
xtuple
  alt 1.0 | John | _
";
        let r = parse_xrelation(doc).unwrap();
        assert_eq!(r.len(), 2);
        let t1 = r.get(0).unwrap();
        assert_eq!(t1.label(), Some("t1"));
        assert!((t1.alternatives()[0].value(1).null_prob() - 0.1).abs() < 1e-12);
        assert!(r.get(1).unwrap().alternatives()[0].value(1).is_null());
    }

    #[test]
    fn typed_literals() {
        let doc = "\
schema n:int r:real b:bool
xtuple
  alt 1.0 | 42 | 2.5 | true
  ";
        let r = parse_xrelation(doc).unwrap();
        let alt = &r.get(0).unwrap().alternatives()[0];
        assert_eq!(alt.value(0).alternatives()[0].0, Value::Int(42));
        assert_eq!(alt.value(1).alternatives()[0].0, Value::Real(2.5));
        assert_eq!(alt.value(2).alternatives()[0].0, Value::Bool(true));
    }

    #[test]
    fn error_positions_and_messages() {
        let cases: Vec<(&str, usize, &str)> = vec![
            ("xtuple t1", 1, "before schema"),
            ("schema a:text\nnonsense", 2, "unrecognized"),
            ("schema a:wat", 1, "unknown attribute type"),
            ("schema a:text\nalt 1.0 | x", 2, "outside an xtuple"),
            (
                "schema a:text\nxtuple\n  alt 1.0 | x | y",
                3,
                "expected 1 value cells",
            ),
            (
                "schema a:text\nxtuple\n  alt oops | x",
                3,
                "invalid probability",
            ),
            ("schema a:int\nxtuple\n  alt 1.0 | xyz", 3, "invalid int"),
            (
                "schema a:text\nxtuple\n  alt 1.0 | {x: 0.5",
                3,
                "unterminated",
            ),
            (
                "schema a:text\nxtuple t\nxtuple u\n  alt 1 | x",
                3,
                "without alternatives",
            ),
            ("schema a:text\nschema b:text", 2, "duplicate schema"),
            ("", 1, "no schema"),
        ];
        for (doc, line, needle) in cases {
            let err = parse_xrelation(doc).unwrap_err();
            assert_eq!(err.line, line, "{doc:?} → {err}");
            assert!(err.message.contains(needle), "{doc:?} → {err}");
        }
    }

    #[test]
    fn distribution_mass_validated() {
        let doc = "schema a:text\nxtuple\n  alt 1.0 | {x: 0.8; y: 0.5}";
        let err = parse_xrelation(doc).unwrap_err();
        assert!(err.message.contains("exceeds 1"), "{err}");
    }

    #[test]
    fn values_with_colons_parse_via_rsplit() {
        // rsplit_once(':') keeps "NGC:1976"-style values intact.
        let doc = "schema a:text\nxtuple\n  alt 1.0 | {NGC:1976: 0.6; M:42: 0.4}";
        let r = parse_xrelation(doc).unwrap();
        let v = r.get(0).unwrap().alternatives()[0].value(0);
        assert_eq!(v.support_len(), 2);
        assert!(v
            .alternatives()
            .iter()
            .any(|(val, _)| val.render() == "NGC:1976"));
    }

    #[test]
    fn write_renders_maybe_and_null() {
        let r = fig5_style_relation();
        let text = write_xrelation(&r);
        assert!(text.contains("alt 0.8 | Tom | _ | 51"), "{text}");
        assert!(
            text.contains("{museum guide: 0.5; musician: 0.5}"),
            "{text}"
        );
    }
}
