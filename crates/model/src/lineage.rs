//! Mutually exclusive tuple groups — the minimal lineage mechanism the
//! paper's conclusion calls for.
//!
//! Section VI: *"by using a probabilistic data model for the target schema,
//! any kind of uncertainty arising in the duplicate detection process … can
//! be directly modeled in the resulting data by creating mutually exclusive
//! sets of tuples. For that purpose, the used probabilistic data model must
//! be able to represent dependencies between multiple sets of tuples (in the
//! ULDB model … realized by the concept of lineage)."*
//!
//! [`MutexGroups`] records, over the rows of a result [`XRelation`], which
//! row sets are mutually exclusive: within one group, **at most one row
//! exists in any possible world**. The pipeline uses this to emit
//! "possibly-merged" results: a group containing the merged tuple (with
//! probability = match confidence) and the two unmerged originals.

use crate::error::ModelError;
use crate::relation::XRelation;
use crate::util::PROB_EPS;

/// Mutually exclusive groups over the row indices of a result relation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MutexGroups {
    groups: Vec<Vec<usize>>,
}

impl MutexGroups {
    /// No groups: all rows independent.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a mutually exclusive group of row indices; returns the group id.
    /// Groups of fewer than two rows are permitted but carry no constraint.
    pub fn add_group(&mut self, rows: Vec<usize>) -> usize {
        self.groups.push(rows);
        self.groups.len() - 1
    }

    /// All groups.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// The group containing `row`, if any (a row may appear in at most one
    /// group; [`MutexGroups::validate`] enforces this).
    pub fn group_of(&self, row: usize) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&row))
    }

    /// Validate against a result relation:
    ///
    /// * every referenced row exists,
    /// * no row appears in two groups,
    /// * within each group the membership probabilities sum to ≤ 1
    ///   (mutual exclusivity must be probabilistically consistent).
    pub fn validate(&self, relation: &XRelation) -> Result<(), ModelError> {
        let mut seen = vec![false; relation.len()];
        for g in &self.groups {
            let mut mass = 0.0;
            for &row in g {
                let t = relation.get(row).ok_or(ModelError::SchemaMismatch {
                    expected: relation.len(),
                    got: row,
                })?;
                if std::mem::replace(&mut seen[row], true) {
                    return Err(ModelError::MassExceeded {
                        sum: f64::NAN,
                        context: "row referenced by two mutex groups",
                    });
                }
                mass += t.probability();
            }
            if mass > 1.0 + PROB_EPS {
                return Err(ModelError::MassExceeded {
                    sum: mass,
                    context: "mutex group membership",
                });
            }
        }
        Ok(())
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// Mutually exclusive **sets** of rows — the full construct of Section VI:
/// in any possible world, *at most one option* (a set of rows) of each
/// `AlternativeSets` is realized, with the given probability.
///
/// The duplicate-detection use: a possible match `(i, j)` with confidence
/// `c` becomes `options = [([merged], c), ([i, j], 1 − c)]` — either the
/// merged tuple exists, or both originals do.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AlternativeSets {
    options: Vec<(Vec<usize>, f64)>,
}

impl AlternativeSets {
    /// No options (no constraint).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an option: a set of rows realized together with probability `p`.
    pub fn add_option(&mut self, rows: Vec<usize>, p: f64) -> Result<(), ModelError> {
        if p.is_nan() || !(0.0..=1.0).contains(&p) {
            return Err(ModelError::InvalidProbability {
                value: p,
                context: "alternative set option",
            });
        }
        self.options.push((rows, p));
        let total: f64 = self.options.iter().map(|(_, p)| p).sum();
        if total > 1.0 + PROB_EPS {
            self.options.pop();
            return Err(ModelError::MassExceeded {
                sum: total,
                context: "alternative set options",
            });
        }
        Ok(())
    }

    /// The options.
    pub fn options(&self) -> &[(Vec<usize>, f64)] {
        &self.options
    }

    /// Validate row references against a result relation and require the
    /// options' row sets to be pairwise disjoint (a row cannot belong to
    /// two mutually exclusive worlds of the same constraint).
    pub fn validate(&self, relation: &XRelation) -> Result<(), ModelError> {
        let mut seen = vec![false; relation.len()];
        for (rows, _) in &self.options {
            for &row in rows {
                if row >= relation.len() {
                    return Err(ModelError::SchemaMismatch {
                        expected: relation.len(),
                        got: row,
                    });
                }
                if std::mem::replace(&mut seen[row], true) {
                    return Err(ModelError::MassExceeded {
                        sum: f64::NAN,
                        context: "row appears in two options of one alternative set",
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::xtuple::XTuple;

    fn relation_with_probs(ps: &[f64]) -> XRelation {
        let s = Schema::new(["x"]);
        let mut r = XRelation::new(s.clone());
        for &p in ps {
            r.push(XTuple::builder(&s).alt(p, ["v"]).build().unwrap());
        }
        r
    }

    #[test]
    fn valid_groups_pass() {
        let r = relation_with_probs(&[0.6, 0.3, 1.0]);
        let mut g = MutexGroups::new();
        let id = g.add_group(vec![0, 1]); // 0.6 + 0.3 ≤ 1 ✓
        assert_eq!(id, 0);
        assert!(g.validate(&r).is_ok());
        assert_eq!(g.group_of(1), Some(0));
        assert_eq!(g.group_of(2), None);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn mass_violation_detected() {
        let r = relation_with_probs(&[0.8, 0.5]);
        let mut g = MutexGroups::new();
        g.add_group(vec![0, 1]); // 1.3 > 1 ✗
        assert!(matches!(
            g.validate(&r),
            Err(ModelError::MassExceeded { .. })
        ));
    }

    #[test]
    fn overlapping_groups_detected() {
        let r = relation_with_probs(&[0.3, 0.3, 0.3]);
        let mut g = MutexGroups::new();
        g.add_group(vec![0, 1]);
        g.add_group(vec![1, 2]);
        assert!(g.validate(&r).is_err());
    }

    #[test]
    fn out_of_range_row_detected() {
        let r = relation_with_probs(&[0.5]);
        let mut g = MutexGroups::new();
        g.add_group(vec![7]);
        assert!(g.validate(&r).is_err());
    }

    #[test]
    fn empty_is_trivially_valid() {
        let r = relation_with_probs(&[0.5, 0.5]);
        let g = MutexGroups::new();
        assert!(g.is_empty());
        assert!(g.validate(&r).is_ok());
    }

    #[test]
    fn alternative_sets_possible_match_encoding() {
        // merged (row 2) with c = 0.6 XOR originals (rows 0, 1) with 0.4.
        let r = relation_with_probs(&[1.0, 1.0, 0.6]);
        let mut a = AlternativeSets::new();
        a.add_option(vec![2], 0.6).unwrap();
        a.add_option(vec![0, 1], 0.4).unwrap();
        assert!(a.validate(&r).is_ok());
        assert_eq!(a.options().len(), 2);
    }

    #[test]
    fn alternative_sets_mass_guard() {
        let mut a = AlternativeSets::new();
        a.add_option(vec![0], 0.7).unwrap();
        assert!(a.add_option(vec![1], 0.5).is_err());
        // The failed option must not have been retained.
        assert_eq!(a.options().len(), 1);
    }

    #[test]
    fn alternative_sets_overlap_and_range_guards() {
        let r = relation_with_probs(&[1.0, 1.0]);
        let mut overlap = AlternativeSets::new();
        overlap.add_option(vec![0], 0.5).unwrap();
        overlap.add_option(vec![0, 1], 0.4).unwrap();
        assert!(overlap.validate(&r).is_err());
        let mut out_of_range = AlternativeSets::new();
        out_of_range.add_option(vec![9], 0.5).unwrap();
        assert!(out_of_range.validate(&r).is_err());
        assert!(AlternativeSets::new().add_option(vec![0], 1.5).is_err());
    }
}
