//! [`ProbTuple`]: a probabilistic tuple in the dependency-free model
//! (Section IV-A) — uncertainty on tuple level *and* attribute value level,
//! with attribute values treated as independent random variables.

use crate::error::{check_probability, ModelError};
use crate::pvalue::PValue;
use crate::schema::Schema;
use crate::value::Value;

/// A probabilistic tuple: one [`PValue`] per attribute plus a tuple-level
/// membership probability `p(t) ∈ (0, 1]`.
///
/// Per the paper, membership probability stems from the application context
/// and must **not** influence duplicate detection (Section IV); similarity
/// computations therefore only read the attribute-level distributions.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProbTuple {
    values: Vec<PValue>,
    probability: f64,
}

impl ProbTuple {
    /// Build a tuple from pre-assembled values. `probability` must lie in
    /// `(0, 1]` — a zero-probability tuple cannot belong to any world
    /// containing it and is rejected.
    pub fn new(values: Vec<PValue>, probability: f64) -> Result<Self, ModelError> {
        let p = check_probability(probability, "tuple membership")?;
        if p == 0.0 {
            return Err(ModelError::InvalidProbability {
                value: 0.0,
                context: "tuple membership (must be positive)",
            });
        }
        Ok(Self {
            values,
            probability: p,
        })
    }

    /// A fluent builder bound to a schema (attribute lookup by name).
    pub fn builder(schema: &Schema) -> ProbTupleBuilder {
        ProbTupleBuilder {
            schema: schema.clone(),
            values: vec![PValue::null(); schema.arity()],
            probability: 1.0,
            error: None,
        }
    }

    /// The attribute values.
    pub fn values(&self) -> &[PValue] {
        &self.values
    }

    /// The value of attribute `i` (panics if out of range).
    pub fn value(&self, i: usize) -> &PValue {
        &self.values[i]
    }

    /// Mutable access for in-place standardization (data preparation).
    pub fn value_mut(&mut self, i: usize) -> &mut PValue {
        &mut self.values[i]
    }

    /// Tuple membership probability `p(t)`.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Replace the membership probability (used by tests asserting that
    /// similarity is invariant under membership scaling).
    pub fn with_probability(mut self, p: f64) -> Result<Self, ModelError> {
        let p = check_probability(p, "tuple membership")?;
        if p == 0.0 {
            return Err(ModelError::InvalidProbability {
                value: 0.0,
                context: "tuple membership (must be positive)",
            });
        }
        self.probability = p;
        Ok(self)
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Whether any attribute value is uncertain.
    pub fn has_uncertain_values(&self) -> bool {
        self.values.iter().any(|v| !v.is_certain())
    }
}

/// Fluent builder for [`ProbTuple`], validating against a [`Schema`].
#[derive(Debug, Clone)]
pub struct ProbTupleBuilder {
    schema: Schema,
    values: Vec<PValue>,
    probability: f64,
    error: Option<ModelError>,
}

impl ProbTupleBuilder {
    /// Set attribute `name` to a certain value.
    pub fn certain(mut self, name: &str, v: impl Into<Value>) -> Self {
        self.set(name, PValue::certain(v));
        self
    }

    /// Set attribute `name` to a categorical distribution.
    pub fn dist<I, V>(mut self, name: &str, entries: I) -> Self
    where
        I: IntoIterator<Item = (V, f64)>,
        V: Into<Value>,
    {
        match PValue::categorical(entries) {
            Ok(pv) => self.set(name, pv),
            Err(e) => self.error = self.error.take().or(Some(e)),
        }
        self
    }

    /// Set attribute `name` to an already-built [`PValue`].
    pub fn pvalue(mut self, name: &str, pv: PValue) -> Self {
        self.set(name, pv);
        self
    }

    /// Set attribute `name` to certain non-existence (⊥).
    pub fn null(mut self, name: &str) -> Self {
        self.set(name, PValue::null());
        self
    }

    /// Set the tuple membership probability (default 1.0).
    pub fn probability(mut self, p: f64) -> Self {
        self.probability = p;
        self
    }

    /// Finish, validating schema coverage and probabilities.
    pub fn build(self) -> Result<ProbTuple, ModelError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        ProbTuple::new(self.values, self.probability)
    }

    fn set(&mut self, name: &str, pv: PValue) {
        match self.schema.index_of(name) {
            Some(i) => self.values[i] = pv,
            None => {
                self.error = self
                    .error
                    .take()
                    .or(Some(ModelError::UnknownAttribute(name.to_string())));
            }
        }
    }
}

impl std::fmt::Display for ProbTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩ p={}", self.probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["name", "job"])
    }

    #[test]
    fn builder_fig4_t13() {
        // t13 = ({Tim: 0.6, Tom: 0.4}, machinist) with p(t) = 0.6.
        let t = ProbTuple::builder(&schema())
            .dist("name", [("Tim", 0.6), ("Tom", 0.4)])
            .certain("job", "machinist")
            .probability(0.6)
            .build()
            .unwrap();
        assert_eq!(t.arity(), 2);
        assert!((t.probability() - 0.6).abs() < 1e-12);
        assert_eq!(t.value(0).support_len(), 2);
        assert!(t.value(1).is_certain());
        assert!(t.has_uncertain_values());
    }

    #[test]
    fn builder_defaults_unset_attrs_to_null() {
        let t = ProbTuple::builder(&schema())
            .certain("name", "Tim")
            .build()
            .unwrap();
        assert!(t.value(1).is_null());
    }

    #[test]
    fn builder_unknown_attribute_errors() {
        let r = ProbTuple::builder(&schema()).certain("nope", "x").build();
        assert!(matches!(r, Err(ModelError::UnknownAttribute(_))));
    }

    #[test]
    fn builder_propagates_distribution_errors() {
        let r = ProbTuple::builder(&schema())
            .dist("name", [("a", 0.8), ("b", 0.8)])
            .build();
        assert!(matches!(r, Err(ModelError::MassExceeded { .. })));
    }

    #[test]
    fn zero_probability_rejected() {
        let r = ProbTuple::new(vec![PValue::certain("x")], 0.0);
        assert!(r.is_err());
        let r = ProbTuple::builder(&schema()).probability(-0.5).build();
        assert!(r.is_err());
    }

    #[test]
    fn with_probability_replaces() {
        let t = ProbTuple::builder(&schema())
            .certain("name", "Tim")
            .build()
            .unwrap();
        let t2 = t.clone().with_probability(0.25).unwrap();
        assert!((t2.probability() - 0.25).abs() < 1e-12);
        assert_eq!(t.values(), t2.values());
        assert!(t.clone().with_probability(0.0).is_err());
    }

    #[test]
    fn display_shows_values_and_probability() {
        let t = ProbTuple::builder(&schema())
            .certain("name", "Tim")
            .null("job")
            .probability(0.5)
            .build()
            .unwrap();
        let s = t.to_string();
        assert!(
            s.contains("Tim") && s.contains('⊥') && s.contains("p=0.5"),
            "{s}"
        );
    }

    #[test]
    fn value_mut_allows_standardization() {
        let mut t = ProbTuple::builder(&schema())
            .certain("name", " Tim ")
            .build()
            .unwrap();
        *t.value_mut(0) = t.value(0).map_values(|v| Value::from(v.render().trim()));
        assert_eq!(t.value(0).alternatives()[0].0.render(), "Tim");
    }
}
