//! Serde round-trips for the model types (run with
//! `cargo test -p probdedup-model --features serde`). Without the feature
//! this file compiles to nothing.
#![cfg(feature = "serde")]

use probdedup_model::pvalue::PValue;
use probdedup_model::relation::XRelation;
use probdedup_model::schema::{AttrType, Schema};
use probdedup_model::value::Value;
use probdedup_model::xtuple::XTuple;

fn sample_relation() -> XRelation {
    let s = Schema::with_types([
        ("name", AttrType::Text),
        ("job", AttrType::Text),
        ("age", AttrType::Int),
    ]);
    let mut r = XRelation::new(s.clone());
    let mu = PValue::categorical([("musician", 0.5), ("museum guide", 0.5)]).unwrap();
    r.push(
        XTuple::builder(&s)
            .alt(
                0.7,
                [Value::from("John"), Value::from("pilot"), Value::Int(34)],
            )
            .alt_pvalues(
                0.3,
                [
                    PValue::certain("Johan"),
                    mu,
                    PValue::certain(Value::Int(34)),
                ],
            )
            .label("t31")
            .build()
            .unwrap(),
    );
    r.push(
        XTuple::builder(&s)
            .alt(0.8, [Value::from("Tom"), Value::Null, Value::Int(51)])
            .build()
            .unwrap(),
    );
    r
}

#[test]
fn xrelation_json_roundtrip() {
    let r = sample_relation();
    let json = serde_json::to_string(&r).expect("serialize");
    let back: XRelation = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(r, back);
}

#[test]
fn value_variants_roundtrip() {
    for v in [
        Value::Null,
        Value::Bool(true),
        Value::Int(-7),
        Value::Real(2.5),
        Value::Text("⊥ weird ⊥".into()),
    ] {
        let json = serde_json::to_string(&v).expect("serialize");
        let back: Value = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(v, back);
    }
}

#[test]
fn pvalue_preserves_null_mass() {
    let v = PValue::categorical([("a", 0.6), ("b", 0.3)]).unwrap();
    let json = serde_json::to_string(&v).expect("serialize");
    let back: PValue = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(v, back);
    assert!((back.null_prob() - 0.1).abs() < 1e-12);
}
