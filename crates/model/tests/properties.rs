//! Property-based tests for the probabilistic data model invariants.

use proptest::prelude::*;

use probdedup_model::condition::{
    conditioned_world_probability, existence_event_probability, normalized_alternative_probs,
};
use probdedup_model::convert::{expand_prob_tuple, marginalize_xtuple};
use probdedup_model::pvalue::PValue;
use probdedup_model::schema::Schema;
use probdedup_model::tuple::ProbTuple;
use probdedup_model::value::Value;
use probdedup_model::world::{enumerate_worlds, full_worlds, top_k_worlds, world_count};
use probdedup_model::xtuple::XTuple;

/// Strategy: a small categorical distribution with mass ≤ 1.
fn arb_pvalue() -> impl Strategy<Value = PValue> {
    proptest::collection::vec(("[a-e]{1,3}", 1u32..100), 0..4).prop_map(|entries| {
        let total: u32 = entries.iter().map(|(_, w)| *w).sum();
        // Scale weights into (0, 1] with total mass ≤ 0.999 to leave ⊥ room
        // sometimes; empty → certain ⊥.
        let denom = f64::from(total.max(1)) * 1.2;
        PValue::categorical(
            entries
                .into_iter()
                .map(|(v, w)| (Value::from(v), f64::from(w) / denom)),
        )
        .expect("mass ≤ 1 by construction")
    })
}

/// Strategy: an x-tuple with 1–4 alternatives over a 2-attribute schema.
fn arb_xtuple() -> impl Strategy<Value = XTuple> {
    proptest::collection::vec(("[a-d]{1,3}", "[a-d]{1,3}", 1u32..50), 1..4).prop_map(|alts| {
        let total: u32 = alts.iter().map(|(_, _, w)| *w).sum();
        let denom = f64::from(total) * 1.1; // keep Σ < 1 ⇒ maybe tuples occur
        let s = Schema::new(["name", "job"]);
        let mut b = XTuple::builder(&s);
        for (n, j, w) in alts {
            b = b.alt(f64::from(w) / denom, [n, j]);
        }
        b.build().expect("valid x-tuple by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PValue invariants: existence + null mass = 1; outcomes sum to 1.
    #[test]
    fn pvalue_mass_partition(v in arb_pvalue()) {
        let total = v.existence_prob() + v.null_prob();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let outcome_sum: f64 = v.outcomes().map(|(_, p)| p).sum();
        prop_assert!((outcome_sum - 1.0).abs() < 1e-6 || v.null_prob() <= 1e-9);
    }

    /// equality_prob is symmetric, in [0,1], and 1 on identical values.
    #[test]
    fn equality_prob_laws(a in arb_pvalue(), b in arb_pvalue()) {
        let ab = a.equality_prob(&b);
        let ba = b.equality_prob(&a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        // Certain values compared to themselves score 1.
        if a.is_certain() {
            prop_assert!((a.equality_prob(&a) - 1.0).abs() < 1e-9);
        }
    }

    /// Conditioning on existence yields a normalized distribution that
    /// preserves outcome ratios.
    #[test]
    fn conditioning_preserves_ratios(v in arb_pvalue()) {
        if let Some(c) = v.conditioned_on_existence() {
            prop_assert!((c.existence_prob() - 1.0).abs() < 1e-6);
            let alts = v.alternatives();
            if alts.len() >= 2 {
                let r_before = alts[0].1 / alts[1].1;
                let c_alts = c.alternatives();
                let r_after = c_alts[0].1 / c_alts[1].1;
                prop_assert!((r_before - r_after).abs() < 1e-6);
            }
        } else {
            prop_assert!(v.existence_prob() <= 1e-9);
        }
    }

    /// World probabilities over any x-tuple set sum to 1, and the full-world
    /// mass equals P(B).
    #[test]
    fn world_masses(ts in proptest::collection::vec(arb_xtuple(), 1..4)) {
        prop_assume!(world_count(&ts) <= 4096);
        let worlds = enumerate_worlds(&ts, 4096).unwrap();
        let total: f64 = worlds.iter().map(|w| w.probability).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total = {total}");
        let full_mass: f64 = full_worlds(&ts).map(|w| w.probability).sum();
        let pb = existence_event_probability(&ts);
        prop_assert!((full_mass - pb).abs() < 1e-9);
    }

    /// top-k worlds agree with sorting the full enumeration.
    #[test]
    fn top_k_matches_enumeration(ts in proptest::collection::vec(arb_xtuple(), 1..3), k in 1usize..6) {
        prop_assume!(world_count(&ts) <= 512);
        let mut all = enumerate_worlds(&ts, 512).unwrap();
        all.sort_by(|a, b| b.probability.partial_cmp(&a.probability).unwrap());
        let top = top_k_worlds(&ts, k, false);
        prop_assert_eq!(top.len(), k.min(all.len()));
        for (t, a) in top.iter().zip(all.iter()) {
            prop_assert!((t.probability - a.probability).abs() < 1e-12);
        }
    }

    /// Conditioned world probabilities of full worlds sum to 1 and are
    /// invariant when every alternative probability of one tuple is scaled
    /// by a constant factor (the "membership must not matter" law).
    #[test]
    fn conditioned_full_world_mass(ts in proptest::collection::vec(arb_xtuple(), 1..3)) {
        prop_assume!(world_count(&ts) <= 512);
        let full: Vec<Vec<usize>> = full_worlds(&ts)
            .map(|w| w.choices.iter().map(|c| c.unwrap()).collect())
            .collect();
        let total: f64 = full
            .iter()
            .map(|c| conditioned_world_probability(&ts, c))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Normalized alternative probabilities sum to 1.
    #[test]
    fn normalized_alt_probs_sum(t in arb_xtuple()) {
        let probs = normalized_alternative_probs(&t);
        let sum: f64 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// expand → marginalize is the identity on dependency-free tuples
    /// (marginals match the original distributions).
    #[test]
    fn expand_marginalize_roundtrip(a in arb_pvalue(), b in arb_pvalue(), p in 1u32..=100) {
        let s = Schema::new(["x", "y"]);
        let t = ProbTuple::builder(&s)
            .pvalue("x", a.clone())
            .pvalue("y", b.clone())
            .probability(f64::from(p) / 100.0)
            .build()
            .unwrap();
        prop_assume!(expand_prob_tuple(&t, 64).is_ok());
        let x = expand_prob_tuple(&t, 64).unwrap();
        let back = marginalize_xtuple(&x);
        prop_assert!((back.probability() - t.probability()).abs() < 1e-9);
        for (orig, rec) in t.values().iter().zip(back.values()) {
            for (v, q) in orig.alternatives() {
                prop_assert!((rec.prob_of(Some(v)) - q).abs() < 1e-6);
            }
        }
    }
}
