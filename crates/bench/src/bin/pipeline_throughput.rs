//! End-to-end pipeline throughput probe with machine-readable output.
//!
//! Runs the standard synthetic workload through the full pipeline at
//! several scales and matching configurations, printing a table and
//! writing `BENCH_pipeline.json` (pairs/sec, wall time, cache hit rate)
//! so the perf trajectory is comparable across PRs without parsing
//! criterion output.
//!
//! ```text
//! cargo run -p probdedup-bench --bin pipeline_throughput --release
//! cargo run -p probdedup-bench --bin pipeline_throughput --release -- --quick
//! cargo run -p probdedup-bench --bin pipeline_throughput --release -- --out other.json
//! cargo run -p probdedup-bench --bin pipeline_throughput --release -- \
//!     --quick --baseline BENCH_pipeline.json   # CI perf-regression gate
//! ```
//!
//! The measured modes:
//!
//! * `plain`       — no similarity memoization (`cache_similarities(false)`);
//! * `value-cache` — the pre-interning design: Eq. 5 through a
//!   [`CachedComparator`] keyed on cloned `Value` pairs (what the
//!   pipeline's cached mode did before the interning layer existed) —
//!   kept here as the before/after baseline for the interned path;
//! * `interned`    — the pipeline's cached mode: symbols + sharded
//!   `SymbolCache` + upper-bound pruning;
//! * `bounded`     — the classify-only (bounded) matching mode on plain
//!   values: thresholds decompose into attribute budgets, Eq. 5 runs
//!   against cut intervals, kernels run bounded, and no comparison matrix
//!   is allocated. Classification is identical to `plain`
//!   (property-tested); only which side of the thresholds each pair falls
//!   on is computed. The JSON records the fraction of pairs disposed by
//!   each bound tier;
//! * `bounded-interned` — the same bounded path over interned symbols,
//!   with exact values *and* below-cut verdicts memoized per symbol pair;
//! * `session-cold` / `session-warm` / `incremental` — the persistent
//!   `DedupSession` front door over the interned configuration: a fresh
//!   session's first run, the amortized warm rerun of identical sources
//!   (reduction + interning skipped, matching answered from the warm
//!   caches), and a 10%-increment ingest against a resident 90% base
//!   (`candidates` counts only the newly classified pairs);
//! * `session-snapshot` — the durability round-trip: the warmed session
//!   is `save`d to disk (atomic write + fsync) and re-`open`ed
//!   (checksum + structural validation, pool restore, decision replay),
//!   repeated to the measurement window. `candidates` counts decided
//!   pairs restored per round-trip, so `pairs_per_sec` is the restore
//!   rate with no matching work in the timed region;
//! * `serve-query` / `serve-partition` — the serving front door measured
//!   through a real loopback socket: an in-process `probdedup-serve`
//!   daemon is seeded with the workload corpus, then a keep-alive client
//!   drives `query` (one pair classified per request — request cost
//!   dominates) or `partition` (the full merged view serialized per
//!   request — `pairs_per_sec` counts decisions returned). The JSON adds
//!   `requests_per_sec` for these modes;
//! * `entities-components` / `entities-greedy` / `entities-repaired` —
//!   entity-resolution throughput over the decided pairs of one untimed
//!   exact pipeline run: the match graph is rebuilt and clustered per
//!   repetition with the named strategy, `candidates` counts the
//!   resolved entities and `pairs_per_sec` is entities (clusters)
//!   resolved per second. The JSON adds cluster-level quality vs the
//!   workload's ground truth — pairwise precision/recall/F1 and
//!   closest-cluster F1 — and the run asserts the repaired strategy's
//!   pairwise F1 is never below the components baseline;
//! * `textsim`     — raw string-kernel throughput (Jaro-Winkler,
//!   Levenshtein, Hamming over the workload's distinct attribute values):
//!   isolates the cache-miss cost the bit-parallel kernels target, with
//!   no cache, pruning or decision logic in the way;
//! * `snm-multipass` / `snm-multipass-strkey` — reduction-phase
//!   throughput of multi-pass SNM (8 possible-world passes, window 6)
//!   with interned key symbols vs the string-key oracle that re-renders
//!   keys every pass: candidate pairs generated per second;
//! * `blocking-multipass` / `blocking-multipass-strkey` — multi-pass
//!   blocking over the same 8 worlds: the interned path buckets each
//!   pass on the key table's symbols; the oracle (like the pre-interning
//!   implementation) renders the key strings once but still clones and
//!   hashes them per pass;
//! * `blocking-alt` / `blocking-alt-strkey` — single-pass per-alternative
//!   blocking (Fig. 14), symbols vs strings. With every key seen exactly
//!   once there is no reuse to win on — this mode tracks the interning
//!   overhead floor rather than a speedup;
//! * `sharded` — the out-of-core front door over the same interned full
//!   comparison: candidates identical to `interned`, with shard routing,
//!   per-shard classification and the deterministic merge inside the
//!   timed region (4 shards). The JSON adds `peak_rss_bytes` (process
//!   `VmHWM`);
//! * `snm-external` — the sorting-alternatives scan through the external
//!   merge sort with a deliberately tiny run buffer (512 entries), so
//!   every sorted run spills to disk and the k-way merge + streaming
//!   re-windowing dominate; `candidates` counts the deduplicated pairs.
//!   Also reports `peak_rss_bytes`;
//! * `scale-sharded` (only with `--entities N`) — the 10⁵-class scale
//!   probe: a sharded, budgeted, bounded-matching run over SNM
//!   candidates. `--entities 100000 --shards 8 --memory-budget 256m`
//!   completes under a budget the unsharded in-memory reduction cannot
//!   honor (its triangular `PairMatrix` alone is `n²/2` bits ≈ 2 GB at
//!   ~190k rows), and `peak_rss_bytes` records what the sharded run
//!   actually used.
//!
//! With `--baseline FILE`, every measured `(mode, entities, threads)`
//! configuration also present in `FILE` (a previously committed
//! `BENCH_pipeline.json`) is compared by `pairs_per_sec`; a drop beyond
//! [`REGRESSION_TOLERANCE`] fails the run with exit code 1 — the CI
//! perf-regression gate.

use std::fmt::Write as _;
use std::time::Instant;

use probdedup_bench::{
    experiment_key, experiment_model, experiment_pipeline_bounded, experiment_pipeline_cached,
    experiment_pipeline_scale, peak_rss_bytes, workload, SEED,
};
use probdedup_core::exec::par_map_index;
use probdedup_core::pipeline::ReductionStrategy;
use probdedup_core::prepare::Preparation;
use probdedup_core::session::DedupSession;
use probdedup_matching::cache::CachedComparator;
use probdedup_matching::matrix::compare_xtuples_cached;
use probdedup_matching::vector::AttributeComparators;
use probdedup_model::relation::XRelation;
use probdedup_model::value::Value;
use probdedup_model::ValuePool;
use probdedup_reduction::{
    block_alternatives, block_alternatives_oracle, block_multipass, block_multipass_oracle,
    multipass_snm_oracle, multipass_snm_pairs, sorting_alternatives_external_scan,
    ExternalSortConfig, SparsePairSet, WorldSelection,
};
use probdedup_serve::client::{json_field, Client};
use probdedup_serve::server::{ServeConfig, Server};
use probdedup_textsim::{JaroWinkler, Levenshtein, NormalizedHamming, StringComparator};

/// Maximum allowed throughput drop vs the baseline before the gate fails:
/// current < (1 − 0.25) × baseline is a regression.
const REGRESSION_TOLERANCE: f64 = 0.25;

/// Cap on distinct text values fed to the `textsim` mode so its runtime
/// stays bounded at large scales (all-pairs is quadratic in this).
const TEXTSIM_VALUE_CAP: usize = 2000;

/// One measured configuration.
#[derive(Default)]
struct Run {
    entities: usize,
    rows: usize,
    mode: &'static str,
    threads: usize,
    candidates: usize,
    wall_ms: f64,
    pairs_per_sec: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    interned_values: usize,
    /// Fraction of pairs certified ≥ T_μ early (bounded modes only).
    early_match_frac: f64,
    /// Fraction of pairs certified < T_λ early (bounded modes only).
    early_nonmatch_frac: f64,
    /// Fraction of pairs pinned in the possible band early (bounded only).
    early_possible_frac: f64,
    /// Kernel evaluations disposed by below-bound certificates.
    kernel_bound_certs: u64,
    /// HTTP requests per second through the loopback socket (serve modes
    /// only; 0 elsewhere).
    requests_per_sec: f64,
    /// Process peak RSS (`VmHWM`) right after the measured region, bytes
    /// (out-of-core modes only; 0 elsewhere).
    peak_rss_bytes: u64,
    /// Cluster-level pairwise precision vs ground truth (entities modes
    /// only; 0 elsewhere).
    pairwise_precision: f64,
    /// Cluster-level pairwise recall vs ground truth (entities modes only).
    pairwise_recall: f64,
    /// Cluster-level pairwise F1 vs ground truth (entities modes only).
    pairwise_f1: f64,
    /// Closest-cluster F1 vs ground truth (entities modes only).
    closest_cluster_f1: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_pipeline.json");
    let mut baseline_path: Option<String> = None;
    let mut scales: Vec<usize> = vec![100, 250, 500];
    let mut threads_list: Vec<usize> = vec![1, 4];
    let mut scale_entities: Option<usize> = None;
    let mut scale_shards = 8usize;
    let mut scale_budget: u64 = 256 << 20;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {
                scales = vec![100];
                threads_list = vec![4];
            }
            "--out" => {
                out_path = it.next().expect("--out PATH").clone();
            }
            "--baseline" => {
                baseline_path = Some(it.next().expect("--baseline PATH").clone());
            }
            "--entities" => {
                scale_entities = Some(
                    it.next()
                        .expect("--entities N")
                        .parse()
                        .expect("entity count"),
                );
            }
            "--shards" => {
                scale_shards = it.next().expect("--shards K").parse().expect("shard count");
            }
            "--memory-budget" => {
                scale_budget = parse_bytes(it.next().expect("--memory-budget BYTES"));
            }
            other => {
                panic!(
                    "unknown argument {other:?} (--quick | --out PATH | --baseline PATH | \
                     --entities N | --shards K | --memory-budget BYTES[k|m|g])"
                )
            }
        }
    }

    let mut runs: Vec<Run> = Vec::new();
    println!(
        "{:<9} {:>6} {:<12} {:>7} {:>11} {:>10} {:>13} {:>9}",
        "entities", "rows", "mode", "threads", "candidates", "wall ms", "pairs/s", "hit rate"
    );
    for &entities in &scales {
        let ds = workload(entities);
        let sources: Vec<&XRelation> = ds.relations.iter().collect();
        let rows = ds.total_rows();
        for &threads in &threads_list {
            for (mode, cached) in [("plain", false), ("interned", true)] {
                let pipeline = experiment_pipeline_cached(ReductionStrategy::Full, threads, cached);
                let start = Instant::now();
                let result = pipeline.run(&sources).expect("pipeline run");
                let wall = start.elapsed().as_secs_f64();
                runs.push(Run {
                    entities,
                    rows,
                    mode,
                    threads,
                    candidates: result.candidates,
                    wall_ms: wall * 1e3,
                    pairs_per_sec: result.candidates as f64 / wall,
                    cache_hits: result.stats.cache_hits,
                    cache_misses: result.stats.cache_misses,
                    cache_hit_rate: result.stats.hit_rate(),
                    interned_values: result.stats.interned_values,
                    ..Run::default()
                });
                print_run(runs.last().expect("just pushed"));
            }
            // Classify-only (bounded) matching: same workload, same
            // classification, evaluation stops once a pair's band is
            // certified. Compared by the gate against its own committed
            // baselines; the exact `plain` path is the speedup reference.
            for (mode, cached) in [("bounded", false), ("bounded-interned", true)] {
                let pipeline =
                    experiment_pipeline_bounded(ReductionStrategy::Full, threads, cached);
                let start = Instant::now();
                let result = pipeline.run(&sources).expect("bounded pipeline run");
                let wall = start.elapsed().as_secs_f64();
                let (fm, fu, fp) = result.stats.disposal_fractions();
                runs.push(Run {
                    entities,
                    rows,
                    mode,
                    threads,
                    candidates: result.candidates,
                    wall_ms: wall * 1e3,
                    pairs_per_sec: result.candidates as f64 / wall,
                    cache_hits: result.stats.cache_hits,
                    cache_misses: result.stats.cache_misses,
                    cache_hit_rate: result.stats.hit_rate(),
                    interned_values: result.stats.interned_values,
                    early_match_frac: fm,
                    early_nonmatch_frac: fu,
                    early_possible_frac: fp,
                    kernel_bound_certs: result.stats.kernel_bound_certs,
                    ..Run::default()
                });
                print_run(runs.last().expect("just pushed"));
            }
            // The pre-interning baseline: value-keyed memoization.
            runs.push(value_cache_baseline(entities, rows, &sources, threads));
            print_run(runs.last().expect("just pushed"));
            // The sharded out-of-core front door over the interned full
            // comparison: same candidate set as `interned`, plus shard
            // routing, per-shard classification and the merge.
            {
                let pipeline = experiment_pipeline_cached(ReductionStrategy::Full, threads, true);
                let sharded = pipeline.sharded(4);
                let start = Instant::now();
                let (result, shard_stats) = sharded.run_with_stats(&sources).expect("sharded run");
                let wall = start.elapsed().as_secs_f64();
                assert_eq!(
                    shard_stats.shard_candidates.iter().sum::<usize>(),
                    result.candidates
                );
                runs.push(Run {
                    entities,
                    rows,
                    mode: "sharded",
                    threads,
                    candidates: result.candidates,
                    wall_ms: wall * 1e3,
                    pairs_per_sec: result.candidates as f64 / wall,
                    cache_hits: result.stats.cache_hits,
                    cache_misses: result.stats.cache_misses,
                    cache_hit_rate: result.stats.hit_rate(),
                    interned_values: result.stats.interned_values,
                    peak_rss_bytes: peak_rss_bytes(),
                    ..Run::default()
                });
                print_run(runs.last().expect("just pushed"));
            }
            // Session modes: cold first run, warm-rerun amortization, and
            // a 10%-increment ingest against a resident 90% base.
            for run in session_modes(entities, rows, &sources, threads) {
                print_run(&run);
                runs.push(run);
            }
            // Serving front door over a real loopback socket.
            for run in serve_modes(entities, rows, &sources, threads) {
                print_run(&run);
                runs.push(run);
            }
        }
        // Kernel-only throughput: sensitive to the textsim fast paths and
        // nothing else (threads are irrelevant; measured single-threaded).
        runs.push(textsim_mode(entities, rows, &sources));
        print_run(runs.last().expect("just pushed"));
        // Reduction-phase throughput: interned keys vs the string-key
        // oracle (threads are irrelevant; measured single-threaded).
        for run in reduction_modes(entities, rows, &sources) {
            print_run(&run);
            runs.push(run);
        }
        // Entity resolution over the decided pairs, scored against the
        // workload's ground truth (clustering is single-threaded).
        for run in entities_modes(entities, rows, &ds) {
            print_run(&run);
            runs.push(run);
        }
    }

    // The 10⁵-class scale probe: a single sharded, budgeted run at a
    // scale the in-memory quadratic modes cannot reach.
    if let Some(entities) = scale_entities {
        let run = scale_mode(entities, scale_shards, scale_budget);
        print_run(&run);
        runs.push(run);
    }

    let json = render_json(&runs);
    std::fs::write(&out_path, json).expect("write BENCH_pipeline.json");
    println!("\nwrote {out_path}");

    if let Some(path) = baseline_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read baseline {path:?}: {e}"));
        let baseline_runs = parse_baseline_runs(&baseline);
        // A baseline the parser cannot read is a broken gate, not a pass:
        // fail loudly instead of silently comparing nothing.
        assert!(
            !baseline_runs.is_empty(),
            "baseline {path:?} contains no parsable run records; \
             was it written by this binary?"
        );
        if !gate_against_baseline(&runs, &baseline_runs, &path) {
            std::process::exit(1);
        }
    }
}

/// One `(mode, entities, threads) → pairs_per_sec` record parsed from a
/// committed `BENCH_pipeline.json`.
struct BaselineRun {
    mode: String,
    entities: usize,
    threads: usize,
    pairs_per_sec: f64,
}

/// Parse the run records out of the JSON this binary itself writes (one
/// run object per line; the offline build vendors no serde, and the
/// format is fully under our control — see [`render_json`]).
fn parse_baseline_runs(json: &str) -> Vec<BaselineRun> {
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"'))
    }
    json.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with("{\"entities\"") {
                return None;
            }
            Some(BaselineRun {
                mode: field(line, "mode")?.to_string(),
                entities: field(line, "entities")?.parse().ok()?,
                threads: field(line, "threads")?.parse().ok()?,
                pairs_per_sec: field(line, "pairs_per_sec")?.parse().ok()?,
            })
        })
        .collect()
}

/// Compare the measured runs against the baseline; returns `false` (gate
/// failed) if any shared configuration regressed by more than
/// [`REGRESSION_TOLERANCE`]. Configurations present on only one side are
/// skipped — new modes don't need a baseline entry, retired ones don't
/// block.
fn gate_against_baseline(runs: &[Run], baseline: &[BaselineRun], path: &str) -> bool {
    let floor = 1.0 - REGRESSION_TOLERANCE;
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    println!(
        "\nperf gate vs {path} (floor: {:.0}% of baseline)",
        floor * 100.0
    );
    for r in runs {
        let Some(b) = baseline
            .iter()
            .find(|b| b.mode == r.mode && b.entities == r.entities && b.threads == r.threads)
        else {
            continue;
        };
        compared += 1;
        let ratio = r.pairs_per_sec / b.pairs_per_sec;
        let verdict = if ratio < floor { "REGRESSED" } else { "ok" };
        println!(
            "  {:<12} entities={:<5} threads={}: {:>12.0} vs {:>12.0} pairs/s ({:>5.2}x) {}",
            r.mode, r.entities, r.threads, r.pairs_per_sec, b.pairs_per_sec, ratio, verdict
        );
        if ratio < floor {
            regressions.push(format!(
                "{} entities={} threads={}: {:.2}x",
                r.mode, r.entities, r.threads, ratio
            ));
        }
    }
    if compared == 0 {
        eprintln!("perf gate: no overlapping configurations with {path}; nothing compared");
        return true;
    }
    if regressions.is_empty() {
        println!("perf gate: {compared} configuration(s) within tolerance");
        true
    } else {
        eprintln!(
            "perf gate FAILED: {} of {compared} configuration(s) regressed >{:.0}%:",
            regressions.len(),
            REGRESSION_TOLERANCE * 100.0
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        false
    }
}

/// The pipeline's combination + preparation steps, shared by the
/// reduction and kernel modes.
fn prepared_combined(sources: &[&XRelation]) -> XRelation {
    let mut combined = XRelation::new(sources[0].schema().clone());
    for src in sources {
        for t in src.xtuples() {
            combined.push(t.clone());
        }
    }
    Preparation::standard_all(4).apply(&mut combined);
    combined
}

/// Reduction-phase throughput: multi-pass SNM (8 top-probability worlds,
/// window 6) and per-alternative blocking over the prepared combined
/// relation, each in its interned-key and string-key-oracle variant.
/// `candidates` counts the candidate pairs one run generates;
/// `pairs_per_sec` is candidate pairs generated per second across
/// repeated runs (the whole phase, including key-table construction, is
/// inside the timed region). Each mode repeats until it has accumulated
/// at least `REDUCTION_MIN_WALL` (250 ms) of measured time, so
/// sub-millisecond phases don't feed scheduler noise into the ±25%
/// regression gate.
fn reduction_modes(entities: usize, rows: usize, sources: &[&XRelation]) -> Vec<Run> {
    const SNM_WINDOW: usize = 6;
    const SNM_PASSES: usize = 8;
    /// Minimum accumulated measurement window per mode.
    const REDUCTION_MIN_WALL: f64 = 0.25;
    let combined = prepared_combined(sources);
    let tuples = combined.xtuples();
    let spec = experiment_key();
    let selection = WorldSelection::TopK(SNM_PASSES);
    let mut runs = Vec::new();
    let mut measure = |mode: &'static str, f: &dyn Fn() -> usize| {
        let start = Instant::now();
        let mut pairs = f();
        let mut reps = 1usize;
        while start.elapsed().as_secs_f64() < REDUCTION_MIN_WALL {
            pairs = f();
            reps += 1;
        }
        let wall = start.elapsed().as_secs_f64();
        runs.push(Run {
            entities,
            rows,
            mode,
            threads: 1,
            candidates: pairs,
            wall_ms: wall * 1e3 / reps as f64,
            pairs_per_sec: (pairs * reps) as f64 / wall,
            cache_hits: 0,
            cache_misses: 0,
            cache_hit_rate: 0.0,
            interned_values: 0,
            ..Run::default()
        });
    };
    measure("snm-multipass", &|| {
        multipass_snm_pairs(tuples, &spec, SNM_WINDOW, selection).len()
    });
    measure("snm-multipass-strkey", &|| {
        multipass_snm_oracle(tuples, &spec, SNM_WINDOW, selection)
            .pairs
            .len()
    });
    measure("blocking-multipass", &|| {
        block_multipass(tuples, &spec, selection).pairs.len()
    });
    measure("blocking-multipass-strkey", &|| {
        block_multipass_oracle(tuples, &spec, selection).pairs.len()
    });
    measure("blocking-alt", &|| {
        block_alternatives(tuples, &spec).pairs.len()
    });
    measure("blocking-alt-strkey", &|| {
        block_alternatives_oracle(tuples, &spec).pairs.len()
    });
    // Out-of-core SNM: the same sorting-alternatives candidates through
    // the external merge sort, with a deliberately tiny run buffer so
    // every sorted run spills to a temp file and the k-way merge +
    // streaming re-windowing are what's measured. Dedup through the
    // sparse pair set mirrors the sharded pipeline's routing path.
    {
        let cfg = ExternalSortConfig {
            run_entries: 512,
            dir: None,
        };
        let start = Instant::now();
        let mut pairs = 0usize;
        let mut reps = 0usize;
        while reps == 0 || start.elapsed().as_secs_f64() < REDUCTION_MIN_WALL {
            let mut seen = SparsePairSet::new();
            sorting_alternatives_external_scan(tuples, &spec, SNM_WINDOW, &cfg, &mut |a, b| {
                if a.1 != b.1 {
                    seen.insert(a.1, b.1);
                }
            })
            .expect("external SNM scan");
            pairs = seen.len();
            reps += 1;
        }
        let wall = start.elapsed().as_secs_f64();
        runs.push(Run {
            entities,
            rows,
            mode: "snm-external",
            threads: 1,
            candidates: pairs,
            wall_ms: wall * 1e3 / reps as f64,
            pairs_per_sec: (pairs * reps) as f64 / wall,
            peak_rss_bytes: peak_rss_bytes(),
            ..Run::default()
        });
    }
    runs
}

/// Parse a byte count with an optional `k`/`m`/`g` binary suffix.
fn parse_bytes(v: &str) -> u64 {
    let (num, mult) = match v.as_bytes().last() {
        Some(b'k' | b'K') => (&v[..v.len() - 1], 1u64 << 10),
        Some(b'm' | b'M') => (&v[..v.len() - 1], 1 << 20),
        Some(b'g' | b'G') => (&v[..v.len() - 1], 1 << 30),
        _ => (v, 1),
    };
    num.parse::<u64>().expect("byte count") * mult
}

/// The `--entities N` scale probe: one sharded, budgeted run of the
/// bounded-matching configuration over sorting-alternatives SNM
/// candidates (window 8). At 10⁵ entities the unsharded in-memory
/// reduction cannot honor any such budget — its triangular `PairMatrix`
/// alone is `n²/2` bits ≈ 2 GB at ~190k rows — while the sharded path
/// streams candidates through the external sort and a sparse pair set.
/// Workload generation is untimed; `peak_rss_bytes` is read right after
/// the run so it reflects the pipeline's actual footprint.
fn scale_mode(entities: usize, shards: usize, budget: u64) -> Run {
    const SCALE_WINDOW: usize = 8;
    const SCALE_THREADS: usize = 4;
    let ds = workload(entities);
    let sources: Vec<&XRelation> = ds.relations.iter().collect();
    let rows = ds.total_rows();
    let pipeline = experiment_pipeline_scale(SCALE_WINDOW, SCALE_THREADS, budget);
    let start = Instant::now();
    let (result, stats) = pipeline
        .sharded(shards)
        .run_with_stats(&sources)
        .expect("scale run");
    let wall = start.elapsed().as_secs_f64();
    let (max, min) = stats.skew();
    println!(
        "scale: {shards} shards over {rows} rows under {budget} bytes: \
         skew max {max} / min {min}, {} sort entries in {} spilled runs ({} bytes)",
        stats.sort.entries, stats.sort.runs_spilled, stats.sort.spilled_bytes
    );
    Run {
        entities,
        rows,
        mode: "scale-sharded",
        threads: SCALE_THREADS,
        candidates: result.candidates,
        wall_ms: wall * 1e3,
        pairs_per_sec: result.candidates as f64 / wall,
        cache_hits: result.stats.cache_hits,
        cache_misses: result.stats.cache_misses,
        cache_hit_rate: result.stats.hit_rate(),
        interned_values: result.stats.interned_values,
        peak_rss_bytes: peak_rss_bytes(),
        ..Run::default()
    }
}

/// Session-oriented throughput over the interned full-comparison
/// configuration:
///
/// * `session-cold` — a fresh [`DedupSession`]'s first run (pools, key
///   tables and caches built from nothing): the baseline the warm rerun
///   is compared against, ≈ the `interned` mode plus session bookkeeping;
/// * `session-warm` — re-running the **identical** sources on the same
///   session: reduction and interning are skipped outright and matching
///   answers from the warm `SymbolCache`s, so this measures the amortized
///   pairs/s a long-lived deployment sees on reruns (repeated to a ≥
///   250 ms window);
/// * `incremental` — a 10%-increment [`ingest`] against a resident 90%
///   base: `candidates` counts only the newly classified pairs
///   (new-vs-resident + new-vs-new) and `pairs_per_sec` is their
///   classification rate — the cost of absorbing new data without a full
///   re-run. Each repetition rebuilds the base session untimed;
/// * `session-snapshot` — [`save`] + [`open`] of the warmed session
///   through a real temp file: serialization, the atomic-write fsync
///   dance, checksum + structural validation and the warm-state rebuild
///   are all inside the timed region, and no matching runs at all.
///
/// [`ingest`]: DedupSession::ingest
/// [`save`]: DedupSession::save
/// [`open`]: DedupSession::open
fn session_modes(entities: usize, rows: usize, sources: &[&XRelation], threads: usize) -> Vec<Run> {
    /// Minimum accumulated measurement window for the repeated modes.
    const SESSION_MIN_WALL: f64 = 0.25;
    let pipeline = experiment_pipeline_cached(ReductionStrategy::Full, threads, true);
    let mut runs = Vec::new();
    // The session's counters are cumulative over its lifetime; each mode
    // reports the **delta across its own timed region** so the JSON's
    // cache fields describe that mode's traffic, comparable with the
    // per-run `interned` rows.
    let run_of = |mode: &'static str,
                  before: probdedup_core::pipeline::MatchingStats,
                  after: probdedup_core::pipeline::MatchingStats,
                  candidates: usize,
                  wall: f64,
                  reps: usize| {
        let hits = after.cache_hits - before.cache_hits;
        let misses = after.cache_misses - before.cache_misses;
        Run {
            entities,
            rows,
            mode,
            threads,
            candidates,
            wall_ms: wall * 1e3 / reps as f64,
            pairs_per_sec: (candidates * reps) as f64 / wall,
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            interned_values: after.interned_values,
            ..Run::default()
        }
    };

    // Cold: the first run of a fresh session.
    let mut session = pipeline.session();
    let start = Instant::now();
    let cold = session.run(sources).expect("session cold run");
    let cold_wall = start.elapsed().as_secs_f64();
    let cold_stats = session.stats();
    runs.push(run_of(
        "session-cold",
        probdedup_core::pipeline::MatchingStats::default(),
        cold_stats,
        cold.candidates,
        cold_wall,
        1,
    ));

    // Warm: rerun the identical sources until the window is filled.
    let start = Instant::now();
    let mut warm = session.run(sources).expect("session warm run");
    let mut reps = 1usize;
    while start.elapsed().as_secs_f64() < SESSION_MIN_WALL {
        warm = session.run(sources).expect("session warm run");
        reps += 1;
    }
    let warm_wall = start.elapsed().as_secs_f64();
    runs.push(run_of(
        "session-warm",
        cold_stats,
        session.stats(),
        warm.candidates,
        warm_wall,
        reps,
    ));

    // Incremental: resident 90% base, timed 10% ingest. The base session
    // is rebuilt (untimed) per repetition — ingest mutates it.
    let combined = prepared_combined(sources);
    let cut = combined.len() - (combined.len() / 10).max(1);
    let mut base_rel = XRelation::new(combined.schema().clone());
    let mut inc_rel = XRelation::new(combined.schema().clone());
    for (i, t) in combined.xtuples().iter().enumerate() {
        if i < cut {
            base_rel.push(t.clone());
        } else {
            inc_rel.push(t.clone());
        }
    }
    let mut wall = 0.0f64;
    let mut reps = 0usize;
    let mut inc_run = Run::default();
    while wall < SESSION_MIN_WALL && reps < 40 {
        let mut session = pipeline.session();
        session.ingest(&base_rel).expect("base ingest");
        let base_stats = session.stats();
        let start = Instant::now();
        let step = session.ingest(&inc_rel).expect("increment ingest");
        wall += start.elapsed().as_secs_f64();
        reps += 1;
        inc_run = run_of(
            "incremental",
            base_stats,
            session.stats(),
            step.new_decisions.len(),
            wall,
            reps,
        );
    }
    runs.push(inc_run);

    // Snapshot: the durability round-trip of the (still warm) cold-run
    // session. Each repetition saves to the same temp path and re-opens
    // it; the reopened session is dropped untimed. `session.stats()` is
    // unchanged by the loop (the round-trip does no matching), so the
    // cache-delta fields are zero by construction.
    //
    // Unlike the compute-bound modes, this one reports the **fastest**
    // repetition in the window, not the mean: the timed region includes
    // the atomic-write fsyncs, and fsync stalls from unrelated host I/O
    // make the mean swing ~3× run-to-run. A stall only ever slows a rep
    // down, so the per-window minimum is the stable estimator the 25%
    // regression gate needs.
    const SNAPSHOT_MIN_WALL: f64 = 1.0;
    let snap_path = std::env::temp_dir().join(format!(
        "probdedup-bench-{}-{entities}-{threads}.snap",
        std::process::id()
    ));
    let snap_before = session.stats();
    let start = Instant::now();
    let mut reps = 0usize;
    let mut restored = 0usize;
    let mut best = f64::INFINITY;
    while reps == 0 || start.elapsed().as_secs_f64() < SNAPSHOT_MIN_WALL {
        let rep_start = Instant::now();
        session.save(&snap_path).expect("snapshot save");
        let reopened = DedupSession::open(&snap_path, &pipeline).expect("snapshot open");
        best = best.min(rep_start.elapsed().as_secs_f64());
        restored = reopened.result().candidates;
        reps += 1;
    }
    std::fs::remove_file(&snap_path).ok();
    runs.push(run_of(
        "session-snapshot",
        snap_before,
        session.stats(),
        restored,
        best,
        1,
    ));
    runs
}

/// The serving front door through a real loopback socket: an in-process
/// daemon over the interned experiment pipeline, seeded with the full
/// workload corpus via one (untimed) `dedup` POST, then driven on a
/// keep-alive connection:
///
/// * `serve-query` — `GET query?i=&j=` over rotating resident pairs:
///   one pair answered per request, so `pairs_per_sec` ==
///   `requests_per_sec` and the mode measures request overhead on top
///   of the memo/cache read path;
/// * `serve-partition` — `GET partition`: the whole merged view
///   (clusters + summary) recomputed and serialized per request;
///   `pairs_per_sec` counts candidate decisions returned per second.
fn serve_modes(entities: usize, rows: usize, sources: &[&XRelation], threads: usize) -> Vec<Run> {
    /// Minimum accumulated measurement window per mode.
    const SERVE_MIN_WALL: f64 = 0.25;
    let pipeline = experiment_pipeline_cached(ReductionStrategy::Full, threads, true);
    let running = Server::bind(ServeConfig::new("127.0.0.1:0", pipeline))
        .expect("bind loopback")
        .spawn();
    let client = Client::new(running.addr());

    // Seed the resident corpus (untimed): one dedup POST of the whole
    // prepared workload.
    let combined = prepared_combined(sources);
    let body = probdedup_model::format::write_xrelation(&combined);
    let (status, seed) = client
        .post("/sessions/bench/dedup", body.as_bytes())
        .expect("seed dedup");
    assert_eq!(status, 200, "seed dedup failed: {seed}");
    let resident_candidates: usize = json_field(&seed, "candidates")
        .expect("candidates field")
        .parse()
        .expect("candidates number");
    let n = combined.len();

    let mut conn = client.keep_alive().expect("keep-alive connection");
    let mut runs = Vec::new();

    // serve-query: rotate deterministically over resident pairs.
    let start = Instant::now();
    let mut requests = 0usize;
    while requests < 64 || start.elapsed().as_secs_f64() < SERVE_MIN_WALL {
        let i = requests % n;
        let j = (i + 1 + (requests * 7) % (n - 1)) % n;
        let j = if i == j { (j + 1) % n } else { j };
        let (status, resp) = conn
            .request("GET", &format!("/sessions/bench/query?i={i}&j={j}"), b"")
            .expect("query request");
        assert_eq!(status, 200, "query failed: {resp}");
        requests += 1;
    }
    let wall = start.elapsed().as_secs_f64();
    runs.push(Run {
        entities,
        rows,
        mode: "serve-query",
        threads,
        candidates: requests,
        wall_ms: wall * 1e3 / requests as f64,
        pairs_per_sec: requests as f64 / wall,
        requests_per_sec: requests as f64 / wall,
        ..Run::default()
    });

    // serve-partition: the merged view per request.
    let start = Instant::now();
    let mut requests = 0usize;
    while requests < 16 || start.elapsed().as_secs_f64() < SERVE_MIN_WALL {
        let (status, resp) = conn
            .request("GET", "/sessions/bench/partition", b"")
            .expect("partition request");
        assert_eq!(status, 200, "partition failed: {resp}");
        requests += 1;
    }
    let wall = start.elapsed().as_secs_f64();
    runs.push(Run {
        entities,
        rows,
        mode: "serve-partition",
        threads,
        candidates: resident_candidates,
        wall_ms: wall * 1e3 / requests as f64,
        pairs_per_sec: (resident_candidates * requests) as f64 / wall,
        requests_per_sec: requests as f64 / wall,
        ..Run::default()
    });

    drop(conn);
    running.shutdown().expect("serve shutdown");
    runs
}

/// Entity-resolution throughput and quality: one untimed exact pipeline
/// run over the workload, then each strategy repeatedly rebuilds the
/// match graph from the decided pairs and clusters it until the 250 ms
/// window is filled. `candidates` counts the resolved entities;
/// `pairs_per_sec` is entities (clusters) resolved per second. Each
/// run's partition is scored against the workload's ground truth with
/// the cluster-level metrics, and the repaired strategy must never
/// score below the components baseline on pairwise F1 — the quality
/// contract the correlation-clustering repair exists to uphold.
fn entities_modes(
    entities: usize,
    rows: usize,
    ds: &probdedup_datagen::SyntheticDataset,
) -> Vec<Run> {
    use probdedup_entity::{ClusterStrategy, ResolveEntities};
    use probdedup_eval::ClusterMetrics;

    /// Minimum accumulated measurement window per strategy.
    const ENTITY_MIN_WALL: f64 = 0.25;
    let sources: Vec<&XRelation> = ds.relations.iter().collect();
    let pipeline = experiment_pipeline_cached(ReductionStrategy::Full, 4, true);
    let result = pipeline.run(&sources).expect("pipeline run (untimed)");
    let truth = ds.truth.true_clusters();

    let mut runs = Vec::new();
    let mut f1_of = [0.0f64; 3];
    for (slot, (mode, strategy)) in [
        ("entities-components", ClusterStrategy::Components),
        ("entities-greedy", ClusterStrategy::CorrelationGreedy),
        ("entities-repaired", ClusterStrategy::CorrelationRepaired),
    ]
    .into_iter()
    .enumerate()
    {
        let start = Instant::now();
        let mut res = result.resolve_entities(strategy);
        let mut reps = 1usize;
        while start.elapsed().as_secs_f64() < ENTITY_MIN_WALL {
            res = result.resolve_entities(strategy);
            reps += 1;
        }
        let wall = start.elapsed().as_secs_f64();
        let metrics = ClusterMetrics::from_partitions(&res.clusters, &truth, rows);
        println!("  {mode}: {metrics}");
        f1_of[slot] = metrics.pairwise.f1;
        runs.push(Run {
            entities,
            rows,
            mode,
            threads: 1,
            candidates: res.stats.entities,
            wall_ms: wall * 1e3 / reps as f64,
            pairs_per_sec: (res.stats.entities * reps) as f64 / wall,
            pairwise_precision: metrics.pairwise.precision,
            pairwise_recall: metrics.pairwise.recall,
            pairwise_f1: metrics.pairwise.f1,
            closest_cluster_f1: metrics.closest_cluster_f1,
            ..Run::default()
        });
    }
    assert!(
        f1_of[2] >= f1_of[0] - 1e-12,
        "correlation-repaired pairwise F1 ({}) fell below components ({})",
        f1_of[2],
        f1_of[0]
    );
    runs
}

/// Raw kernel throughput over the workload's distinct prepared text
/// values: every unordered pair through Jaro-Winkler (the pipeline
/// kernel), Levenshtein and normalized Hamming. `candidates` counts
/// kernel evaluations; no cache can hide kernel cost here.
fn textsim_mode(entities: usize, rows: usize, sources: &[&XRelation]) -> Run {
    let combined = prepared_combined(sources);
    let mut pool = ValuePool::new();
    for t in combined.xtuples() {
        for alt in t.alternatives() {
            for pv in alt.values() {
                for (v, _) in pv.alternatives() {
                    pool.intern(v);
                }
            }
        }
    }
    let texts: Vec<&str> = pool
        .iter()
        .filter_map(|(_, v)| match v {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        })
        .take(TEXTSIM_VALUE_CAP)
        .collect();
    let kernels: [&dyn StringComparator; 3] = [
        &JaroWinkler::new(),
        &Levenshtein::new(),
        &NormalizedHamming::new(),
    ];
    let start = Instant::now();
    let mut acc = 0.0f64;
    let mut evals = 0usize;
    for (i, a) in texts.iter().enumerate() {
        for b in &texts[i + 1..] {
            for k in &kernels {
                acc += k.similarity(a, b);
                evals += 1;
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    assert!(acc.is_finite());
    Run {
        entities,
        rows,
        mode: "textsim",
        threads: 1,
        candidates: evals,
        wall_ms: wall * 1e3,
        pairs_per_sec: evals as f64 / wall,
        cache_hits: 0,
        cache_misses: 0,
        cache_hit_rate: 0.0,
        interned_values: texts.len(),
        ..Run::default()
    }
}

fn print_run(r: &Run) {
    println!(
        "{:<9} {:>6} {:<12} {:>7} {:>11} {:>10.1} {:>13.0} {:>9.3}",
        r.entities,
        r.rows,
        r.mode,
        r.threads,
        r.candidates,
        r.wall_ms,
        r.pairs_per_sec,
        r.cache_hit_rate
    );
}

/// Matching + decision over the full candidate set through the
/// value-keyed [`CachedComparator`] (the design the interned path
/// replaced), on the same work-stealing executor so only the hot path
/// differs.
fn value_cache_baseline(
    entities: usize,
    rows: usize,
    sources: &[&XRelation],
    threads: usize,
) -> Run {
    // Mirror the pipeline's combination + preparation steps.
    let mut combined = XRelation::new(sources[0].schema().clone());
    for src in sources {
        for t in src.xtuples() {
            combined.push(t.clone());
        }
    }
    Preparation::standard_all(4).apply(&mut combined);
    let tuples = combined.xtuples();
    let comparators = AttributeComparators::uniform(combined.schema(), JaroWinkler::new());
    let caches: Vec<CachedComparator> = comparators.to_cached();
    let model = experiment_model();
    let n = tuples.len();
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();

    let start = Instant::now();
    let decisions = par_map_index(threads, pairs.len(), |idx| {
        let (i, j) = pairs[idx];
        let matrix = compare_xtuples_cached(&tuples[i], &tuples[j], &caches);
        model.decide(&tuples[i], &tuples[j], &matrix).similarity
    });
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(decisions.len(), pairs.len());
    let (hits, misses) = caches
        .iter()
        .map(CachedComparator::stats)
        .fold((0, 0), |(h, m), (sh, sm)| (h + sh, m + sm));
    Run {
        entities,
        rows,
        mode: "value-cache",
        threads,
        candidates: pairs.len(),
        wall_ms: wall * 1e3,
        pairs_per_sec: pairs.len() as f64 / wall,
        cache_hits: hits,
        cache_misses: misses,
        cache_hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        interned_values: 0,
        ..Run::default()
    }
}

/// Hand-rolled JSON (the offline build vendors no serde); all fields are
/// numbers or fixed identifiers, so escaping is a non-issue.
fn render_json(runs: &[Run]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema_version\": 1,");
    let _ = writeln!(s, "  \"workload_seed\": {SEED},");
    let _ = writeln!(s, "  \"reduction\": \"full\",");
    s.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"entities\": {}, \"rows\": {}, \"mode\": \"{}\", \"threads\": {}, \
             \"candidates\": {}, \"wall_ms\": {:.3}, \"pairs_per_sec\": {:.1}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.6}, \
             \"interned_values\": {}",
            r.entities,
            r.rows,
            r.mode,
            r.threads,
            r.candidates,
            r.wall_ms,
            r.pairs_per_sec,
            r.cache_hits,
            r.cache_misses,
            r.cache_hit_rate,
            r.interned_values,
        );
        if r.mode.starts_with("serve") {
            let _ = write!(s, ", \"requests_per_sec\": {:.1}", r.requests_per_sec);
        }
        if r.peak_rss_bytes > 0 {
            // Out-of-core modes: process VmHWM after the measured region.
            let _ = write!(s, ", \"peak_rss_bytes\": {}", r.peak_rss_bytes);
        }
        if r.mode.starts_with("entities") {
            // Cluster-level quality vs the workload's ground truth.
            let _ = write!(
                s,
                ", \"pairwise_precision\": {:.6}, \"pairwise_recall\": {:.6}, \
                 \"pairwise_f1\": {:.6}, \"closest_cluster_f1\": {:.6}",
                r.pairwise_precision, r.pairwise_recall, r.pairwise_f1, r.closest_cluster_f1,
            );
        }
        if r.mode.starts_with("bounded") {
            // Per-tier disposal fractions of the bounded path (they sum
            // with the exhausted remainder to 1).
            let _ = write!(
                s,
                ", \"early_match_frac\": {:.6}, \"early_nonmatch_frac\": {:.6}, \
                 \"early_possible_frac\": {:.6}, \"kernel_bound_certs\": {}",
                r.early_match_frac,
                r.early_nonmatch_frac,
                r.early_possible_frac,
                r.kernel_bound_certs,
            );
        }
        s.push('}');
        s.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
