//! The experiment harness: regenerates every figure of the paper
//! (paper-vs-measured) and runs the quantitative experiments E1–E6 of
//! DESIGN.md. The output of `--all` is the source of EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p probdedup-bench --bin experiments --release -- --all
//! cargo run -p probdedup-bench --bin experiments --release -- --figure 7
//! cargo run -p probdedup-bench --bin experiments --release -- --exp reduction
//! ```

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use probdedup::decision::combine::{CombinationFunction, WeightedSum};
use probdedup::decision::derive_decision::{ExpectedMatchingResult, MatchingWeightDerivation};
use probdedup::decision::derive_sim::ExpectedSimilarity;
use probdedup::decision::em::{binarize, fit_em, EmConfig};
use probdedup::decision::rules::{Condition, Rule, RuleSet};
use probdedup::decision::threshold::Thresholds;
use probdedup::decision::xmodel::{DecisionBasedModel, SimilarityBasedModel, XTupleDecisionModel};
use probdedup::eval::sweep::{best_f1, grid, sweep_thresholds};
use probdedup::eval::{ConfusionCounts, EffectivenessMetrics, ReductionMetrics, Table};
use probdedup::matching::matrix::compare_xtuples;
use probdedup::matching::pvalue_sim::pvalue_similarity;
use probdedup::matching::value_cmp::ValueComparator;
use probdedup::matching::vector::{compare_tuples, AttributeComparators};
use probdedup::model::condition::existence_event_probability;
use probdedup::model::convert::marginalize_xtuple;
use probdedup::model::world::enumerate_worlds;
use probdedup::paper::{self, rows};
use probdedup::reduction::{
    block_alternatives, block_conflict_resolved, cluster_blocking, conflict_resolved_snm,
    multipass_snm, ranked_snm, sorting_alternatives, CandidatePairs, ClusterBlockingConfig,
    ConflictResolution, RankingFunction, WorldSelection,
};
use probdedup::textsim::{JaroWinkler, NormalizedHamming};
use probdedup_bench::{experiment_key, experiment_weights, workload};

const LABELS: [&str; 5] = ["t31", "t32", "t41", "t42", "t43"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figures: Vec<u32> = Vec::new();
    let mut experiments: Vec<String> = Vec::new();
    let mut all = args.is_empty();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => all = true,
            "--figure" => {
                let n = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--figure N (1..=14)");
                figures.push(n);
            }
            "--exp" => {
                experiments.push(it.next().expect("--exp NAME").clone());
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    if all {
        figures = (1..=14).collect();
        experiments = ["reduction", "derivation", "worlds", "em", "keys"]
            .map(String::from)
            .to_vec();
    }
    for f in figures {
        figure(f);
    }
    for e in experiments {
        match e.as_str() {
            "reduction" => exp_reduction(),
            "derivation" => exp_derivation(),
            "worlds" => exp_worlds(),
            "em" => exp_em(),
            "keys" => exp_keys(),
            other => {
                panic!("unknown experiment {other:?} (reduction|derivation|worlds|em|keys)")
            }
        }
    }
}

fn check(name: &str, measured: f64, expected: f64, tol: f64) {
    let ok = (measured - expected).abs() <= tol;
    println!(
        "  {:<44} paper: {:<10} measured: {:<12.6} {}",
        name,
        format!("{expected:.6}"),
        measured,
        if ok { "✓" } else { "✗ MISMATCH" }
    );
    assert!(ok, "{name}: measured {measured} vs paper {expected}");
}

fn comparators() -> AttributeComparators {
    AttributeComparators::uniform(&paper::schema(), NormalizedHamming::new())
}

fn figure(n: u32) {
    match n {
        1 => fig1(),
        2 => fig2(),
        3 => fig3(),
        4 => fig4(),
        5 => fig5(),
        6 => fig6(),
        7 => fig7(),
        8 => fig8(),
        9 => fig9(),
        10 => fig10(),
        11 => fig11(),
        12 => fig12(),
        13 => fig13(),
        14 => fig14(),
        other => panic!("the paper has figures 1..=14, not {other}"),
    }
    println!();
}

/// Fig. 1: the identification rule with certainty 0.8.
fn fig1() {
    println!("[F1] Fig. 1 — identification rule (knowledge-based)");
    let rule = Rule::new(vec![Condition::gt(0, 0.7), Condition::gt(1, 0.5)], 0.8).unwrap();
    let rs = RuleSet::new().with_rule(rule);
    check(
        "certainty when both conditions hold",
        rs.certainty(&[0.9, 0.59]),
        0.8,
        0.0,
    );
    check(
        "certainty when a condition fails",
        rs.certainty(&[0.9, 0.5]),
        0.0,
        0.0,
    );
}

/// Fig. 2: classification of tuple pairs into M, P, U by T_λ/T_μ.
fn fig2() {
    println!("[F2] Fig. 2 — M/P/U classification");
    let t = Thresholds::new(0.4, 0.7).unwrap();
    println!("  R < T_λ → u:  classify(0.30) = {}", t.classify(0.30));
    println!("  T_λ ≤ R < T_μ → p: classify(0.55) = {}", t.classify(0.55));
    println!("  R ≥ T_μ → m:  classify(0.80) = {}", t.classify(0.80));
    assert_eq!(t.classify(0.30).to_string(), "u");
    assert_eq!(t.classify(0.55).to_string(), "p");
    assert_eq!(t.classify(0.80).to_string(), "m");
}

/// Fig. 3: the general decision model — φ then classification.
fn fig3() {
    println!("[F3] Fig. 3 — φ(c⃗) then classification");
    let phi = WeightedSum::new([0.8, 0.2]).unwrap();
    let sim = phi.combine(&[0.9, 53.0 / 90.0]);
    let class = Thresholds::new(0.4, 0.7).unwrap().classify(sim);
    check("sim(t11, t22) = φ(c⃗)", sim, 377.0 / 450.0, 1e-12);
    println!("  η(t11, t22) = {class} (≥ T_μ = 0.7)");
    assert_eq!(class.to_string(), "m");
}

/// Fig. 4 + Section IV-A numbers.
fn fig4() {
    println!("[F4] Fig. 4 / Section IV-A — attribute value matching (Eq. 5)");
    let r1 = paper::fig4_r1();
    let r2 = paper::fig4_r2();
    let cmp = ValueComparator::text(NormalizedHamming::new());
    let t11 = &r1.tuples()[0];
    let t22 = &r2.tuples()[1];
    check(
        "sim(Tim, Kim) (α)",
        NormalizedHamming::new().distance("Tim", "Kim") as f64,
        1.0,
        0.0,
    );
    check(
        "sim(t11.name, t22.name)",
        pvalue_similarity(t11.value(0), t22.value(0), &cmp),
        0.9,
        1e-12,
    );
    check(
        "sim(machinist, mechanic)",
        {
            use probdedup::textsim::StringComparator;
            NormalizedHamming::new().similarity("machinist", "mechanic")
        },
        5.0 / 9.0,
        1e-12,
    );
    check(
        "sim(t11.job, t22.job) (paper rounds to 0.59)",
        pvalue_similarity(t11.value(1), t22.value(1), &cmp),
        53.0 / 90.0,
        1e-12,
    );
    let c = compare_tuples(t11, t22, &comparators());
    check(
        "sim(t11, t22) (paper rounds to 0.838)",
        WeightedSum::new([0.8, 0.2]).unwrap().combine(&c),
        377.0 / 450.0,
        1e-12,
    );
}

/// Fig. 5: the x-relations and their membership probabilities.
fn fig5() {
    println!("[F5] Fig. 5 — x-relations ℛ3 and ℛ4");
    let r34 = paper::r34();
    for (i, t) in r34.xtuples().iter().enumerate() {
        println!("  {} = {}", LABELS[i], t);
    }
    check(
        "p(t32)",
        r34.get(rows::T32).unwrap().probability(),
        0.9,
        1e-12,
    );
    check(
        "p(t42)",
        r34.get(rows::T42).unwrap().probability(),
        0.8,
        1e-12,
    );
    check(
        "p(t43)",
        r34.get(rows::T43).unwrap().probability(),
        0.8,
        1e-12,
    );
    assert!(r34.get(rows::T42).unwrap().is_maybe());
    assert!(r34.get(rows::T43).unwrap().is_maybe());
    println!("  maybe markers (?): t42, t43 ✓");
}

/// Fig. 6: both decision-model adaptations run on the same input.
fn fig6() {
    println!("[F6] Fig. 6 — similarity-based vs decision-based derivation");
    let r34 = paper::r34();
    let t32 = r34.get(rows::T32).unwrap();
    let t42 = r34.get(rows::T42).unwrap();
    let matrix = compare_xtuples(t32, t42, &comparators());
    let phi: Arc<dyn CombinationFunction> = Arc::new(WeightedSum::new([0.8, 0.2]).unwrap());
    let sim_based = SimilarityBasedModel::new(
        phi.clone(),
        Arc::new(ExpectedSimilarity),
        Thresholds::new(0.4, 0.7).unwrap(),
    )
    .decide(t32, t42, &matrix);
    let dec_based = DecisionBasedModel::new(
        phi,
        Thresholds::new(0.4, 0.7).unwrap(),
        Arc::new(MatchingWeightDerivation::new()),
        Thresholds::new(0.5, 2.0).unwrap(),
    )
    .decide(t32, t42, &matrix);
    check(
        "similarity-based sim(t32, t42)",
        sim_based.similarity,
        7.0 / 15.0,
        1e-12,
    );
    check(
        "decision-based sim(t32, t42)",
        dec_based.similarity,
        0.75,
        1e-12,
    );
    println!(
        "  classes: {} (similarity-based), {} (decision-based)",
        sim_based.class, dec_based.class
    );
}

/// Fig. 7: the eight possible worlds and their probabilities.
fn fig7() {
    println!("[F7] Fig. 7 — possible worlds of (t32, t42)");
    let r34 = paper::r34();
    let pair = [
        r34.get(rows::T32).unwrap().clone(),
        r34.get(rows::T42).unwrap().clone(),
    ];
    let worlds = enumerate_worlds(&pair, 100).unwrap();
    let p = |c1: Option<usize>, c2: Option<usize>| {
        worlds
            .iter()
            .find(|w| w.choices == vec![c1, c2])
            .map(|w| w.probability)
            .unwrap()
    };
    check("P(I1)", p(Some(0), Some(0)), 0.24, 1e-12);
    check("P(I2)", p(Some(1), Some(0)), 0.16, 1e-12);
    check("P(I3)", p(Some(2), Some(0)), 0.32, 1e-12);
    check("P(I4)", p(None, Some(0)), 0.08, 1e-12);
    check("P(I5)", p(Some(0), None), 0.06, 1e-12);
    check("P(I6)", p(Some(1), None), 0.04, 1e-12);
    check("P(I7)", p(Some(2), None), 0.08, 1e-12);
    check("P(I8)", p(None, None), 0.02, 1e-12);
    check("P(B)", existence_event_probability(&pair), 0.72, 1e-12);
    // The per-pair similarities behind Eq. 6.
    let matrix = compare_xtuples(&pair[0], &pair[1], &comparators());
    let phi = WeightedSum::new([0.8, 0.2]).unwrap();
    check(
        "sim(t32¹, t42)",
        phi.combine(matrix.vector(0, 0)),
        11.0 / 15.0,
        1e-12,
    );
    check(
        "sim(t32², t42)",
        phi.combine(matrix.vector(1, 0)),
        7.0 / 15.0,
        1e-12,
    );
    check(
        "sim(t32³, t42)",
        phi.combine(matrix.vector(2, 0)),
        4.0 / 15.0,
        1e-12,
    );
}

/// Fig. 8: two full worlds of ℛ34.
fn fig8() {
    println!("[F8] Fig. 8 — worlds of ℛ34 containing all tuples");
    let r34 = paper::r34();
    let full: Vec<_> = probdedup::model::world::full_worlds(r34.xtuples()).collect();
    // 2 · 3 · 2 · 1 · 2 = 24 full worlds.
    check("number of full worlds", full.len() as f64, 24.0, 0.0);
    let i1 = full
        .iter()
        .find(|w| w.choices == vec![Some(0), Some(0), Some(1), Some(0), Some(1)])
        .expect("Fig. 8's I1 exists");
    let i2 = full
        .iter()
        .find(|w| w.choices == vec![Some(1), Some(1), Some(0), Some(0), Some(0)])
        .expect("Fig. 8's I2 exists");
    println!(
        "  I1 (John pilot | Tim mechanic | Johan pianist | Tom mechanic | Sean pilot): P = {:.4}",
        i1.probability
    );
    println!(
        "  I2 (Johan mu* | Jim mechanic | John pilot | Tom mechanic | John ⊥):        P = {:.4}",
        i2.probability
    );
}

/// Fig. 9: the sorted orders of the two worlds of Fig. 8.
fn fig9() {
    println!("[F9] Fig. 9 — per-world sorted key orders (multi-pass SNM)");
    let r34 = paper::r34();
    let mp = multipass_snm(
        r34.xtuples(),
        &paper::sorting_key(),
        2,
        WorldSelection::All { limit: 100 },
    );
    // Find the two worlds of Fig. 8 among the passes and print their orders.
    for (want, label) in [
        (vec![Some(0), Some(0), Some(1), Some(0), Some(1)], "I1"),
        (vec![Some(1), Some(1), Some(0), Some(0), Some(0)], "I2"),
    ] {
        let (_, order) = mp
            .passes
            .iter()
            .find(|(w, _)| w.choices == want)
            .expect("world present");
        let keys: Vec<String> = order
            .iter()
            .map(|e| format!("{}:{}", e.key, LABELS[e.tuple]))
            .collect();
        println!("  {label}: {}", keys.join("  "));
    }
    let i1_order: Vec<&str> = mp
        .passes
        .iter()
        .find(|(w, _)| w.choices == vec![Some(0), Some(0), Some(1), Some(0), Some(1)])
        .map(|(_, o)| o.iter().map(|e| e.key.as_str()).collect())
        .unwrap();
    assert_eq!(i1_order, vec!["Johpi", "Johpi", "Seapi", "Timme", "Tomme"]);
    println!("  (paper prints Seapil for t43 in I1 — a typo for the 3+2 key Seapi)");
}

/// Fig. 10: conflict-resolved keys and the subset containment.
fn fig10() {
    println!("[F10] Fig. 10 — most-probable-alternative keys");
    let r34 = paper::r34();
    let (pairs, order) = conflict_resolved_snm(
        r34.xtuples(),
        &paper::sorting_key(),
        2,
        ConflictResolution::MostProbableAlternative,
    );
    let keys: Vec<String> = order
        .iter()
        .map(|e| format!("{}:{}", e.key, LABELS[e.tuple]))
        .collect();
    println!("  sorted: {}", keys.join("  "));
    assert_eq!(
        order.iter().map(|e| e.key.as_str()).collect::<Vec<_>>(),
        vec!["Jimba", "Johpi", "Johpi", "Seapi", "Tomme"]
    );
    let multi = multipass_snm(
        r34.xtuples(),
        &paper::sorting_key(),
        2,
        WorldSelection::All { limit: 100 },
    );
    let subset = pairs
        .pairs()
        .iter()
        .all(|&(i, j)| multi.pairs.contains(i, j));
    println!("  matchings ⊆ multi-pass matchings: {subset} ✓ (paper's claim)");
    assert!(subset);
}

/// Fig. 11: sorting alternatives — five matchings.
fn fig11() {
    println!("[F11] Fig. 11 — sorting alternatives");
    let r34 = paper::r34();
    let r = sorting_alternatives(r34.xtuples(), &paper::sorting_key(), 2);
    let keys: Vec<String> = r
        .order
        .iter()
        .map(|e| format!("{}:{}", e.key, LABELS[e.tuple]))
        .collect();
    println!("  collapsed sorted entries: {}", keys.join("  "));
    let matchings: Vec<String> = r
        .pairs
        .pairs()
        .iter()
        .map(|&(i, j)| format!("({}, {})", LABELS[i], LABELS[j]))
        .collect();
    println!("  matchings: {}", matchings.join(", "));
    check("number of matchings", r.pairs.len() as f64, 5.0, 0.0);
}

/// Fig. 12: the executed-matching matrix suppresses the repeat.
fn fig12() {
    println!("[F12] Fig. 12 — executed-matching matrix");
    let r34 = paper::r34();
    let r = sorting_alternatives(r34.xtuples(), &paper::sorting_key(), 2);
    // Window over the collapsed entries generates (t32, t43) twice:
    // entries Jimba:t32|Joh:t43 and Seapi:t43|Timme:t32. Executed once.
    let count = r
        .pairs
        .pairs()
        .iter()
        .filter(|&&p| p == (rows::T32, rows::T43))
        .count();
    check("(t32, t43) executed exactly once", count as f64, 1.0, 0.0);
}

/// Fig. 13: probabilistic key values and the ranked order.
fn fig13() {
    println!("[F13] Fig. 13 — uncertain keys and ranking");
    let r34 = paper::r34();
    let spec = paper::sorting_key();
    let expected: [(&str, Vec<(&str, f64)>); 5] = [
        ("t31", vec![("Johpi", 0.7), ("Johmu", 0.3)]),
        ("t32", vec![("Timme", 0.3), ("Jimme", 0.2), ("Jimba", 0.4)]),
        ("t41", vec![("Johpi", 1.0)]),
        ("t42", vec![("Tomme", 0.8)]),
        ("t43", vec![("Joh", 0.2), ("Seapi", 0.6)]),
    ];
    for (i, (label, keys)) in expected.iter().enumerate() {
        let got = spec.xtuple_keys(&r34.xtuples()[i]);
        for (k, p) in keys {
            let gp = got
                .iter()
                .find(|(gk, _)| gk == k)
                .map(|(_, gp)| *gp)
                .unwrap_or(f64::NAN);
            check(&format!("{label} key {k}"), gp, *p, 1e-12);
        }
    }
    let (_, order) = ranked_snm(r34.xtuples(), &spec, 2, RankingFunction::MostProbableKey);
    let ranked: Vec<&str> = order.iter().map(|&i| LABELS[i]).collect();
    println!(
        "  ranked order: {} (paper: t32 t31 t41 t43 t42)",
        ranked.join(" ")
    );
    assert_eq!(
        order,
        vec![rows::T32, rows::T31, rows::T41, rows::T43, rows::T42]
    );
}

/// Fig. 14: blocking with alternative keys.
fn fig14() {
    println!("[F14] Fig. 14 — blocking with alternative keys");
    let r34 = paper::r34();
    let r = block_alternatives(r34.xtuples(), &paper::blocking_key());
    for (key, members) in &r.blocks {
        let names: Vec<&str> = members.iter().map(|&i| LABELS[i]).collect();
        println!("  block {key:>2}: {}", names.join(", "));
    }
    check("number of blocks", r.blocks.len() as f64, 6.0, 0.0);
    check("number of matchings", r.pairs.len() as f64, 3.0, 0.0);
    println!("  (the figure's printed tuple labels use an inconsistent naming;");
    println!("   on ℛ3 ∪ ℛ4 as drawn the matchings are (t31,t32), (t31,t41), (t32,t42))");
}

// ---------------------------------------------------------------------
// Quantitative experiments E1–E6.
// ---------------------------------------------------------------------

fn to_set(pairs: &CandidatePairs) -> HashSet<(usize, usize)> {
    pairs.pairs().iter().copied().collect()
}

/// E1: pairs completeness / reduction ratio / runtime of every reduction
/// method, over growing dataset sizes.
fn exp_reduction() {
    println!("[E1] reduction effectiveness & efficiency (key: name[0..3]+city[0..2], window 6)");
    for entities in [250usize, 500, 1000, 2000] {
        let ds = workload(entities);
        let combined = ds.combined();
        let tuples = combined.xtuples();
        let truth = ds.truth.true_pairs();
        let n = tuples.len();
        let spec = experiment_key();
        println!(
            "\n  n = {n} rows, {} true duplicate pairs, {} total pairs",
            truth.len(),
            n * (n - 1) / 2
        );
        let mut table = Table::new(&["method", "candidates", "PC", "RR", "ms"]);
        let mut run = |name: &str, f: &mut dyn FnMut() -> CandidatePairs| {
            let start = Instant::now();
            let pairs = f();
            let ms = start.elapsed().as_secs_f64() * 1e3;
            let m = ReductionMetrics::evaluate(&to_set(&pairs), &truth, n);
            table.row(&[
                name.to_string(),
                pairs.len().to_string(),
                format!("{:.3}", m.pairs_completeness),
                format!("{:.4}", m.reduction_ratio),
                format!("{ms:.1}"),
            ]);
        };
        run("full comparison", &mut || {
            let mut p = CandidatePairs::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    p.insert(i, j);
                }
            }
            p
        });
        run("snm multipass top-3", &mut || {
            multipass_snm(tuples, &spec, 6, WorldSelection::TopK(3)).pairs
        });
        run("snm multipass diverse-3/16", &mut || {
            multipass_snm(
                tuples,
                &spec,
                6,
                WorldSelection::DiverseTopK { k: 3, pool: 16 },
            )
            .pairs
        });
        run("snm conflict-resolved", &mut || {
            conflict_resolved_snm(
                tuples,
                &spec,
                6,
                ConflictResolution::MostProbableAlternative,
            )
            .0
        });
        run("snm sorting-alternatives", &mut || {
            sorting_alternatives(tuples, &spec, 6).pairs
        });
        run("snm ranked (expected score)", &mut || {
            ranked_snm(tuples, &spec, 6, RankingFunction::ExpectedScore).0
        });
        run("snm ranked (most-probable key)", &mut || {
            ranked_snm(tuples, &spec, 6, RankingFunction::MostProbableKey).0
        });
        run("blocking alternatives", &mut || {
            block_alternatives(tuples, &spec).pairs
        });
        run("blocking conflict-resolved", &mut || {
            block_conflict_resolved(tuples, &spec, ConflictResolution::MostProbableAlternative)
                .pairs
        });
        run("blocking cluster (k = n/8)", &mut || {
            cluster_blocking(
                tuples,
                &spec,
                &ClusterBlockingConfig {
                    k: (n / 8).max(2),
                    ..Default::default()
                },
            )
            .0
        });
        println!("{table}");
    }
    println!();
}

/// E2: decision quality of the three derivations over threshold sweeps.
fn exp_derivation() {
    println!("[E2] derivation quality (similarity-based vs decision-based vs E(η))");
    let ds = workload(500);
    let combined = ds.combined();
    let tuples = combined.xtuples();
    let truth = ds.truth.true_pairs();
    let n = tuples.len();
    let cmp = AttributeComparators::uniform(&ds.schema, JaroWinkler::new());
    let (candidates, _) = ranked_snm(
        tuples,
        &experiment_key(),
        10,
        RankingFunction::ExpectedScore,
    );
    let missed = truth
        .iter()
        .filter(|&&(i, j)| !candidates.contains(i, j))
        .count() as u64;
    let universe = (n * (n - 1) / 2) as u64;
    println!(
        "  {} candidates, {} true pairs missed by reduction",
        candidates.len(),
        missed
    );

    let phi: Arc<dyn CombinationFunction> = Arc::new(experiment_weights());
    let inner = Thresholds::new(0.72, 0.82).unwrap();
    let derivations: Vec<(&str, Arc<dyn XTupleDecisionModel>, f64, f64)> = vec![
        (
            "similarity-based E[sim] (Eq. 6)",
            Arc::new(SimilarityBasedModel::new(
                phi.clone(),
                Arc::new(ExpectedSimilarity),
                inner,
            )),
            0.5,
            1.0,
        ),
        (
            "decision-based P(m)/P(u) (Eqs. 7-9)",
            Arc::new(DecisionBasedModel::new(
                phi.clone(),
                inner,
                Arc::new(MatchingWeightDerivation::with_cap(100.0)),
                Thresholds::new(0.5, 2.0).unwrap(),
            )),
            0.0,
            100.0,
        ),
        (
            "decision-based E(η) (m=2,p=1,u=0)",
            Arc::new(DecisionBasedModel::new(
                phi,
                inner,
                Arc::new(ExpectedMatchingResult::new()),
                Thresholds::new(0.9, 1.7).unwrap(),
            )),
            0.0,
            2.0,
        ),
    ];
    let mut table = Table::new(&["derivation", "best F1", "at threshold", "P", "R"]);
    for (name, model, lo, hi) in derivations {
        let scored: Vec<(f64, bool)> = candidates
            .pairs()
            .iter()
            .map(|&(i, j)| {
                let matrix = compare_xtuples(&tuples[i], &tuples[j], &cmp);
                let d = model.decide(&tuples[i], &tuples[j], &matrix);
                (d.similarity, truth.contains(&(i, j)))
            })
            .collect();
        let points = sweep_thresholds(&scored, missed, universe, &grid(lo, hi, 60));
        let best = best_f1(&points).expect("non-empty sweep");
        table.row(&[
            name.to_string(),
            format!("{:.3}", best.metrics.f1),
            format!("{:.3}", best.threshold),
            format!("{:.3}", best.metrics.precision),
            format!("{:.3}", best.metrics.recall),
        ]);
    }
    println!("{table}\n");
}

/// E3: world-selection policies for the multi-pass SNM, on two uncertainty
/// profiles. At a moderate x-tuple rate the top worlds are near-identical
/// and neither policy gains much over one pass; when most records are
/// multi-alternative x-tuples, worlds genuinely differ and the diverse
/// policy buys more completeness per pass — the paper's argument.
fn exp_worlds() {
    println!("[E3] world selection for multi-pass SNM (budget = k passes)");
    use probdedup::datagen::{generate, DatasetConfig, Dictionaries};
    let heavy = |entities: usize| {
        generate(
            &Dictionaries::people(),
            &DatasetConfig {
                entities,
                sources: 2,
                presence_rate: 0.85,
                extra_copy_rate: 0.1,
                typo_rate: 0.25,
                uncertainty_rate: 0.5,
                xtuple_rate: 0.9,
                maybe_rate: 0.3,
                seed: probdedup_bench::SEED,
                ..DatasetConfig::default()
            },
        )
    };
    let profiles: [(&str, probdedup::datagen::SyntheticDataset); 3] = [
        ("moderate uncertainty (xtuple_rate 0.25)", workload(400)),
        ("heavy uncertainty (xtuple_rate 0.9)", heavy(400)),
        (
            "small relation, heavy uncertainty (the paper's regime)",
            heavy(25),
        ),
    ];
    for (profile, ds) in profiles {
        let combined = ds.combined();
        let tuples = combined.xtuples();
        let truth = ds.truth.true_pairs();
        let n = tuples.len();
        let spec = experiment_key();
        println!("\n  profile: {profile}, n = {n}");
        let mut table = Table::new(&[
            "k",
            "top-k PC",
            "diverse PC",
            "top-k cands",
            "diverse cands",
        ]);
        for k in [1usize, 2, 3, 5, 8] {
            let top = multipass_snm(tuples, &spec, 6, WorldSelection::TopK(k));
            let div = multipass_snm(
                tuples,
                &spec,
                6,
                WorldSelection::DiverseTopK { k, pool: 64 },
            );
            let pc_top =
                ReductionMetrics::evaluate(&to_set(&top.pairs), &truth, n).pairs_completeness;
            let pc_div =
                ReductionMetrics::evaluate(&to_set(&div.pairs), &truth, n).pairs_completeness;
            table.row(&[
                k.to_string(),
                format!("{pc_top:.3}"),
                format!("{pc_div:.3}"),
                top.pairs.len().to_string(),
                div.pairs.len().to_string(),
            ]);
        }
        println!("{table}");
    }
    println!();
}

/// E5: EM parameter recovery against the generating model.
fn exp_em() {
    println!("[E5] EM estimation of Fellegi-Sunter parameters (unsupervised)");
    let ds = workload(800);
    let combined = ds.combined();
    let tuples = combined.xtuples();
    let truth = ds.truth.true_pairs();
    let cmp = AttributeComparators::uniform(&ds.schema, JaroWinkler::new());
    let (candidates, _) = ranked_snm(
        tuples,
        &experiment_key(),
        10,
        RankingFunction::ExpectedScore,
    );
    let marginals: Vec<_> = tuples.iter().map(marginalize_xtuple).collect();
    let vectors: Vec<Vec<f64>> = candidates
        .pairs()
        .iter()
        .map(|&(i, j)| compare_tuples(&marginals[i], &marginals[j], &cmp))
        .collect();
    let labels: Vec<bool> = candidates
        .pairs()
        .iter()
        .map(|p| truth.contains(p))
        .collect();
    let patterns = binarize(&vectors, 0.8);
    let em = fit_em(&patterns, &EmConfig::default()).expect("EM");
    // Supervised reference rates from the (held-back) labels.
    let mut table = Table::new(&["attribute", "EM m", "true m", "EM u", "true u"]);
    let names = ["name", "job", "city", "age"];
    for a in 0..4 {
        let m_true = {
            let (mut agree, mut tot): (f64, f64) = (0.0, 0.0);
            for (p, &l) in patterns.iter().zip(&labels) {
                if l {
                    tot += 1.0;
                    if p[a] {
                        agree += 1.0;
                    }
                }
            }
            agree / tot.max(1.0)
        };
        let u_true = {
            let (mut agree, mut tot): (f64, f64) = (0.0, 0.0);
            for (p, &l) in patterns.iter().zip(&labels) {
                if !l {
                    tot += 1.0;
                    if p[a] {
                        agree += 1.0;
                    }
                }
            }
            agree / tot.max(1.0)
        };
        table.row(&[
            names[a].to_string(),
            format!("{:.3}", em.model.m()[a]),
            format!("{m_true:.3}"),
            format!("{:.3}", em.model.u()[a]),
            format!("{u_true:.3}"),
        ]);
    }
    println!(
        "  {} candidate patterns, match proportion: EM {:.4} vs true {:.4}",
        patterns.len(),
        em.match_proportion,
        labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64
    );
    println!("{table}");
    let fs_em = em.model;
    let metrics = {
        let th = fs_em.optimal_thresholds(0.005, 0.05).expect("thresholds");
        let mut predicted = HashSet::new();
        for (v, &(i, j)) in vectors.iter().zip(candidates.pairs()) {
            use probdedup::decision::threshold::MatchClass;
            if th.classify(fs_em.weight(v)) == MatchClass::Match {
                predicted.insert((i, j));
            }
        }
        EffectivenessMetrics::from_counts(&ConfusionCounts::from_pair_sets(
            &predicted,
            &truth,
            tuples.len(),
        ))
    };
    println!("  end-to-end FS-with-EM auto-match quality: {metrics}\n");
}

/// E6/ablation: how the key design drives the completeness/reduction
/// trade-off of the sorting-alternatives method — the DESIGN.md ablation
/// for the paper's "a key could contain the first three characters of the
/// name value and the first two characters of the job value".
fn exp_keys() {
    use probdedup::reduction::{KeyPart, KeySpec};
    println!("[E6] key-design ablation (sorting-alternatives, window 6, n = 500 entities)");
    let ds = workload(500);
    let combined = ds.combined();
    let tuples = combined.xtuples();
    let truth = ds.truth.true_pairs();
    let n = tuples.len();
    let keys: Vec<(&str, KeySpec)> = vec![
        ("name[0..1]", KeySpec::new(vec![KeyPart::prefix(0, 1)])),
        ("name[0..3]", KeySpec::new(vec![KeyPart::prefix(0, 3)])),
        ("name (full)", KeySpec::new(vec![KeyPart::full(0)])),
        (
            "name[0..3]+job[0..2] (paper's key)",
            KeySpec::new(vec![KeyPart::prefix(0, 3), KeyPart::prefix(1, 2)]),
        ),
        (
            "name[0..3]+city[0..2]",
            KeySpec::new(vec![KeyPart::prefix(0, 3), KeyPart::prefix(2, 2)]),
        ),
        (
            "city[0..2]+name[0..3] (swapped order)",
            KeySpec::new(vec![KeyPart::prefix(2, 2), KeyPart::prefix(0, 3)]),
        ),
        (
            "name[0..5]+job[0..3]+city[0..2]",
            KeySpec::new(vec![
                KeyPart::prefix(0, 5),
                KeyPart::prefix(1, 3),
                KeyPart::prefix(2, 2),
            ]),
        ),
    ];
    let mut table = Table::new(&["key", "candidates", "PC", "RR"]);
    for (name, spec) in keys {
        let r = sorting_alternatives(tuples, &spec, 6);
        let m = ReductionMetrics::evaluate(&to_set(&r.pairs), &truth, n);
        table.row(&[
            name.to_string(),
            r.pairs.len().to_string(),
            format!("{:.3}", m.pairs_completeness),
            format!("{:.4}", m.reduction_ratio),
        ]);
    }
    println!("{table}");
    println!("  (too-coarse keys create giant tie groups a fixed window cannot cover,");
    println!("   collapsing PC; composite keys both discriminate and co-locate true");
    println!("   duplicates; the leading part dominates the sort order, so putting the");
    println!("   least error-prone attribute first pays off.)\n");
}
