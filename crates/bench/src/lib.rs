//! Shared fixtures and workloads for the benchmark harness and the
//! `experiments` binary.
//!
//! The paper fixtures (ℛ1/ℛ2/ℛ3/ℛ4 and the example keys) live in
//! `probdedup::paper`; this crate adds the synthetic workloads used by the
//! quantitative experiments E1–E6 of DESIGN.md, with fixed seeds so bench
//! and experiment outputs are reproducible run to run.
//!
//! # Example
//!
//! ```
//! use probdedup_bench::{experiment_key, workload};
//!
//! let ds = workload(25); // 25 entities across two sources, fixed seed
//! assert_eq!(ds.relations.len(), 2);
//! assert!(ds.total_rows() >= 25);
//! assert_eq!(experiment_key().parts().len(), 2); // name[..3] + city[..2]
//! ```

use std::sync::Arc;

use probdedup_core::pipeline::{DedupPipeline, ReductionStrategy};
use probdedup_core::prepare::Preparation;
use probdedup_datagen::{generate, DatasetConfig, Dictionaries, SyntheticDataset};
use probdedup_decision::combine::WeightedSum;
use probdedup_decision::derive_sim::ExpectedSimilarity;
use probdedup_decision::threshold::Thresholds;
use probdedup_decision::xmodel::{SimilarityBasedModel, XTupleDecisionModel};
use probdedup_matching::vector::AttributeComparators;
use probdedup_reduction::{KeyPart, KeySpec};
use probdedup_textsim::JaroWinkler;

/// The fixed workload seed.
pub const SEED: u64 = 20100301; // ICDE 2010 workshop week

/// A standard synthetic workload with `entities` ground-truth entities
/// across two sources (see `DatasetConfig` for the dirt profile).
pub fn workload(entities: usize) -> SyntheticDataset {
    generate(
        &Dictionaries::people(),
        &DatasetConfig {
            entities,
            sources: 2,
            presence_rate: 0.85,
            extra_copy_rate: 0.1,
            typo_rate: 0.25,
            uncertainty_rate: 0.35,
            xtuple_rate: 0.25,
            maybe_rate: 0.2,
            seed: SEED,
            ..DatasetConfig::default()
        },
    )
}

/// The standard sorting/blocking key of the experiments: name prefix 3 +
/// city prefix 2 (city is less typo-prone than job in the generator).
pub fn experiment_key() -> KeySpec {
    KeySpec::new(vec![KeyPart::prefix(0, 3), KeyPart::prefix(2, 2)])
}

/// Attribute weights used across the experiments.
pub fn experiment_weights() -> WeightedSum {
    WeightedSum::normalized([3.0, 1.0, 1.5, 0.5]).expect("static weights")
}

/// The experiments' classification thresholds (tuned on the workload).
pub fn experiment_thresholds() -> Thresholds {
    Thresholds::new(0.72, 0.82).expect("static thresholds")
}

/// The standard similarity-based decision model (thresholds tuned on the
/// workload; see tests/pipeline_end_to_end.rs).
pub fn experiment_model() -> Arc<dyn XTupleDecisionModel> {
    Arc::new(SimilarityBasedModel::new(
        Arc::new(experiment_weights()),
        Arc::new(ExpectedSimilarity),
        experiment_thresholds(),
    ))
}

/// A ready pipeline over the workload schema with the given reduction.
pub fn experiment_pipeline(reduction: ReductionStrategy, threads: usize) -> DedupPipeline {
    experiment_pipeline_cached(reduction, threads, false)
}

/// [`experiment_pipeline`] with the similarity cache toggled explicitly
/// (the cache ablation of the pipeline bench).
pub fn experiment_pipeline_cached(
    reduction: ReductionStrategy,
    threads: usize,
    cache: bool,
) -> DedupPipeline {
    let ds = workload(1); // only for the schema
    DedupPipeline::builder()
        .preparation(Preparation::standard_all(4))
        .comparators(AttributeComparators::uniform(
            &ds.schema,
            JaroWinkler::new(),
        ))
        .model(experiment_model())
        .reduction(reduction)
        .threads(threads)
        .cache_similarities(cache)
        .build()
}

/// [`experiment_pipeline_cached`]'s classify-only twin: the bounded
/// matching mode under the same weights and thresholds (identical
/// classification — property-tested), with the similarity cache toggling
/// between the plain and interned bounded paths.
pub fn experiment_pipeline_bounded(
    reduction: ReductionStrategy,
    threads: usize,
    cache: bool,
) -> DedupPipeline {
    let ds = workload(1); // only for the schema
    DedupPipeline::builder()
        .preparation(Preparation::standard_all(4))
        .comparators(AttributeComparators::uniform(
            &ds.schema,
            JaroWinkler::new(),
        ))
        .classify_only(experiment_weights(), experiment_thresholds())
        .reduction(reduction)
        .threads(threads)
        .cache_similarities(cache)
        .build()
}

/// The scale-probe configuration: bounded (classify-only) matching over
/// sorting-alternatives SNM candidates with interned caches and an
/// explicit [`memory_budget`] — what the sharded out-of-core bench mode
/// runs at 10⁵-entity scale, where the unsharded in-memory reduction
/// cannot honor the budget (its triangular `PairMatrix` alone is
/// `n²/2` bits ≈ 2 GB at ~190k rows).
///
/// [`memory_budget`]: probdedup_core::pipeline::DedupPipelineBuilder::memory_budget
pub fn experiment_pipeline_scale(
    window: usize,
    threads: usize,
    memory_budget: u64,
) -> DedupPipeline {
    let ds = workload(1); // only for the schema
    DedupPipeline::builder()
        .preparation(Preparation::standard_all(4))
        .comparators(AttributeComparators::uniform(
            &ds.schema,
            JaroWinkler::new(),
        ))
        .classify_only(experiment_weights(), experiment_thresholds())
        .reduction(ReductionStrategy::SortingAlternatives {
            spec: experiment_key(),
            window,
        })
        .threads(threads)
        .cache_similarities(true)
        .memory_budget(Some(memory_budget))
        .build()
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where the proc interface is unavailable.
/// The high-water mark is process-wide and monotone: it reports the
/// largest footprint since process start, not the current usage — read
/// it right after the measured region so the region's allocations are
/// what it reflects.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_reported_on_linux() {
        assert!(peak_rss_bytes() > 0);
    }

    #[test]
    fn workload_is_reproducible() {
        let a = workload(50);
        let b = workload(50);
        assert_eq!(a.total_rows(), b.total_rows());
        assert_eq!(a.combined().xtuples(), b.combined().xtuples());
    }

    #[test]
    fn pipeline_smoke() {
        let ds = workload(30);
        let sources: Vec<&probdedup_model::relation::XRelation> = ds.relations.iter().collect();
        let result = experiment_pipeline(ReductionStrategy::Full, 2)
            .run(&sources)
            .expect("run");
        assert!(result.candidates > 0);
    }

    #[test]
    fn bounded_pipeline_matches_exact_classes_on_workload() {
        let ds = workload(40);
        let sources: Vec<&probdedup_model::relation::XRelation> = ds.relations.iter().collect();
        let exact = experiment_pipeline(ReductionStrategy::Full, 2)
            .run(&sources)
            .expect("exact run");
        for cache in [false, true] {
            let bounded = experiment_pipeline_bounded(ReductionStrategy::Full, 2, cache)
                .run(&sources)
                .expect("bounded run");
            assert_eq!(exact.decisions.len(), bounded.decisions.len());
            for (x, y) in exact.decisions.iter().zip(&bounded.decisions) {
                assert_eq!(x.pair, y.pair);
                assert_eq!(x.class, y.class, "cache {cache}, pair {:?}", x.pair);
            }
            assert_eq!(exact.clusters, bounded.clusters);
            let s = &bounded.stats;
            assert_eq!(
                s.pairs_early_match
                    + s.pairs_early_nonmatch
                    + s.pairs_early_possible
                    + s.pairs_exhausted,
                bounded.candidates as u64
            );
            // The typo-heavy workload is dominated by clear non-matches:
            // the whole point of the bounded path is that they settle
            // early.
            assert!(s.pairs_early_nonmatch > bounded.candidates as u64 / 2);
        }
    }
}
