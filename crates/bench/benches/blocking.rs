//! E1 (timing side): blocking adaptations over growing datasets.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use probdedup_bench::{experiment_key, workload};
use probdedup_reduction::{
    block_alternatives, block_conflict_resolved, block_multipass, cluster_blocking,
    ClusterBlockingConfig, ConflictResolution, WorldSelection,
};

fn blocking_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocking");
    group.sample_size(10);
    for entities in [250usize, 1000] {
        let ds = workload(entities);
        let combined = ds.combined();
        let tuples = combined.xtuples();
        let spec = experiment_key();
        group.bench_with_input(
            BenchmarkId::new("alternatives", entities),
            tuples,
            |b, tuples| b.iter(|| block_alternatives(black_box(tuples), &spec).pairs.len()),
        );
        group.bench_with_input(
            BenchmarkId::new("conflict-resolved", entities),
            tuples,
            |b, tuples| {
                b.iter(|| {
                    block_conflict_resolved(
                        black_box(tuples),
                        &spec,
                        ConflictResolution::MostProbableAlternative,
                    )
                    .pairs
                    .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("multipass-top3", entities),
            tuples,
            |b, tuples| {
                b.iter(|| {
                    block_multipass(black_box(tuples), &spec, WorldSelection::TopK(3))
                        .pairs
                        .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cluster-kmeans", entities),
            tuples,
            |b, tuples| {
                let cfg = ClusterBlockingConfig {
                    k: (tuples.len() / 8).max(2),
                    ..Default::default()
                };
                b.iter(|| cluster_blocking(black_box(tuples), &spec, &cfg).0.len())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, blocking_variants);
criterion_main!(benches);
