//! E6: throughput of the string-similarity kernels (the inner loop of
//! Eq. 5 — everything else multiplies its cost).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use probdedup_textsim::jaro::jaro_similarity_scalar;
use probdedup_textsim::{
    DamerauLevenshtein, Jaro, JaroWinkler, Lcs, Levenshtein, MongeElkan, NormalizedHamming,
    PatternBits, PreparedText, ProfileSimilarity, QGram, SoundexComparator, StringComparator,
    TokenJaccard,
};

fn kernel_throughput(c: &mut Criterion) {
    let pairs: Vec<(&str, &str)> = vec![
        ("Tim", "Kim"),
        ("machinist", "mechanic"),
        ("Johannes", "Johanes"),
        ("confectioner", "confectionist"),
        (
            "a longer string with several words",
            "another long string with words",
        ),
    ];
    let kernels: Vec<Box<dyn StringComparator>> = vec![
        Box::new(NormalizedHamming::new()),
        Box::new(Levenshtein::new()),
        Box::new(DamerauLevenshtein::new()),
        Box::new(Jaro::new()),
        Box::new(JaroWinkler::new()),
        Box::new(QGram::bigram(ProfileSimilarity::Dice)),
        Box::new(QGram::trigram(ProfileSimilarity::Jaccard)),
        Box::new(Lcs::new()),
        Box::new(SoundexComparator::strict()),
        Box::new(MongeElkan::jaro_winkler()),
        Box::new(TokenJaccard::new()),
    ];
    let mut group = c.benchmark_group("textsim");
    for k in &kernels {
        group.bench_with_input(BenchmarkId::from_parameter(k.name()), k, |b, k| {
            b.iter(|| {
                let mut acc = 0.0;
                for (x, y) in &pairs {
                    acc += k.similarity(black_box(x), black_box(y));
                }
                acc
            })
        });
    }
    group.finish();
}

/// Bit-parallel fast paths against their scalar oracles, on the input
/// classes where each tier engages: short ASCII (single-word Myers, small
/// Jaro scan), long ASCII (blocked Myers, Jaro position-mask table), and
/// the prepared variants that skip per-comparison setup entirely.
fn bitparallel_vs_scalar(c: &mut Criterion) {
    let short = ("machinist", "mechanic");
    let long_a: String = ('a'..='z').cycle().take(100).collect();
    let long_b: String = ('b'..='z').cycle().take(96).collect();
    let long = (long_a.as_str(), long_b.as_str());

    let mut group = c.benchmark_group("textsim-bitparallel");
    let lev = Levenshtein::new();
    let ham = NormalizedHamming::new();
    for (label, (a, b)) in [("short", short), ("long", long)] {
        group.bench_function(BenchmarkId::new("lev-myers", label), |bench| {
            bench.iter(|| lev.distance(black_box(a), black_box(b)))
        });
        group.bench_function(BenchmarkId::new("lev-scalar", label), |bench| {
            bench.iter(|| lev.distance_scalar(black_box(a), black_box(b)))
        });
        group.bench_function(BenchmarkId::new("hamming-bytes", label), |bench| {
            bench.iter(|| ham.distance(black_box(a), black_box(b)))
        });
        group.bench_function(BenchmarkId::new("hamming-scalar", label), |bench| {
            bench.iter(|| ham.distance_scalar(black_box(a), black_box(b)))
        });
        group.bench_function(BenchmarkId::new("jaro-bitset", label), |bench| {
            bench.iter(|| Jaro::new().similarity(black_box(a), black_box(b)))
        });
        group.bench_function(BenchmarkId::new("jaro-scalar", label), |bench| {
            bench.iter(|| jaro_similarity_scalar(black_box(a), black_box(b)))
        });
        // The interned miss path: Peq tables prebuilt once per string.
        let pa = PreparedText::new(a, true);
        let pb = PreparedText::new(b, true);
        group.bench_function(BenchmarkId::new("lev-prepared", label), |bench| {
            bench.iter(|| lev.similarity_prepared(black_box(&pa), black_box(&pb)))
        });
        group.bench_function(BenchmarkId::new("peq-build", label), |bench| {
            bench.iter(|| PatternBits::new(black_box(a)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, kernel_throughput, bitparallel_vs_scalar);
criterion_main!(benches);
