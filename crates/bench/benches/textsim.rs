//! E6: throughput of the string-similarity kernels (the inner loop of
//! Eq. 5 — everything else multiplies its cost).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use probdedup_textsim::{
    DamerauLevenshtein, Jaro, JaroWinkler, Lcs, Levenshtein, MongeElkan, NormalizedHamming,
    ProfileSimilarity, QGram, SoundexComparator, StringComparator, TokenJaccard,
};

fn kernel_throughput(c: &mut Criterion) {
    let pairs: Vec<(&str, &str)> = vec![
        ("Tim", "Kim"),
        ("machinist", "mechanic"),
        ("Johannes", "Johanes"),
        ("confectioner", "confectionist"),
        ("a longer string with several words", "another long string with words"),
    ];
    let kernels: Vec<Box<dyn StringComparator>> = vec![
        Box::new(NormalizedHamming::new()),
        Box::new(Levenshtein::new()),
        Box::new(DamerauLevenshtein::new()),
        Box::new(Jaro::new()),
        Box::new(JaroWinkler::new()),
        Box::new(QGram::bigram(ProfileSimilarity::Dice)),
        Box::new(QGram::trigram(ProfileSimilarity::Jaccard)),
        Box::new(Lcs::new()),
        Box::new(SoundexComparator::strict()),
        Box::new(MongeElkan::jaro_winkler()),
        Box::new(TokenJaccard::new()),
    ];
    let mut group = c.benchmark_group("textsim");
    for k in &kernels {
        group.bench_with_input(BenchmarkId::from_parameter(k.name()), k, |b, k| {
            b.iter(|| {
                let mut acc = 0.0;
                for (x, y) in &pairs {
                    acc += k.similarity(black_box(x), black_box(y));
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, kernel_throughput);
criterion_main!(benches);
