//! E4: cost of probabilistic attribute matching — Eq. 5 vs support size,
//! and the k×l comparison matrix vs alternative counts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use probdedup_matching::interned::{compare_xtuples_interned, intern_tuples, InternedComparators};
use probdedup_matching::matrix::compare_xtuples;
use probdedup_matching::pvalue_sim::{pvalue_similarity, pvalue_similarity_pruned};
use probdedup_matching::value_cmp::ValueComparator;
use probdedup_matching::vector::AttributeComparators;
use probdedup_model::pvalue::PValue;
use probdedup_model::schema::Schema;
use probdedup_model::xtuple::XTuple;
use probdedup_textsim::NormalizedHamming;

/// A categorical value with `n` string alternatives.
fn pvalue_with_support(n: usize, tag: char) -> PValue {
    let p = 0.95 / n as f64;
    PValue::categorical((0..n).map(|i| (format!("{tag}value{i:03}"), p))).expect("valid")
}

fn eq5_vs_support(c: &mut Criterion) {
    let cmp = ValueComparator::text(NormalizedHamming::new());
    let mut group = c.benchmark_group("eq5_support");
    for n in [1usize, 2, 4, 8, 16, 32] {
        let a = pvalue_with_support(n, 'a');
        let b = pvalue_with_support(n, 'b');
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| pvalue_similarity(black_box(&a), black_box(&b), &cmp))
        });
    }
    group.finish();
}

/// An x-tuple with `k` certain alternatives.
fn xtuple_with_alts(k: usize, tag: char) -> XTuple {
    let s = Schema::new(["name", "job"]);
    let mut b = XTuple::builder(&s);
    let p = 0.95 / k as f64;
    for i in 0..k {
        b = b.alt(p, [format!("{tag}name{i:02}"), format!("{tag}job{i:02}")]);
    }
    b.build().expect("valid")
}

fn matrix_vs_alternatives(c: &mut Criterion) {
    let s = Schema::new(["name", "job"]);
    let cmp = AttributeComparators::uniform(&s, NormalizedHamming::new());
    let mut group = c.benchmark_group("comparison_matrix");
    for k in [1usize, 2, 4, 8] {
        let t1 = xtuple_with_alts(k, 'x');
        let t2 = xtuple_with_alts(k, 'y');
        group.bench_with_input(BenchmarkId::new("kxk", k), &k, |bench, _| {
            bench.iter(|| compare_xtuples(black_box(&t1), black_box(&t2), &cmp))
        });
    }
    group.finish();
}

/// Eq. 5 with upper-bound pruning on skewed (geometric-tail) supports —
/// the regime where pruning skips most kernel evaluations.
fn eq5_pruned_vs_plain(c: &mut Criterion) {
    let cmp = ValueComparator::text(NormalizedHamming::new());
    // Steep geometric decay: beyond ~15 alternatives the remaining mass is
    // under the 1e-15 pruning bound, so the pruned path stops while the
    // plain path still evaluates every kernel pair.
    let skewed = |tag: char, n: i32| {
        PValue::categorical(
            (0..n).map(|i| (format!("{tag}value{i:03}"), 0.1_f64.powi(i + 1).max(1e-18))),
        )
        .expect("valid")
    };
    let mut group = c.benchmark_group("eq5_pruning");
    for n in [8i32, 16, 32] {
        let a = skewed('a', n);
        let b = skewed('b', n);
        group.bench_with_input(BenchmarkId::new("plain", n), &n, |bench, _| {
            bench.iter(|| pvalue_similarity(black_box(&a), black_box(&b), &cmp))
        });
        group.bench_with_input(BenchmarkId::new("pruned", n), &n, |bench, _| {
            bench.iter(|| pvalue_similarity_pruned(black_box(&a), black_box(&b), &cmp))
        });
    }
    group.finish();
}

/// The interned symbol path (warm sharded cache) against the plain path on
/// the same x-tuple pair — the per-comparison speedup the pipeline's
/// cached mode sees once the cache is hot.
fn matrix_interned_vs_plain(c: &mut Criterion) {
    let s = Schema::new(["name", "job"]);
    let cmp = AttributeComparators::uniform(&s, NormalizedHamming::new());
    let mut group = c.benchmark_group("comparison_matrix_interned");
    for k in [1usize, 2, 4, 8] {
        let t1 = xtuple_with_alts(k, 'x');
        let t2 = xtuple_with_alts(k, 'y');
        let (pool, interned) = intern_tuples(&[t1.clone(), t2.clone()]);
        let icmps = InternedComparators::new(&pool, &cmp);
        // Warm the caches so the steady state is measured.
        let _ = compare_xtuples_interned(&interned[0], &interned[1], &icmps);
        group.bench_with_input(BenchmarkId::new("plain", k), &k, |bench, _| {
            bench.iter(|| compare_xtuples(black_box(&t1), black_box(&t2), &cmp))
        });
        group.bench_with_input(BenchmarkId::new("interned", k), &k, |bench, _| {
            bench.iter(|| {
                compare_xtuples_interned(black_box(&interned[0]), black_box(&interned[1]), &icmps)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    eq5_vs_support,
    matrix_vs_alternatives,
    eq5_pruned_vs_plain,
    matrix_interned_vs_plain
);
criterion_main!(benches);
