//! E4: cost of probabilistic attribute matching — Eq. 5 vs support size,
//! and the k×l comparison matrix vs alternative counts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use probdedup_matching::matrix::compare_xtuples;
use probdedup_matching::pvalue_sim::pvalue_similarity;
use probdedup_matching::value_cmp::ValueComparator;
use probdedup_matching::vector::AttributeComparators;
use probdedup_model::pvalue::PValue;
use probdedup_model::schema::Schema;
use probdedup_model::xtuple::XTuple;
use probdedup_textsim::NormalizedHamming;

/// A categorical value with `n` string alternatives.
fn pvalue_with_support(n: usize, tag: char) -> PValue {
    let p = 0.95 / n as f64;
    PValue::categorical((0..n).map(|i| (format!("{tag}value{i:03}"), p))).expect("valid")
}

fn eq5_vs_support(c: &mut Criterion) {
    let cmp = ValueComparator::text(NormalizedHamming::new());
    let mut group = c.benchmark_group("eq5_support");
    for n in [1usize, 2, 4, 8, 16, 32] {
        let a = pvalue_with_support(n, 'a');
        let b = pvalue_with_support(n, 'b');
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| pvalue_similarity(black_box(&a), black_box(&b), &cmp))
        });
    }
    group.finish();
}

/// An x-tuple with `k` certain alternatives.
fn xtuple_with_alts(k: usize, tag: char) -> XTuple {
    let s = Schema::new(["name", "job"]);
    let mut b = XTuple::builder(&s);
    let p = 0.95 / k as f64;
    for i in 0..k {
        b = b.alt(p, [format!("{tag}name{i:02}"), format!("{tag}job{i:02}")]);
    }
    b.build().expect("valid")
}

fn matrix_vs_alternatives(c: &mut Criterion) {
    let s = Schema::new(["name", "job"]);
    let cmp = AttributeComparators::uniform(&s, NormalizedHamming::new());
    let mut group = c.benchmark_group("comparison_matrix");
    for k in [1usize, 2, 4, 8] {
        let t1 = xtuple_with_alts(k, 'x');
        let t2 = xtuple_with_alts(k, 'y');
        group.bench_with_input(BenchmarkId::new("kxk", k), &k, |bench, _| {
            bench.iter(|| compare_xtuples(black_box(&t1), black_box(&t2), &cmp))
        });
    }
    group.finish();
}

criterion_group!(benches, eq5_vs_support, matrix_vs_alternatives);
criterion_main!(benches);
