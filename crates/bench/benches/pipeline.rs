//! End-to-end pipeline throughput: full scan vs reduced, single- vs
//! multi-threaded matching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use probdedup_bench::{experiment_key, experiment_pipeline, workload};
use probdedup_core::pipeline::ReductionStrategy;
use probdedup_reduction::RankingFunction;

fn pipeline_end_to_end(c: &mut Criterion) {
    let ds = workload(300);
    let sources: Vec<&probdedup_model::relation::XRelation> = ds.relations.iter().collect();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for (name, reduction) in [
        ("full", ReductionStrategy::Full),
        (
            "ranked-snm",
            ReductionStrategy::RankedKeys {
                spec: experiment_key(),
                window: 6,
                ranking: RankingFunction::ExpectedScore,
            },
        ),
        (
            "blocking-alternatives",
            ReductionStrategy::BlockingAlternatives {
                spec: experiment_key(),
            },
        ),
    ] {
        for threads in [1usize, 4] {
            let pipeline = experiment_pipeline(reduction.clone(), threads);
            group.bench_with_input(
                BenchmarkId::new(name, format!("{threads}t")),
                &pipeline,
                |b, pipeline| b.iter(|| pipeline.run(&sources).unwrap().decisions.len()),
            );
        }
    }
    // Similarity-cache ablation on the full scan (the cache-friendliest
    // workload: every tuple pair re-compares the same value strings).
    for cached in [false, true] {
        let pipeline =
            probdedup_bench::experiment_pipeline_cached(ReductionStrategy::Full, 4, cached);
        group.bench_with_input(
            BenchmarkId::new("full-4t-cache", cached),
            &pipeline,
            |b, pipeline| b.iter(|| pipeline.run(&sources).unwrap().decisions.len()),
        );
    }
    group.finish();
}

criterion_group!(benches, pipeline_end_to_end);
criterion_main!(benches);
