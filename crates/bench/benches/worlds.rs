//! E3 (timing side): possible-world machinery — enumeration, top-k
//! selection, and conditioning.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use probdedup_model::schema::Schema;
use probdedup_model::world::{enumerate_worlds, top_k_worlds, world_count};
use probdedup_model::xtuple::XTuple;

fn tuples_with_alternatives(n_tuples: usize, alts: usize) -> Vec<XTuple> {
    let s = Schema::new(["name", "job"]);
    (0..n_tuples)
        .map(|t| {
            let mut b = XTuple::builder(&s);
            let p = 0.95 / alts as f64;
            for a in 0..alts {
                b = b.alt(p, [format!("n{t}a{a}"), format!("j{t}a{a}")]);
            }
            b.build().expect("valid")
        })
        .collect()
}

fn enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("world_enumeration");
    for (n, alts) in [(4usize, 2usize), (6, 2), (4, 3), (8, 2)] {
        let ts = tuples_with_alternatives(n, alts);
        let count = world_count(&ts);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}tuples_{alts}alts_{count}worlds")),
            &ts,
            |bench, ts| bench.iter(|| enumerate_worlds(black_box(ts), u128::MAX).unwrap().len()),
        );
    }
    group.finish();
}

fn top_k(c: &mut Criterion) {
    // Top-k must beat full enumeration on large spaces: 12 tuples × 3
    // alternatives ≈ 5.3 × 10⁵ full worlds, but top-8 touches only a
    // frontier.
    let ts = tuples_with_alternatives(12, 3);
    let mut group = c.benchmark_group("world_top_k");
    for k in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, &k| {
            bench.iter(|| top_k_worlds(black_box(&ts), k, true).len())
        });
    }
    group.finish();
}

criterion_group!(benches, enumeration, top_k);
criterion_main!(benches);
