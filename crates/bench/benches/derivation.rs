//! E2 (timing side): similarity-based vs decision-based derivation cost
//! per x-tuple pair, as the alternative counts grow.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use probdedup_decision::combine::WeightedSum;
use probdedup_decision::derive_decision::{ExpectedMatchingResult, MatchingWeightDerivation};
use probdedup_decision::derive_sim::ExpectedSimilarity;
use probdedup_decision::threshold::Thresholds;
use probdedup_decision::xmodel::{DecisionBasedModel, SimilarityBasedModel, XTupleDecisionModel};
use probdedup_matching::matrix::compare_xtuples;
use probdedup_matching::vector::AttributeComparators;
use probdedup_model::schema::Schema;
use probdedup_model::xtuple::XTuple;
use probdedup_textsim::NormalizedHamming;

fn xtuple_with_alts(k: usize, tag: char) -> XTuple {
    let s = Schema::new(["name", "job"]);
    let mut b = XTuple::builder(&s);
    let p = 0.95 / k as f64;
    for i in 0..k {
        b = b.alt(p, [format!("{tag}name{i:02}"), format!("{tag}job{i:02}")]);
    }
    b.build().expect("valid")
}

fn derivations(c: &mut Criterion) {
    let s = Schema::new(["name", "job"]);
    let cmp = AttributeComparators::uniform(&s, NormalizedHamming::new());
    let phi = Arc::new(WeightedSum::new([0.8, 0.2]).unwrap());
    let models: Vec<(&str, Arc<dyn XTupleDecisionModel>)> = vec![
        (
            "similarity-based",
            Arc::new(SimilarityBasedModel::new(
                phi.clone(),
                Arc::new(ExpectedSimilarity),
                Thresholds::new(0.4, 0.7).unwrap(),
            )),
        ),
        (
            "decision-weight",
            Arc::new(DecisionBasedModel::new(
                phi.clone(),
                Thresholds::new(0.4, 0.7).unwrap(),
                Arc::new(MatchingWeightDerivation::with_cap(1e9)),
                Thresholds::new(0.5, 2.0).unwrap(),
            )),
        ),
        (
            "decision-expected-eta",
            Arc::new(DecisionBasedModel::new(
                phi,
                Thresholds::new(0.4, 0.7).unwrap(),
                Arc::new(ExpectedMatchingResult::new()),
                Thresholds::new(0.9, 1.7).unwrap(),
            )),
        ),
    ];
    let mut group = c.benchmark_group("derivation");
    for k in [2usize, 4, 8] {
        let t1 = xtuple_with_alts(k, 'x');
        let t2 = xtuple_with_alts(k, 'y');
        let matrix = compare_xtuples(&t1, &t2, &cmp);
        for (name, model) in &models {
            group.bench_with_input(
                BenchmarkId::new(*name, format!("{k}x{k}")),
                model,
                |bench, model| {
                    bench.iter(|| model.decide(black_box(&t1), black_box(&t2), black_box(&matrix)))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, derivations);
criterion_main!(benches);
