//! E1 (timing side): the four SNM adaptations over growing datasets.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use probdedup_bench::{experiment_key, workload};
use probdedup_reduction::{
    conflict_resolved_snm, multipass_snm, ranked_snm, sorting_alternatives, ConflictResolution,
    RankingFunction, WorldSelection,
};

fn snm_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("snm");
    group.sample_size(10);
    for entities in [250usize, 1000] {
        let ds = workload(entities);
        let combined = ds.combined();
        let tuples = combined.xtuples();
        let spec = experiment_key();
        group.bench_with_input(
            BenchmarkId::new("multipass-top3", entities),
            tuples,
            |b, tuples| {
                b.iter(|| {
                    multipass_snm(black_box(tuples), &spec, 6, WorldSelection::TopK(3))
                        .pairs
                        .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("multipass-diverse3", entities),
            tuples,
            |b, tuples| {
                b.iter(|| {
                    multipass_snm(
                        black_box(tuples),
                        &spec,
                        6,
                        WorldSelection::DiverseTopK { k: 3, pool: 16 },
                    )
                    .pairs
                    .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("conflict-resolved", entities),
            tuples,
            |b, tuples| {
                b.iter(|| {
                    conflict_resolved_snm(
                        black_box(tuples),
                        &spec,
                        6,
                        ConflictResolution::MostProbableAlternative,
                    )
                    .0
                    .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sorting-alternatives", entities),
            tuples,
            |b, tuples| {
                b.iter(|| {
                    sorting_alternatives(black_box(tuples), &spec, 6)
                        .pairs
                        .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ranked-expected-score", entities),
            tuples,
            |b, tuples| {
                b.iter(|| {
                    ranked_snm(black_box(tuples), &spec, 6, RankingFunction::ExpectedScore)
                        .0
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, snm_variants);
criterion_main!(benches);
