//! E5 (timing side): EM estimation cost vs number of patterns.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use probdedup_decision::em::{fit_em, EmConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_patterns(n: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (m, u) = ([0.95, 0.9, 0.85, 0.8], [0.05, 0.1, 0.15, 0.2]);
    (0..n)
        .map(|_| {
            let is_match = rng.random::<f64>() < 0.15;
            let params = if is_match { &m } else { &u };
            params.iter().map(|&q| rng.random::<f64>() < q).collect()
        })
        .collect()
}

fn em_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("em_fit");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 100_000] {
        let patterns = sample_patterns(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &patterns, |b, p| {
            b.iter(|| {
                fit_em(black_box(p), &EmConfig::default())
                    .unwrap()
                    .iterations
            })
        });
    }
    group.finish();
}

criterion_group!(benches, em_fit);
criterion_main!(benches);
