//! Property tests for the synthetic generator: structural validity of all
//! generated data under arbitrary configurations.

use proptest::prelude::*;

use probdedup_datagen::{generate, CorruptionConfig, DatasetConfig, Dictionaries};
use probdedup_model::stats::RelationStats;

fn arb_config() -> impl Strategy<Value = DatasetConfig> {
    (
        5usize..60,
        1usize..4,
        0.0f64..=1.0,
        0.0f64..=0.5,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
        any::<u64>(),
    )
        .prop_map(
            |(entities, sources, presence, extra, typo, uncertainty, xtuple, seed)| DatasetConfig {
                entities,
                sources,
                presence_rate: presence,
                extra_copy_rate: extra,
                typo_rate: typo,
                missing_rate: 0.1,
                uncertainty_rate: uncertainty,
                truth_in_support_rate: 0.9,
                xtuple_rate: xtuple,
                maybe_rate: 0.25,
                corruption: CorruptionConfig::default(),
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated dataset is structurally valid: model invariants hold
    /// (they are enforced by constructors, so generation succeeding is the
    /// assertion), truth covers all rows, every entity is represented.
    #[test]
    fn generated_data_is_valid(cfg in arb_config()) {
        let ds = generate(&Dictionaries::people(), &cfg);
        prop_assert_eq!(ds.truth.len(), ds.total_rows());
        prop_assert_eq!(ds.truth.entity_count(), cfg.entities);
        prop_assert_eq!(ds.relations.len(), cfg.sources);
        // Every x-tuple respects the mass invariants (probability ≤ 1,
        // alternatives non-empty) — revalidated via stats traversal.
        let stats = RelationStats::for_xrelation(&ds.combined());
        prop_assert_eq!(stats.tuples, ds.total_rows());
        prop_assert!(stats.alternatives >= stats.tuples);
        for r in &ds.relations {
            for t in r.xtuples() {
                prop_assert!(t.probability() <= 1.0 + 1e-9);
                prop_assert!(!t.alternatives().is_empty());
            }
        }
    }

    /// Determinism: the same config yields the same dataset; different
    /// seeds yield different data (given enough entities).
    #[test]
    fn determinism(cfg in arb_config()) {
        let a = generate(&Dictionaries::people(), &cfg);
        let b = generate(&Dictionaries::people(), &cfg);
        let (ca, cb) = (a.combined(), b.combined());
        prop_assert_eq!(ca.xtuples(), cb.xtuples());
    }

    /// With certainty knobs at zero, data is fully certain.
    #[test]
    fn zero_uncertainty_is_certain(mut cfg in arb_config()) {
        cfg.uncertainty_rate = 0.0;
        cfg.xtuple_rate = 0.0;
        cfg.maybe_rate = 0.0;
        cfg.missing_rate = 0.0;
        let ds = generate(&Dictionaries::people(), &cfg);
        let stats = RelationStats::for_xrelation(&ds.combined());
        prop_assert_eq!(stats.uncertain_values, 0);
        prop_assert_eq!(stats.maybe_tuples, 0);
        prop_assert_eq!(stats.max_alternatives, 1);
    }

    /// True duplicate pairs grow with the presence rate (statistically;
    /// tested at the extremes to avoid flakiness).
    #[test]
    fn presence_extremes(mut cfg in arb_config()) {
        prop_assume!(cfg.sources >= 2);
        cfg.extra_copy_rate = 0.0;
        cfg.presence_rate = 0.0; // every entity forced into exactly one source
        let lonely = generate(&Dictionaries::people(), &cfg);
        prop_assert_eq!(lonely.truth.true_pair_count(), 0);
        cfg.presence_rate = 1.0; // every entity in every source
        let crowded = generate(&Dictionaries::people(), &cfg);
        prop_assert!(crowded.truth.true_pair_count() >= cfg.entities);
    }
}
