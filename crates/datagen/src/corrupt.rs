//! The error model: typographic and OCR-style corruption of string values.
//!
//! Section III of the paper lists the dirt duplicate detection must
//! tolerate: "missing data, typos, data obsolescence or misspellings".
//! [`Corruptor`] injects exactly these, with keyboard-adjacent
//! substitutions and OCR confusions so the errors look like real ones
//! (edit distance 1–2 from the truth, mostly).

use rand::rngs::StdRng;
use rand::Rng;

/// Corruption intensity knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionConfig {
    /// Expected number of typo operations applied to a corrupted string.
    pub typo_ops: f64,
    /// Probability that a corruption uses an OCR confusion table instead of
    /// a keyboard-adjacent substitution.
    pub ocr_rate: f64,
    /// Probability of truncating the string (dropping a suffix), modelling
    /// abbreviations ("Timothy" → "Tim").
    pub truncate_rate: f64,
}

impl Default for CorruptionConfig {
    fn default() -> Self {
        Self {
            typo_ops: 1.3,
            ocr_rate: 0.2,
            truncate_rate: 0.1,
        }
    }
}

/// A seeded string corruptor.
#[derive(Debug, Clone)]
pub struct Corruptor {
    config: CorruptionConfig,
}

/// Keyboard neighbourhoods (QWERTY, lowercase).
fn keyboard_neighbors(c: char) -> &'static str {
    match c.to_ascii_lowercase() {
        'q' => "wa",
        'w' => "qes",
        'e' => "wrd",
        'r' => "etf",
        't' => "ryg",
        'y' => "tuh",
        'u' => "yij",
        'i' => "uok",
        'o' => "ipl",
        'p' => "ol",
        'a' => "qsz",
        's' => "awdx",
        'd' => "sefc",
        'f' => "drgv",
        'g' => "fthb",
        'h' => "gyjn",
        'j' => "hukm",
        'k' => "jil",
        'l' => "kop",
        'z' => "asx",
        'x' => "zsdc",
        'c' => "xdfv",
        'v' => "cfgb",
        'b' => "vghn",
        'n' => "bhjm",
        'm' => "njk",
        _ => "aeiou",
    }
}

/// OCR confusion pairs (visually similar glyphs).
fn ocr_confusion(c: char) -> Option<char> {
    Some(match c {
        'o' => '0',
        '0' => 'o',
        'l' => '1',
        '1' => 'l',
        'i' => 'l',
        's' => '5',
        '5' => 's',
        'b' => '6',
        'g' => '9',
        'e' => 'c',
        'c' => 'e',
        'u' => 'v',
        'v' => 'u',
        'm' => 'n',
        'n' => 'm',
        _ => return None,
    })
}

impl Corruptor {
    /// A corruptor with the given intensity.
    pub fn new(config: CorruptionConfig) -> Self {
        Self { config }
    }

    /// Apply one random typo operation.
    fn typo_once(&self, s: &str, rng: &mut StdRng) -> String {
        let chars: Vec<char> = s.chars().collect();
        if chars.is_empty() {
            return "x".to_string();
        }
        let mut out = chars.clone();
        match rng.random_range(0..4u8) {
            // substitution (keyboard-adjacent or OCR)
            0 => {
                let i = rng.random_range(0..out.len());
                let c = out[i];
                let replacement = if rng.random::<f64>() < self.config.ocr_rate {
                    ocr_confusion(c)
                } else {
                    None
                };
                out[i] = replacement.unwrap_or_else(|| {
                    let pool = keyboard_neighbors(c);
                    let pick = pool
                        .chars()
                        .nth(rng.random_range(0..pool.chars().count()))
                        .expect("non-empty pool");
                    if c.is_uppercase() {
                        pick.to_ascii_uppercase()
                    } else {
                        pick
                    }
                });
            }
            // insertion
            1 => {
                let i = rng.random_range(0..=out.len());
                let base = out[i.min(out.len() - 1)];
                let pool = keyboard_neighbors(base);
                let pick = pool
                    .chars()
                    .nth(rng.random_range(0..pool.chars().count()))
                    .expect("non-empty pool");
                out.insert(i, pick);
            }
            // deletion
            2 => {
                if out.len() > 1 {
                    let i = rng.random_range(0..out.len());
                    out.remove(i);
                }
            }
            // adjacent transposition
            _ => {
                if out.len() > 1 {
                    let i = rng.random_range(0..out.len() - 1);
                    out.swap(i, i + 1);
                }
            }
        }
        out.into_iter().collect()
    }

    /// Corrupt `s`: possibly truncate, then apply a geometric number of
    /// typo operations (at least one, so the output differs from the input
    /// with high probability).
    pub fn corrupt(&self, s: &str, rng: &mut StdRng) -> String {
        let mut out = s.to_string();
        if rng.random::<f64>() < self.config.truncate_rate {
            let len = out.chars().count();
            if len > 3 {
                let keep = rng.random_range(3..len);
                out = out.chars().take(keep).collect();
            }
        }
        let mut ops = 1;
        while rng.random::<f64>()
            < (self.config.typo_ops - 1.0).clamp(0.0, 0.95) / self.config.typo_ops.max(1.0)
        {
            ops += 1;
            if ops >= 4 {
                break;
            }
        }
        for _ in 0..ops {
            out = self.typo_once(&out, rng);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn corruption_changes_strings_mostly() {
        let c = Corruptor::new(CorruptionConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut changed = 0;
        for _ in 0..200 {
            if c.corrupt("machinist", &mut rng) != "machinist" {
                changed += 1;
            }
        }
        assert!(changed > 180, "only {changed}/200 corrupted");
    }

    #[test]
    fn corruption_stays_near_the_original() {
        let c = Corruptor::new(CorruptionConfig {
            typo_ops: 1.0,
            ocr_rate: 0.0,
            truncate_rate: 0.0,
        });
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let out = c.corrupt("confectioner", &mut rng);
            let dist = levenshtein(&out, "confectioner");
            assert!(dist <= 2, "{out} too far (d = {dist})");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let c = Corruptor::new(CorruptionConfig::default());
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            assert_eq!(
                c.corrupt("Johannes", &mut r1),
                c.corrupt("Johannes", &mut r2)
            );
        }
    }

    #[test]
    fn empty_and_short_inputs_survive() {
        let c = Corruptor::new(CorruptionConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let out = c.corrupt("", &mut rng);
            assert!(!out.is_empty() || out.is_empty()); // must not panic
            let out = c.corrupt("a", &mut rng);
            assert!(!out.is_empty());
        }
    }

    /// Plain Levenshtein for the distance assertion (kept local to avoid a
    /// dev-dependency cycle with textsim).
    fn levenshtein(a: &str, b: &str) -> usize {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        let mut prev: Vec<usize> = (0..=bv.len()).collect();
        let mut curr = vec![0; bv.len() + 1];
        for (i, ca) in av.iter().enumerate() {
            curr[0] = i + 1;
            for (j, cb) in bv.iter().enumerate() {
                let cost = usize::from(ca != cb);
                curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[bv.len()]
    }
}
