//! The dataset generator: entities → dirty, uncertain x-relations +
//! ground truth.

use probdedup_model::pvalue::PValue;
use probdedup_model::relation::XRelation;
use probdedup_model::schema::{AttrType, Schema};
use probdedup_model::value::Value;
use probdedup_model::xtuple::XTuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::corrupt::{CorruptionConfig, Corruptor};
use crate::dict::Dictionaries;
use crate::truth::GroundTruth;

/// Generator configuration. All rates are probabilities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Number of ground-truth entities.
    pub entities: usize,
    /// Number of source relations (≥ 1).
    pub sources: usize,
    /// Probability that an entity is present in a given source.
    pub presence_rate: f64,
    /// Probability of an additional copy within the same source
    /// (intra-source duplicates; applied repeatedly, geometric).
    pub extra_copy_rate: f64,
    /// Probability that an attribute value of a duplicate record is
    /// corrupted (typos/OCR/truncation).
    pub typo_rate: f64,
    /// Probability that the job/city of a record is missing (⊥).
    pub missing_rate: f64,
    /// Probability that an attribute value becomes an uncertain
    /// distribution instead of a certain value.
    pub uncertainty_rate: f64,
    /// Given an uncertain value, probability that the *true* value is in
    /// its support (otherwise only corrupted variants are).
    pub truth_in_support_rate: f64,
    /// Probability that a record becomes a multi-alternative x-tuple.
    pub xtuple_rate: f64,
    /// Probability that a record is a maybe tuple (`p(t) < 1`).
    pub maybe_rate: f64,
    /// String corruption intensity.
    pub corruption: CorruptionConfig,
    /// RNG seed: identical configs ⇒ identical datasets.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            entities: 500,
            sources: 2,
            presence_rate: 0.8,
            extra_copy_rate: 0.15,
            typo_rate: 0.3,
            missing_rate: 0.05,
            uncertainty_rate: 0.4,
            truth_in_support_rate: 0.9,
            xtuple_rate: 0.3,
            maybe_rate: 0.2,
            corruption: CorruptionConfig::default(),
            seed: 42,
        }
    }
}

/// A generated dataset: the per-source x-relations, plus ground truth over
/// the combined (concatenated) row space.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// One x-relation per source.
    pub relations: Vec<XRelation>,
    /// Ground truth over the combined rows (sources concatenated in order).
    pub truth: GroundTruth,
    /// The schema shared by all sources.
    pub schema: Schema,
}

impl SyntheticDataset {
    /// Concatenate all sources into one x-relation (row order matches the
    /// ground truth).
    pub fn combined(&self) -> XRelation {
        let mut out = XRelation::new(self.schema.clone());
        for r in &self.relations {
            for t in r.xtuples() {
                out.push(t.clone());
            }
        }
        out
    }

    /// Total rows across sources.
    pub fn total_rows(&self) -> usize {
        self.relations.iter().map(XRelation::len).sum()
    }
}

/// The ground-truth record of one entity.
#[derive(Debug, Clone)]
struct Entity {
    name: String,
    job: String,
    city: String,
    age: i64,
}

fn sample_entity(dict: &Dictionaries, rng: &mut StdRng) -> Entity {
    Entity {
        name: dict.names[rng.random_range(0..dict.names.len())].clone(),
        job: dict.jobs[rng.random_range(0..dict.jobs.len())].clone(),
        city: dict.cities[rng.random_range(0..dict.cities.len())].clone(),
        age: rng.random_range(18..90),
    }
}

/// The schema of generated datasets: `(name, job, city, age)`.
pub fn dataset_schema() -> Schema {
    Schema::with_types([
        ("name", AttrType::Text),
        ("job", AttrType::Text),
        ("city", AttrType::Text),
        ("age", AttrType::Int),
    ])
}

/// Build one (possibly uncertain) string attribute value.
fn string_value(
    truth: &str,
    cfg: &DatasetConfig,
    corruptor: &Corruptor,
    can_be_missing: bool,
    rng: &mut StdRng,
) -> PValue {
    if can_be_missing && rng.random::<f64>() < cfg.missing_rate {
        return PValue::null();
    }
    // The value the source observed (possibly corrupted).
    let observed = if rng.random::<f64>() < cfg.typo_rate {
        corruptor.corrupt(truth, rng)
    } else {
        truth.to_string()
    };
    if rng.random::<f64>() >= cfg.uncertainty_rate {
        return PValue::certain(observed);
    }
    // Uncertain value: 2–3 alternatives with random weights; total mass may
    // stay below 1 (residual = "something else entirely", i.e. ⊥-leaning
    // extraction confidence).
    let n_alts = rng.random_range(2..=3usize);
    let include_truth = rng.random::<f64>() < cfg.truth_in_support_rate;
    let mut support: Vec<String> = Vec::with_capacity(n_alts);
    if include_truth {
        support.push(truth.to_string());
    }
    if !support.contains(&observed) {
        support.push(observed.clone());
    }
    while support.len() < n_alts {
        let variant = corruptor.corrupt(truth, rng);
        if !support.contains(&variant) {
            support.push(variant);
        } else {
            break; // corruption collided; accept a smaller support
        }
    }
    let total_mass = 0.85 + rng.random::<f64>() * 0.15; // in [0.85, 1)
    let mut weights: Vec<f64> = (0..support.len())
        .map(|_| rng.random::<f64>() + 0.2)
        .collect();
    let wsum: f64 = weights.iter().sum();
    for w in &mut weights {
        *w = *w / wsum * total_mass;
    }
    PValue::categorical(support.into_iter().zip(weights))
        .expect("generated mass ≤ 1 by construction")
}

/// Build one record (x-tuple) describing `entity`.
fn record_for(
    entity: &Entity,
    cfg: &DatasetConfig,
    corruptor: &Corruptor,
    rng: &mut StdRng,
) -> XTuple {
    let schema = dataset_schema();
    let make_row = |rng: &mut StdRng| -> Vec<PValue> {
        vec![
            string_value(&entity.name, cfg, corruptor, false, rng),
            string_value(&entity.job, cfg, corruptor, true, rng),
            string_value(&entity.city, cfg, corruptor, true, rng),
            // Ages drift by ±1 occasionally (obsolescence).
            PValue::certain(Value::Int(
                entity.age + i64::from(rng.random::<f64>() < 0.1) * rng.random_range(-1..=1),
            )),
        ]
    };
    let membership = if rng.random::<f64>() < cfg.maybe_rate {
        0.5 + rng.random::<f64>() * 0.45
    } else {
        1.0
    };
    if rng.random::<f64>() < cfg.xtuple_rate {
        // Correlated row variants as alternatives.
        let k = rng.random_range(2..=3usize);
        let mut weights: Vec<f64> = (0..k).map(|_| rng.random::<f64>() + 0.2).collect();
        let wsum: f64 = weights.iter().sum();
        let mut b = XTuple::builder(&schema);
        for w in weights.iter_mut() {
            *w = *w / wsum * membership;
        }
        for &w in &weights {
            b = b.alt_pvalues(w, make_row(rng));
        }
        b.build().expect("valid generated x-tuple")
    } else {
        XTuple::builder(&schema)
            .alt_pvalues(membership, make_row(rng))
            .build()
            .expect("valid generated tuple")
    }
}

/// Generate a dataset from dictionaries and a configuration.
pub fn generate(dict: &Dictionaries, cfg: &DatasetConfig) -> SyntheticDataset {
    assert!(cfg.sources >= 1, "need at least one source");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let corruptor = Corruptor::new(cfg.corruption);
    let schema = dataset_schema();
    let entities: Vec<Entity> = (0..cfg.entities)
        .map(|_| sample_entity(dict, &mut rng))
        .collect();

    let mut relations: Vec<XRelation> = (0..cfg.sources)
        .map(|_| XRelation::new(schema.clone()))
        .collect();
    // (source, entity) emission plan, then ground truth in combined order.
    let mut entity_of_rows: Vec<Vec<u64>> = vec![Vec::new(); cfg.sources];
    for (eid, entity) in entities.iter().enumerate() {
        let mut anywhere = false;
        for s in 0..cfg.sources {
            if rng.random::<f64>() < cfg.presence_rate {
                anywhere = true;
                relations[s].push(record_for(entity, cfg, &corruptor, &mut rng));
                entity_of_rows[s].push(eid as u64);
                while rng.random::<f64>() < cfg.extra_copy_rate {
                    relations[s].push(record_for(entity, cfg, &corruptor, &mut rng));
                    entity_of_rows[s].push(eid as u64);
                }
            }
        }
        if !anywhere {
            // Guarantee every entity appears at least once (in a random
            // source) so entity counts are exact.
            let s = rng.random_range(0..cfg.sources);
            relations[s].push(record_for(entity, cfg, &corruptor, &mut rng));
            entity_of_rows[s].push(eid as u64);
        }
    }
    let truth = GroundTruth::new(entity_of_rows.concat());
    SyntheticDataset {
        relations,
        truth,
        schema,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DatasetConfig {
        DatasetConfig {
            entities: 60,
            sources: 2,
            seed: 7,
            ..DatasetConfig::default()
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let d = Dictionaries::people();
        let a = generate(&d, &small_cfg());
        let b = generate(&d, &small_cfg());
        assert_eq!(a.total_rows(), b.total_rows());
        for (ra, rb) in a.relations.iter().zip(&b.relations) {
            assert_eq!(ra.xtuples(), rb.xtuples());
        }
        let c = generate(
            &d,
            &DatasetConfig {
                seed: 8,
                ..small_cfg()
            },
        );
        assert_ne!(a.combined().xtuples(), c.combined().xtuples());
    }

    #[test]
    fn truth_covers_all_rows_and_entities() {
        let d = Dictionaries::people();
        let ds = generate(&d, &small_cfg());
        assert_eq!(ds.truth.len(), ds.total_rows());
        assert_eq!(ds.truth.entity_count(), 60);
        // With presence 0.8 on 2 sources, duplicates must exist.
        assert!(ds.truth.true_pair_count() > 0);
    }

    #[test]
    fn combined_preserves_row_order() {
        let d = Dictionaries::people();
        let ds = generate(&d, &small_cfg());
        let combined = ds.combined();
        assert_eq!(combined.len(), ds.total_rows());
        // First rows of combined are source 0's rows.
        assert_eq!(
            combined.xtuples()[..ds.relations[0].len()],
            *ds.relations[0].xtuples()
        );
    }

    #[test]
    fn uncertainty_knobs_have_effect() {
        let d = Dictionaries::people();
        let certain = generate(
            &d,
            &DatasetConfig {
                uncertainty_rate: 0.0,
                xtuple_rate: 0.0,
                maybe_rate: 0.0,
                missing_rate: 0.0,
                ..small_cfg()
            },
        );
        for t in certain.combined().xtuples() {
            assert_eq!(t.len(), 1);
            assert!(!t.is_maybe());
        }
        let uncertain = generate(
            &d,
            &DatasetConfig {
                uncertainty_rate: 1.0,
                xtuple_rate: 1.0,
                maybe_rate: 1.0,
                ..small_cfg()
            },
        );
        let stats = probdedup_model::stats::RelationStats::for_xrelation(&uncertain.combined());
        assert!(stats.maybe_tuples > 0);
        assert!(stats.uncertain_values > 0);
        assert!(stats.max_alternatives >= 2);
    }

    #[test]
    fn zero_duplicate_config() {
        let d = Dictionaries::people();
        let ds = generate(
            &d,
            &DatasetConfig {
                entities: 40,
                sources: 1,
                presence_rate: 1.0,
                extra_copy_rate: 0.0,
                ..small_cfg()
            },
        );
        assert_eq!(ds.total_rows(), 40);
        assert_eq!(ds.truth.true_pair_count(), 0);
    }

    #[test]
    fn schema_is_four_attributes() {
        let s = dataset_schema();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.index_of("age"), Some(3));
        assert_eq!(s.type_of(3), AttrType::Int);
    }
}
