//! Value dictionaries for entity sampling.
//!
//! The default dictionaries describe people (first names, occupations,
//! cities) — the domain of the paper's examples. Custom dictionaries turn
//! the same generator into other domains (the astronomy example builds a
//! star-catalog dictionary, mirroring the paper's motivating scenario of
//! unifying data from different space telescopes).

/// The value pools the generator samples entities from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dictionaries {
    /// Person (or object) names.
    pub names: Vec<String>,
    /// Occupations (or classes).
    pub jobs: Vec<String>,
    /// Cities (or regions).
    pub cities: Vec<String>,
}

impl Dictionaries {
    /// Build from string slices.
    pub fn new<S: AsRef<str>>(names: &[S], jobs: &[S], cities: &[S]) -> Self {
        let collect = |xs: &[S]| xs.iter().map(|s| s.as_ref().to_string()).collect();
        Self {
            names: collect(names),
            jobs: collect(jobs),
            cities: collect(cities),
        }
    }

    /// The default people dictionaries (names/occupations/cities).
    pub fn people() -> Self {
        Self::new(&FIRST_NAMES, &OCCUPATIONS, &CITIES)
    }
}

/// First names: a mix of similar clusters (Tim/Tom/Jim/Kim, John/Johan/Jon)
/// so that realistic near-duplicates occur, as in the paper's figures.
pub const FIRST_NAMES: [&str; 96] = [
    "Tim", "Tom", "Jim", "Kim", "Timothy", "Thomas", "James", "Jimmy", "John", "Johan", "Jon",
    "Johannes", "Jonathan", "Johnny", "Jan", "Sean", "Shaun", "Shane", "Ian", "Juan", "Maurice",
    "Morris", "Maureen", "Mauro", "Fabian", "Fabio", "Fabrice", "Norbert", "Robert", "Rupert",
    "Roberta", "Albert", "Alberta", "Gilbert", "Herbert", "Hubert", "Ander", "Anders", "Andre",
    "Andrea", "Andreas", "Andrew", "Anna", "Anne", "Hanna", "Hannah", "Johanna", "Joanna", "Joan",
    "Jane", "Janet", "Janine", "Nina", "Tina", "Gina", "Lina", "Mina", "Maria", "Marie", "Mario",
    "Marion", "Marian", "Martin", "Martina", "Marta", "Martha", "Matthew", "Matthias", "Mathias",
    "Mia", "Lea", "Leah", "Lena", "Elena", "Helena", "Helene", "Peter", "Petra", "Paul", "Paula",
    "Pablo", "Carl", "Karl", "Carla", "Karla", "Clara", "Klara", "Laura", "Lara", "Sara", "Sarah",
    "Zara", "Eric", "Erik", "Erika", "Erica",
];

/// Occupations, again with confusable clusters (machinist/mechanic/
/// mechanist, baker/banker, confectioner/confectionist).
pub const OCCUPATIONS: [&str; 72] = [
    "machinist",
    "mechanic",
    "mechanist",
    "engineer",
    "engraver",
    "baker",
    "banker",
    "barber",
    "butcher",
    "confectioner",
    "confectionist",
    "pilot",
    "pianist",
    "painter",
    "printer",
    "plumber",
    "carpenter",
    "cartographer",
    "musician",
    "museum guide",
    "mustard maker",
    "teacher",
    "preacher",
    "researcher",
    "astronomer",
    "astrologer",
    "gastronomer",
    "nurse",
    "doctor",
    "docker",
    "driver",
    "diver",
    "designer",
    "miner",
    "milner",
    "miller",
    "tailor",
    "sailor",
    "jailor",
    "farmer",
    "framer",
    "firefighter",
    "lighthouse keeper",
    "bookkeeper",
    "beekeeper",
    "librarian",
    "veterinarian",
    "electrician",
    "optician",
    "physician",
    "physicist",
    "chemist",
    "cellist",
    "violinist",
    "machine operator",
    "crane operator",
    "radio operator",
    "welder",
    "wielder",
    "winemaker",
    "watchmaker",
    "matchmaker",
    "shoemaker",
    "glassblower",
    "glazier",
    "grazier",
    "potter",
    "porter",
    "waiter",
    "writer",
    "rider",
    "roofer",
];

/// City names with confusable pairs.
pub const CITIES: [&str; 48] = [
    "Hamburg",
    "Homburg",
    "Hamm",
    "Enschede",
    "Eindhoven",
    "Essen",
    "Amsterdam",
    "Rotterdam",
    "Potsdam",
    "Berlin",
    "Bern",
    "Bremen",
    "Dresden",
    "Dreden",
    "Leiden",
    "Leuven",
    "London",
    "Londonderry",
    "Paris",
    "Pisa",
    "Prague",
    "Vienna",
    "Venice",
    "Verona",
    "Munich",
    "Zurich",
    "Zwolle",
    "Utrecht",
    "Antwerp",
    "Ghent",
    "Groningen",
    "Goettingen",
    "Tuebingen",
    "Heidelberg",
    "Freiburg",
    "Fribourg",
    "Strasbourg",
    "Salzburg",
    "Stuttgart",
    "Frankfurt",
    "Dortmund",
    "Duisburg",
    "Dusseldorf",
    "Cologne",
    "Bonn",
    "Basel",
    "Kassel",
    "Kiel",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_dictionaries_are_nonempty_and_unique() {
        let d = Dictionaries::people();
        for (name, pool) in [
            ("names", &d.names),
            ("jobs", &d.jobs),
            ("cities", &d.cities),
        ] {
            assert!(pool.len() >= 40, "{name} too small");
            let mut sorted = pool.clone();
            sorted.sort();
            let before = sorted.len();
            sorted.dedup();
            assert_eq!(sorted.len(), before, "{name} contains duplicates");
        }
    }

    #[test]
    fn confusable_clusters_present() {
        let d = Dictionaries::people();
        for needle in ["Tim", "Tom", "Jim", "Kim", "John", "Johan"] {
            assert!(d.names.iter().any(|n| n == needle), "{needle} missing");
        }
        for needle in ["machinist", "mechanic", "confectioner", "musician"] {
            assert!(d.jobs.iter().any(|j| j == needle), "{needle} missing");
        }
    }

    #[test]
    fn custom_dictionaries() {
        let d = Dictionaries::new(&["NGC-1", "NGC-2"], &["galaxy"], &["north"]);
        assert_eq!(d.names.len(), 2);
        assert_eq!(d.jobs, vec!["galaxy"]);
    }
}
