//! Synthetic probabilistic datasets with ground truth.
//!
//! The paper evaluates on two hand-crafted example relations; no public
//! probabilistic-dedup corpus exists. This crate is the substitution
//! documented in DESIGN.md: a seeded generator that produces x-relations
//! with controlled error and uncertainty characteristics plus the
//! entity-level ground truth needed to measure recall/precision (the
//! verification step of Section III-E).
//!
//! The generation pipeline per record mirrors how probabilistic data
//! arises in practice (e.g. uncertain extraction/integration output):
//!
//! 1. sample a ground-truth entity (name/job/city/age from dictionaries),
//! 2. corrupt some attribute values (typos, OCR confusions, missing
//!    values) — the *dirty data* the detector must see through,
//! 3. inject **attribute-level uncertainty**: an observed value becomes a
//!    categorical distribution whose support may or may not contain the
//!    truth,
//! 4. optionally lift the record to a multi-alternative **x-tuple**
//!    (correlated row variants) and/or a *maybe* tuple (`p(t) < 1`).
//!
//! Every step is driven by one seeded RNG: identical configs produce
//! identical datasets.
//!
//! # Example
//!
//! ```
//! use probdedup_datagen::{generate, DatasetConfig, Dictionaries};
//!
//! let cfg = DatasetConfig {
//!     entities: 20,
//!     sources: 2,
//!     seed: 7,
//!     ..DatasetConfig::default()
//! };
//! let a = generate(&Dictionaries::people(), &cfg);
//! assert_eq!(a.relations.len(), 2);
//! assert!(a.total_rows() >= 20);
//! // Same seed, same dataset — bit for bit.
//! let b = generate(&Dictionaries::people(), &cfg);
//! assert_eq!(a.combined().xtuples(), b.combined().xtuples());
//! ```

pub mod corrupt;
pub mod dict;
pub mod generator;
pub mod truth;

pub use corrupt::{CorruptionConfig, Corruptor};
pub use dict::Dictionaries;
pub use generator::{generate, DatasetConfig, SyntheticDataset};
pub use truth::GroundTruth;
