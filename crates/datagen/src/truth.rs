//! Ground truth: which generated rows describe the same entity.

use std::collections::HashSet;

/// The entity assignment of the rows of one **combined** relation (rows of
/// all sources concatenated, as the reduction layer consumes them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    /// `entity[i]` is the ground-truth entity id of row `i`.
    entity: Vec<u64>,
}

impl GroundTruth {
    /// Wrap an entity-id-per-row vector.
    pub fn new(entity: Vec<u64>) -> Self {
        Self { entity }
    }

    /// Entity id of row `i`.
    pub fn entity_of(&self, row: usize) -> u64 {
        self.entity[row]
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entity.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.entity.is_empty()
    }

    /// Whether rows `i` and `j` are true duplicates.
    pub fn is_duplicate(&self, i: usize, j: usize) -> bool {
        i != j && self.entity[i] == self.entity[j]
    }

    /// All true duplicate pairs `(i, j)` with `i < j`.
    pub fn true_pairs(&self) -> HashSet<(usize, usize)> {
        let mut pairs = HashSet::new();
        // Group rows by entity.
        let mut by_entity: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (row, &e) in self.entity.iter().enumerate() {
            by_entity.entry(e).or_default().push(row);
        }
        for rows in by_entity.values() {
            for (a, &i) in rows.iter().enumerate() {
                for &j in rows.iter().skip(a + 1) {
                    pairs.insert((i, j));
                }
            }
        }
        pairs
    }

    /// Number of true duplicate pairs.
    pub fn true_pair_count(&self) -> usize {
        self.true_pairs().len()
    }

    /// Number of distinct entities represented.
    pub fn entity_count(&self) -> usize {
        let mut ids: Vec<u64> = self.entity.clone();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// The ground-truth entity partition: every row grouped with the
    /// rows describing the same entity, singletons included. Clusters are
    /// ordered by their smallest member and each is sorted ascending —
    /// the same deterministic contract as the pipeline's cluster output,
    /// so cluster-level metrics can compare the two directly.
    pub fn true_clusters(&self) -> Vec<Vec<usize>> {
        let mut slot: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        for (row, &e) in self.entity.iter().enumerate() {
            let s = *slot.entry(e).or_insert_with(|| {
                clusters.push(Vec::new());
                clusters.len() - 1
            });
            clusters[s].push(row);
        }
        clusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_of_small_clusters() {
        // Rows: e0, e1, e0, e2, e1, e0 → entity 0 has rows {0,2,5} (3
        // pairs), entity 1 has {1,4} (1 pair), entity 2 has {3} (none).
        let t = GroundTruth::new(vec![0, 1, 0, 2, 1, 0]);
        let pairs = t.true_pairs();
        assert_eq!(pairs.len(), 4);
        assert!(pairs.contains(&(0, 2)));
        assert!(pairs.contains(&(0, 5)));
        assert!(pairs.contains(&(2, 5)));
        assert!(pairs.contains(&(1, 4)));
        assert_eq!(t.true_pair_count(), 4);
        assert_eq!(t.entity_count(), 3);
    }

    #[test]
    fn is_duplicate_semantics() {
        let t = GroundTruth::new(vec![7, 7, 8]);
        assert!(t.is_duplicate(0, 1));
        assert!(t.is_duplicate(1, 0));
        assert!(!t.is_duplicate(0, 2));
        assert!(!t.is_duplicate(1, 1), "self-pairs are not duplicates");
    }

    #[test]
    fn empty_truth() {
        let t = GroundTruth::new(vec![]);
        assert!(t.is_empty());
        assert!(t.true_pairs().is_empty());
        assert_eq!(t.entity_count(), 0);
        assert!(t.true_clusters().is_empty());
    }

    #[test]
    fn true_clusters_partition_the_rows() {
        // Same fixture as `pairs_of_small_clusters`; clusters come out in
        // smallest-member order with ascending members.
        let t = GroundTruth::new(vec![0, 1, 0, 2, 1, 0]);
        let clusters = t.true_clusters();
        assert_eq!(clusters, vec![vec![0, 2, 5], vec![1, 4], vec![3]]);
        assert_eq!(clusters.len(), t.entity_count());
        // Consistent with the pairwise oracle.
        let pairs = t.true_pairs();
        for c in &clusters {
            for (a, &i) in c.iter().enumerate() {
                for &j in c.iter().skip(a + 1) {
                    assert!(pairs.contains(&(i, j)));
                }
            }
        }
        assert_eq!(
            clusters
                .iter()
                .map(|c| c.len() * (c.len() - 1) / 2)
                .sum::<usize>(),
            pairs.len()
        );
    }
}
