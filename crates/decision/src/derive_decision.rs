//! Decision-based derivation functions ϑ : {m,p,u}^{k×l} → ℝ (Fig. 6,
//! right).
//!
//! Step 1 classifies every alternative pair into {m, p, u}; a derivation
//! function collapses the resulting matching-value matrix η⃗ into the
//! x-tuple similarity. Because it works on the discrete {m,p,u} domain, the
//! result is coarser than a similarity-based derivation — but it is robust
//! to non-normalized step-1 values (a matching weight of 10⁶ for an
//! improbable alternative pair cannot dominate), which is why the paper
//! deems it "more adequate for probabilistic techniques".

use crate::threshold::MatchClass;

/// The per-alternative-pair matching values of an x-tuple pair together
/// with the conditioned alternative probabilities.
#[derive(Debug, Clone, Copy)]
pub struct AlternativeDecisions<'a> {
    /// Row-major `k × l` matching values `η(t₁ⁱ, t₂ʲ)`.
    pub classes: &'a [MatchClass],
    /// Conditioned probabilities `p(t₁ⁱ)/p(t₁)` (length `k`).
    pub w1: &'a [f64],
    /// Conditioned probabilities `p(t₂ʲ)/p(t₂)` (length `l`).
    pub w2: &'a [f64],
}

impl AlternativeDecisions<'_> {
    /// Iterate `(weight, class)`, where `weight` is the conditioned world
    /// mass of the alternative pair.
    pub fn iter(&self) -> impl Iterator<Item = (f64, MatchClass)> + '_ {
        let l = self.w2.len();
        self.classes.iter().enumerate().map(move |(idx, &cls)| {
            let (i, j) = (idx / l, idx % l);
            (self.w1[i] * self.w2[j], cls)
        })
    }

    /// The world masses `(P(m), P(p), P(u))` of Eqs. 8–9: total conditioned
    /// probability of the worlds whose alternative pair was classified
    /// match / possible / non-match.
    pub fn class_masses(&self) -> (f64, f64, f64) {
        let mut pm = 0.0;
        let mut pp = 0.0;
        let mut pu = 0.0;
        for (w, cls) in self.iter() {
            match cls {
                MatchClass::Match => pm += w,
                MatchClass::Possible => pp += w,
                MatchClass::NonMatch => pu += w,
            }
        }
        (pm, pp, pu)
    }
}

/// A decision-based derivation function ϑ.
pub trait DecisionDerivation: Send + Sync {
    /// Collapse the matching-value matrix into one degree.
    fn derive(&self, input: &AlternativeDecisions<'_>) -> f64;

    /// Short human-readable name.
    fn name(&self) -> &str {
        "decision-derivation"
    }
}

/// Eq. 7: `sim(t₁,t₂) = P(m)/P(u)` — a matching weight over world masses
/// (Eqs. 8–9). **Non-normalized**: ranges over `[0, ∞]`.
///
/// Edge cases (the paper leaves them open; we document our choice):
/// `P(u) = 0` with `P(m) > 0` yields `+∞` (certainly a match, unless a cap
/// is configured via [`MatchingWeightDerivation::with_cap`]); `P(m) = P(u)
/// = 0` (all mass on possible matches) yields the neutral weight `1`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MatchingWeightDerivation {
    cap: Option<f64>,
}

impl MatchingWeightDerivation {
    /// The uncapped Eq. 7 derivation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace infinite weights by `cap` (useful for plotting/sweeps).
    pub fn with_cap(cap: f64) -> Self {
        Self { cap: Some(cap) }
    }
}

impl DecisionDerivation for MatchingWeightDerivation {
    fn derive(&self, input: &AlternativeDecisions<'_>) -> f64 {
        let (pm, _, pu) = input.class_masses();
        let raw = if pu > 0.0 {
            pm / pu
        } else if pm > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        match self.cap {
            Some(c) => raw.min(c),
            None => raw,
        }
    }

    fn name(&self) -> &str {
        "matching-weight"
    }
}

/// The expected matching result `E(η(t₁ⁱ,t₂ʲ) | B)` with the paper's
/// encoding `{m = 2, p = 1, u = 0}` (Section IV-B, last paragraph).
/// Ranges over `[0, 2]`; [`ExpectedMatchingResult::normalized`] rescales to
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExpectedMatchingResult {
    normalized: bool,
}

impl ExpectedMatchingResult {
    /// The paper's `[0, 2]`-ranged expectation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rescaled to `[0, 1]` (divides by 2).
    pub fn normalized() -> Self {
        Self { normalized: true }
    }
}

impl DecisionDerivation for ExpectedMatchingResult {
    fn derive(&self, input: &AlternativeDecisions<'_>) -> f64 {
        let e: f64 = input.iter().map(|(w, cls)| w * cls.as_score()).sum();
        if self.normalized {
            e / 2.0
        } else {
            e
        }
    }

    fn name(&self) -> &str {
        if self.normalized {
            "expected-matching-result-normalized"
        } else {
            "expected-matching-result"
        }
    }
}

/// Majority-mass vote: the similarity is the conditioned mass of the
/// matching class minus the mass of the non-matching class, in `[-1, 1]`.
/// A simple symmetric alternative exposed for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MassMargin;

impl DecisionDerivation for MassMargin {
    fn derive(&self, input: &AlternativeDecisions<'_>) -> f64 {
        let (pm, _, pu) = input.class_masses();
        pm - pu
    }

    fn name(&self) -> &str {
        "mass-margin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use MatchClass::{Match, NonMatch, Possible};

    /// Fig. 7's decision-based example: classes (m, p, u) with conditioned
    /// weights (3/9, 2/9, 4/9).
    fn fig7_input() -> (Vec<MatchClass>, Vec<f64>, Vec<f64>) {
        (
            vec![Match, Possible, NonMatch],
            vec![0.3 / 0.9, 0.2 / 0.9, 0.4 / 0.9],
            vec![1.0],
        )
    }

    #[test]
    fn fig7_class_masses() {
        let (classes, w1, w2) = fig7_input();
        let input = AlternativeDecisions {
            classes: &classes,
            w1: &w1,
            w2: &w2,
        };
        let (pm, pp, pu) = input.class_masses();
        assert!((pm - 3.0 / 9.0).abs() < 1e-12); // P(m) = P(I1|B)
        assert!((pp - 2.0 / 9.0).abs() < 1e-12);
        assert!((pu - 4.0 / 9.0).abs() < 1e-12); // P(u) = P(I3|B)
    }

    #[test]
    fn fig7_matching_weight_is_0_75() {
        let (classes, w1, w2) = fig7_input();
        let input = AlternativeDecisions {
            classes: &classes,
            w1: &w1,
            w2: &w2,
        };
        let sim = MatchingWeightDerivation::new().derive(&input);
        assert!((sim - 0.75).abs() < 1e-12, "sim = {sim}");
    }

    #[test]
    fn fig7_expected_matching_result_is_8_9ths() {
        // E(η) = 2·(3/9) + 1·(2/9) + 0·(4/9) = 8/9.
        let (classes, w1, w2) = fig7_input();
        let input = AlternativeDecisions {
            classes: &classes,
            w1: &w1,
            w2: &w2,
        };
        assert!((ExpectedMatchingResult::new().derive(&input) - 8.0 / 9.0).abs() < 1e-12);
        assert!((ExpectedMatchingResult::normalized().derive(&input) - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn matching_weight_edge_cases() {
        let w1 = vec![1.0];
        let w2 = vec![1.0];
        // All match, no unmatch mass → ∞ (uncapped) or the cap.
        let all_match = AlternativeDecisions {
            classes: &[Match],
            w1: &w1,
            w2: &w2,
        };
        assert!(MatchingWeightDerivation::new()
            .derive(&all_match)
            .is_infinite());
        assert_eq!(
            MatchingWeightDerivation::with_cap(100.0).derive(&all_match),
            100.0
        );
        // All possible → neutral weight 1.
        let all_possible = AlternativeDecisions {
            classes: &[Possible],
            w1: &w1,
            w2: &w2,
        };
        assert_eq!(MatchingWeightDerivation::new().derive(&all_possible), 1.0);
        // All unmatch → 0.
        let all_unmatch = AlternativeDecisions {
            classes: &[NonMatch],
            w1: &w1,
            w2: &w2,
        };
        assert_eq!(MatchingWeightDerivation::new().derive(&all_unmatch), 0.0);
    }

    #[test]
    fn mass_margin_symmetry() {
        let (classes, w1, w2) = fig7_input();
        let input = AlternativeDecisions {
            classes: &classes,
            w1: &w1,
            w2: &w2,
        };
        // 3/9 − 4/9 = −1/9.
        assert!((MassMargin.derive(&input) + 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn weights_partition_across_classes() {
        let classes = vec![Match, NonMatch, Possible, Match];
        let w1 = vec![0.5, 0.5];
        let w2 = vec![0.25, 0.75];
        let input = AlternativeDecisions {
            classes: &classes,
            w1: &w1,
            w2: &w2,
        };
        let (pm, pp, pu) = input.class_masses();
        assert!((pm + pp + pu - 1.0).abs() < 1e-12);
    }
}
