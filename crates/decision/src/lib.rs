//! Decision models for duplicate detection in probabilistic data
//! (Sections III-D and IV-B of Panse et al., ICDE 2010).
//!
//! For **certain-data** tuple pairs the classical two-step scheme of Fig. 3
//! applies: a combination function φ collapses the comparison vector into a
//! single similarity degree, which one or two thresholds classify into
//! *match* (M), *possible match* (P) or *non-match* (U). Two families are
//! implemented:
//!
//! * **knowledge-based** ([`rules`]): identification rules with certainty
//!   factors (Fig. 1) — normalized similarity degrees;
//! * **probabilistic** ([`fellegi_sunter`]): the Fellegi–Sunter theory, with
//!   m/u-probabilities per attribute, matching weight `R = m(c⃗)/u(c⃗)`,
//!   optimal threshold selection from error bounds, and unsupervised
//!   parameter estimation via the EM algorithm ([`em`], Winkler 1988) —
//!   non-normalized matching weights.
//!
//! For **x-tuple** pairs the comparison vector becomes a k×l matrix, and the
//! paper defines two adaptations (Fig. 6), both implemented in [`xmodel`]:
//!
//! * **similarity-based derivation** — φ on every alternative pair, then a
//!   derivation function ϑ : ℝ^{k×l} → ℝ ([`derive_sim`]); the canonical ϑ
//!   is the conditional expectation over possible worlds (Eq. 6);
//! * **decision-based derivation** — classify every alternative pair first,
//!   then derive from the matching values η ∈ {m,p,u}^{k×l}
//!   ([`derive_decision`]); the canonical ϑ is the matching weight
//!   `P(m)/P(u)` over world masses (Eqs. 7–9).
//!
//! # Example
//!
//! The certain-data two-step scheme (Fig. 3): combine a comparison vector
//! with φ, classify with thresholds `T_λ`, `T_μ`:
//!
//! ```
//! use probdedup_decision::combine::{CombinationFunction, WeightedSum};
//! use probdedup_decision::threshold::{MatchClass, Thresholds};
//!
//! // The paper's φ(c⃗) = 0.8·c_name + 0.2·c_job.
//! let phi = WeightedSum::new([0.8, 0.2]).unwrap();
//! let sim = phi.combine(&[0.9, 53.0 / 90.0]); // sim(t11, t22), Section IV-A
//! let thresholds = Thresholds::new(0.6, 0.8).unwrap();
//! assert_eq!(thresholds.classify(sim), MatchClass::Match);
//! assert_eq!(thresholds.classify(0.7), MatchClass::Possible);
//! assert_eq!(thresholds.classify(0.2), MatchClass::NonMatch);
//! ```

pub mod budget;
pub mod combine;
pub mod derive_decision;
pub mod derive_sim;
pub mod em;
pub mod error;
pub mod fellegi_sunter;
pub mod model;
pub mod rules;
pub mod threshold;
pub mod xmodel;

pub use budget::{
    classify_comparison_bounded, AttributeBudgets, BoundedDecision, BoundedTier, CERT_MARGIN,
};
pub use combine::{CombinationFunction, WeightedProduct, WeightedSum};
pub use derive_decision::{DecisionDerivation, ExpectedMatchingResult, MatchingWeightDerivation};
pub use derive_sim::{ExpectedSimilarity, MaxSimilarity, MinSimilarity, SimilarityDerivation};
pub use em::{fit_em, EmConfig, EmResult};
pub use error::DecisionError;
pub use fellegi_sunter::FellegiSunter;
pub use model::{DecisionModel, SimpleModel};
pub use rules::{Condition, Rule, RuleSet};
pub use threshold::{MatchClass, Thresholds};
pub use xmodel::{DecisionBasedModel, SimilarityBasedModel, XDecision, XTupleDecisionModel};
