//! Unsupervised estimation of Fellegi–Sunter parameters with the EM
//! algorithm (Winkler 1988, reference \[26\] of the paper).
//!
//! The latent-class model: each pair belongs to M with unknown proportion
//! `p`; given the class, attribute agreements are independent Bernoullis
//! with parameters `mᵢ` (class M) and `uᵢ` (class U). EM alternates:
//!
//! * **E-step** — posterior match responsibility of each observed pattern,
//! * **M-step** — reestimate `p`, `mᵢ`, `uᵢ` from the weighted patterns,
//!
//! and provably increases the observed-data log-likelihood each round
//! (asserted by a property test).

use crate::error::DecisionError;
use crate::fellegi_sunter::FellegiSunter;

/// Configuration for [`fit_em`].
#[derive(Debug, Clone, PartialEq)]
pub struct EmConfig {
    /// Maximum EM rounds.
    pub max_iterations: usize,
    /// Stop when the log-likelihood improves by less than this.
    pub tolerance: f64,
    /// Initial match proportion `p`.
    pub init_p: f64,
    /// Initial m-probability (all attributes).
    pub init_m: f64,
    /// Initial u-probability (all attributes).
    pub init_u: f64,
    /// Agreement threshold carried into the resulting model.
    pub agreement_threshold: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        // Winkler's classical starting point.
        Self {
            max_iterations: 200,
            tolerance: 1e-9,
            init_p: 0.1,
            init_m: 0.9,
            init_u: 0.1,
            agreement_threshold: 0.8,
        }
    }
}

/// Result of an EM fit.
#[derive(Debug, Clone)]
pub struct EmResult {
    /// The fitted model (m/u-probabilities).
    pub model: FellegiSunter,
    /// Estimated match proportion `p`.
    pub match_proportion: f64,
    /// Final observed-data log-likelihood.
    pub log_likelihood: f64,
    /// Rounds executed.
    pub iterations: usize,
    /// Whether the tolerance was reached before `max_iterations`.
    pub converged: bool,
}

/// Clamp keeping parameters in the open unit interval.
fn clamp01(x: f64) -> f64 {
    x.clamp(1e-6, 1.0 - 1e-6)
}

/// Fit Fellegi–Sunter parameters to unlabeled binary agreement patterns.
///
/// `patterns` are the agreement vectors γ of the candidate pairs (binarize
/// comparison vectors with [`binarize`]). Deduplicate-with-counts is applied
/// internally so the E/M steps run over distinct patterns only.
pub fn fit_em(patterns: &[Vec<bool>], config: &EmConfig) -> Result<EmResult, DecisionError> {
    let first = patterns.first().ok_or(DecisionError::EmptyTrainingData)?;
    let arity = first.len();
    if arity == 0 {
        return Err(DecisionError::EmptyTrainingData);
    }
    for v in patterns {
        if v.len() != arity {
            return Err(DecisionError::DimensionMismatch {
                expected: arity,
                got: v.len(),
            });
        }
    }
    for (name, value) in [
        ("init_p", config.init_p),
        ("init_m", config.init_m),
        ("init_u", config.init_u),
    ] {
        if !(0.0 < value && value < 1.0) {
            return Err(DecisionError::InvalidParameter { name, value });
        }
    }

    // Compress to distinct patterns with counts.
    let mut table: std::collections::BTreeMap<Vec<bool>, u64> = std::collections::BTreeMap::new();
    for v in patterns {
        *table.entry(v.clone()).or_insert(0) += 1;
    }
    let rows: Vec<(Vec<bool>, f64)> = table.into_iter().map(|(k, c)| (k, c as f64)).collect();
    let total: f64 = rows.iter().map(|(_, c)| c).sum();

    let mut p = config.init_p;
    let mut m = vec![config.init_m; arity];
    let mut u = vec![config.init_u; arity];

    let log_lik = |p: f64, m: &[f64], u: &[f64]| -> f64 {
        rows.iter()
            .map(|(gamma, c)| {
                let pm: f64 = gamma
                    .iter()
                    .zip(m)
                    .map(|(&g, &mi)| if g { mi } else { 1.0 - mi })
                    .product();
                let pu: f64 = gamma
                    .iter()
                    .zip(u)
                    .map(|(&g, &ui)| if g { ui } else { 1.0 - ui })
                    .product();
                c * (p * pm + (1.0 - p) * pu).max(f64::MIN_POSITIVE).ln()
            })
            .sum()
    };

    let mut prev_ll = log_lik(p, &m, &u);
    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        // E-step: responsibilities per distinct pattern.
        let resp: Vec<f64> = rows
            .iter()
            .map(|(gamma, _)| {
                let pm: f64 = gamma
                    .iter()
                    .zip(&m)
                    .map(|(&g, &mi)| if g { mi } else { 1.0 - mi })
                    .product();
                let pu: f64 = gamma
                    .iter()
                    .zip(&u)
                    .map(|(&g, &ui)| if g { ui } else { 1.0 - ui })
                    .product();
                let num = p * pm;
                let den = num + (1.0 - p) * pu;
                if den > 0.0 {
                    num / den
                } else {
                    0.5
                }
            })
            .collect();
        // M-step.
        let weight_m: f64 = rows.iter().zip(&resp).map(|((_, c), r)| c * r).sum();
        let weight_u = total - weight_m;
        p = clamp01(weight_m / total);
        for i in 0..arity {
            let agree_m: f64 = rows
                .iter()
                .zip(&resp)
                .filter(|((gamma, _), _)| gamma[i])
                .map(|((_, c), r)| c * r)
                .sum();
            let agree_u: f64 = rows
                .iter()
                .zip(&resp)
                .filter(|((gamma, _), _)| gamma[i])
                .map(|((_, c), r)| c * (1.0 - r))
                .sum();
            m[i] = clamp01(agree_m / weight_m.max(f64::MIN_POSITIVE));
            u[i] = clamp01(agree_u / weight_u.max(f64::MIN_POSITIVE));
        }
        let ll = log_lik(p, &m, &u);
        if (ll - prev_ll).abs() < config.tolerance {
            prev_ll = ll;
            converged = true;
            break;
        }
        prev_ll = ll;
    }

    // Convention: the match class is the one with higher agreement rates;
    // EM label-switches freely, so repair orientation if needed.
    let mean_m: f64 = m.iter().sum::<f64>() / arity as f64;
    let mean_u: f64 = u.iter().sum::<f64>() / arity as f64;
    if mean_u > mean_m {
        std::mem::swap(&mut m, &mut u);
        p = 1.0 - p;
    }

    Ok(EmResult {
        model: FellegiSunter::new(m, u, config.agreement_threshold)?,
        match_proportion: p,
        log_likelihood: prev_ll,
        iterations,
        converged,
    })
}

/// Binarize comparison vectors into agreement patterns with a single
/// threshold.
pub fn binarize(vectors: &[Vec<f64>], threshold: f64) -> Vec<Vec<bool>> {
    vectors
        .iter()
        .map(|v| v.iter().map(|&x| x >= threshold).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Sample patterns from a known FS model.
    fn sample(rng: &mut StdRng, n: usize, p: f64, m: &[f64], u: &[f64]) -> (Vec<Vec<bool>>, usize) {
        let mut out = Vec::with_capacity(n);
        let mut matches = 0;
        for _ in 0..n {
            let is_match = rng.random::<f64>() < p;
            if is_match {
                matches += 1;
            }
            let params = if is_match { m } else { u };
            out.push(params.iter().map(|&q| rng.random::<f64>() < q).collect());
        }
        (out, matches)
    }

    #[test]
    fn em_recovers_generating_parameters() {
        let mut rng = StdRng::seed_from_u64(7);
        let true_m = [0.95, 0.9, 0.85];
        let true_u = [0.05, 0.1, 0.2];
        let (patterns, _) = sample(&mut rng, 20_000, 0.15, &true_m, &true_u);
        let r = fit_em(&patterns, &EmConfig::default()).unwrap();
        assert!(r.converged, "EM did not converge in {} iters", r.iterations);
        assert!(
            (r.match_proportion - 0.15).abs() < 0.03,
            "p = {}",
            r.match_proportion
        );
        for i in 0..3 {
            assert!(
                (r.model.m()[i] - true_m[i]).abs() < 0.05,
                "m[{i}] = {}",
                r.model.m()[i]
            );
            assert!(
                (r.model.u()[i] - true_u[i]).abs() < 0.05,
                "u[{i}] = {}",
                r.model.u()[i]
            );
        }
    }

    #[test]
    fn em_orientation_is_repaired() {
        // Initialize *backwards* (init_m < init_u): the orientation repair
        // must still deliver m > u on average.
        let mut rng = StdRng::seed_from_u64(11);
        let (patterns, _) = sample(&mut rng, 5_000, 0.2, &[0.9, 0.9], &[0.1, 0.1]);
        let cfg = EmConfig {
            init_m: 0.2,
            init_u: 0.8,
            ..EmConfig::default()
        };
        let r = fit_em(&patterns, &cfg).unwrap();
        let mean_m: f64 = r.model.m().iter().sum::<f64>() / 2.0;
        let mean_u: f64 = r.model.u().iter().sum::<f64>() / 2.0;
        assert!(mean_m > mean_u);
    }

    #[test]
    fn em_log_likelihood_is_finite_and_iterations_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let (patterns, _) = sample(&mut rng, 500, 0.3, &[0.8], &[0.3]);
        let cfg = EmConfig {
            max_iterations: 5,
            tolerance: 0.0,
            ..EmConfig::default()
        };
        let r = fit_em(&patterns, &cfg).unwrap();
        assert!(r.log_likelihood.is_finite());
        assert_eq!(r.iterations, 5);
        assert!(!r.converged);
    }

    #[test]
    fn validation_errors() {
        assert!(fit_em(&[], &EmConfig::default()).is_err());
        assert!(fit_em(&[vec![]], &EmConfig::default()).is_err());
        assert!(fit_em(&[vec![true], vec![true, false]], &EmConfig::default()).is_err());
        let bad = EmConfig {
            init_p: 0.0,
            ..EmConfig::default()
        };
        assert!(fit_em(&[vec![true]], &bad).is_err());
    }

    #[test]
    fn binarize_thresholds() {
        let vs = vec![vec![0.9, 0.2], vec![0.8, 0.8]];
        assert_eq!(
            binarize(&vs, 0.8),
            vec![vec![true, false], vec![true, true]]
        );
    }

    #[test]
    fn degenerate_all_identical_patterns() {
        // All pairs agree on everything: EM must not crash; proportions
        // collapse to one class.
        let patterns = vec![vec![true, true]; 100];
        let r = fit_em(&patterns, &EmConfig::default()).unwrap();
        assert!(r.log_likelihood.is_finite());
    }
}
