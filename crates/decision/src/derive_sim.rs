//! Similarity-based derivation functions ϑ : ℝ^{k×l} → ℝ (Fig. 6, left).
//!
//! Step 1 applies φ to each alternative-pair comparison vector, giving the
//! similarity vector `s⃗(t₁,t₂) ∈ ℝ^{k×l}`; a derivation function collapses
//! it into the x-tuple similarity.

/// The per-alternative-pair similarities of an x-tuple pair together with
/// the **conditioned** alternative probabilities (normalized by `p(t)`,
/// removing tuple-membership influence — the paper's conditioning step).
#[derive(Debug, Clone, Copy)]
pub struct AlternativeSimilarities<'a> {
    /// Row-major `k × l` similarities `sim(t₁ⁱ, t₂ʲ)`.
    pub sims: &'a [f64],
    /// Conditioned probabilities `p(t₁ⁱ)/p(t₁)` (length `k`, sums to 1).
    pub w1: &'a [f64],
    /// Conditioned probabilities `p(t₂ʲ)/p(t₂)` (length `l`, sums to 1).
    pub w2: &'a [f64],
}

impl AlternativeSimilarities<'_> {
    /// Iterate `(i, j, weight, sim)` over all alternative pairs, where
    /// `weight = w1[i] · w2[j]` is the conditioned probability of the world
    /// in which both alternatives are the true ones.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64, f64)> + '_ {
        let l = self.w2.len();
        self.sims.iter().enumerate().map(move |(idx, &s)| {
            let (i, j) = (idx / l, idx % l);
            (i, j, self.w1[i] * self.w2[j], s)
        })
    }
}

/// A similarity-based derivation function ϑ.
pub trait SimilarityDerivation: Send + Sync {
    /// Collapse the alternative-pair similarities into one degree.
    fn derive(&self, input: &AlternativeSimilarities<'_>) -> f64;

    /// Short human-readable name.
    fn name(&self) -> &str {
        "derivation"
    }
}

/// Eq. 6: the conditional expectation of the alternative-pair similarity
/// over the possible worlds containing both tuples,
///
/// ```text
/// sim(t₁,t₂) = Σᵢ Σⱼ (p(t₁ⁱ)/p(t₁)) · (p(t₂ʲ)/p(t₂)) · sim(t₁ⁱ, t₂ʲ)
/// ```
///
/// The paper notes this is the natural choice for knowledge-based
/// (normalized) techniques: with *non*-normalized step-1 values one huge
/// pair similarity dominates the expectation regardless of its probability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpectedSimilarity;

impl SimilarityDerivation for ExpectedSimilarity {
    fn derive(&self, input: &AlternativeSimilarities<'_>) -> f64 {
        input.iter().map(|(_, _, w, s)| w * s).sum()
    }

    fn name(&self) -> &str {
        "expected-similarity"
    }
}

/// `ϑ = max sim(t₁ⁱ, t₂ʲ)` — optimistic: the pair is as similar as its most
/// similar alternative combination (ignores probabilities).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxSimilarity;

impl SimilarityDerivation for MaxSimilarity {
    fn derive(&self, input: &AlternativeSimilarities<'_>) -> f64 {
        input.sims.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    fn name(&self) -> &str {
        "max-similarity"
    }
}

/// `ϑ = min sim(t₁ⁱ, t₂ʲ)` — pessimistic counterpart of [`MaxSimilarity`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinSimilarity;

impl SimilarityDerivation for MinSimilarity {
    fn derive(&self, input: &AlternativeSimilarities<'_>) -> f64 {
        input.sims.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn name(&self) -> &str {
        "min-similarity"
    }
}

/// The similarity of the jointly most probable alternative pair — the
/// "most probable world" reading of x-tuple similarity. Ties break toward
/// the higher similarity for determinism.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MostProbableWorldSimilarity;

impl SimilarityDerivation for MostProbableWorldSimilarity {
    fn derive(&self, input: &AlternativeSimilarities<'_>) -> f64 {
        input
            .iter()
            .max_by(|(_, _, wa, sa), (_, _, wb, sb)| {
                wa.partial_cmp(wb)
                    .expect("finite weights")
                    .then(sa.partial_cmp(sb).expect("finite sims"))
            })
            .map(|(_, _, _, s)| s)
            .unwrap_or(0.0)
    }

    fn name(&self) -> &str {
        "most-probable-world"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 7's data: sims (11/15, 7/15, 4/15), conditioned weights
    /// (1/3, 2/9, 4/9) × (1).
    fn fig7_input() -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        (
            vec![11.0 / 15.0, 7.0 / 15.0, 4.0 / 15.0],
            vec![0.3 / 0.9, 0.2 / 0.9, 0.4 / 0.9],
            vec![1.0],
        )
    }

    #[test]
    fn eq6_expected_similarity_is_7_15ths() {
        let (sims, w1, w2) = fig7_input();
        let input = AlternativeSimilarities {
            sims: &sims,
            w1: &w1,
            w2: &w2,
        };
        let sim = ExpectedSimilarity.derive(&input);
        assert!((sim - 7.0 / 15.0).abs() < 1e-12, "sim = {sim}");
    }

    #[test]
    fn max_min_derivations() {
        let (sims, w1, w2) = fig7_input();
        let input = AlternativeSimilarities {
            sims: &sims,
            w1: &w1,
            w2: &w2,
        };
        assert!((MaxSimilarity.derive(&input) - 11.0 / 15.0).abs() < 1e-12);
        assert!((MinSimilarity.derive(&input) - 4.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn most_probable_world_picks_heaviest_pair() {
        let (sims, w1, w2) = fig7_input();
        let input = AlternativeSimilarities {
            sims: &sims,
            w1: &w1,
            w2: &w2,
        };
        // Heaviest conditioned weight is alternative 3 (4/9) → sim 4/15.
        assert!((MostProbableWorldSimilarity.derive(&input) - 4.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_bounded_by_extremes() {
        let sims = vec![0.9, 0.1, 0.5, 0.4];
        let w1 = vec![0.5, 0.5];
        let w2 = vec![0.25, 0.75];
        let input = AlternativeSimilarities {
            sims: &sims,
            w1: &w1,
            w2: &w2,
        };
        let e = ExpectedSimilarity.derive(&input);
        assert!(e <= MaxSimilarity.derive(&input) + 1e-12);
        assert!(e >= MinSimilarity.derive(&input) - 1e-12);
    }

    #[test]
    fn iter_enumerates_row_major_with_weights() {
        let sims = vec![1.0, 2.0, 3.0, 4.0];
        let w1 = vec![0.4, 0.6];
        let w2 = vec![0.3, 0.7];
        let input = AlternativeSimilarities {
            sims: &sims,
            w1: &w1,
            w2: &w2,
        };
        let entries: Vec<_> = input.iter().collect();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0].0, 0);
        assert_eq!(entries[0].1, 0);
        assert!((entries[0].2 - 0.12).abs() < 1e-12);
        assert_eq!(entries[3], (1, 1, 0.6 * 0.7, 4.0));
        // Weights over all pairs sum to 1.
        let total: f64 = input.iter().map(|(_, _, w, _)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_pair_degenerate_case() {
        let input = AlternativeSimilarities {
            sims: &[0.42],
            w1: &[1.0],
            w2: &[1.0],
        };
        for d in [
            &ExpectedSimilarity as &dyn SimilarityDerivation,
            &MaxSimilarity,
            &MinSimilarity,
            &MostProbableWorldSimilarity,
        ] {
            assert!((d.derive(&input) - 0.42).abs() < 1e-12, "{}", d.name());
        }
    }
}
