//! Knowledge-based identification rules (Fig. 1 of the paper):
//!
//! ```text
//! IF name > threshold1 AND job > threshold2
//! THEN DUPLICATES with CERTAINTY = 0.8
//! ```
//!
//! A [`RuleSet`] evaluates all rules against a comparison vector and
//! combines the certainty factors of the fired rules; if the resulting
//! certainty exceeds a user-defined decision threshold, the pair is
//! declared a duplicate.

use crate::error::DecisionError;

/// Comparison operator of a rule condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Strictly greater (`>`), the paper's notation.
    Gt,
    /// Greater or equal (`≥`).
    Ge,
}

/// One condition `attribute-similarity  op  threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Condition {
    /// Index of the attribute in the comparison vector.
    pub attr: usize,
    /// Operator.
    pub op: Cmp,
    /// Threshold in `[0, 1]`.
    pub threshold: f64,
}

impl Condition {
    /// `c[attr] > threshold`.
    pub fn gt(attr: usize, threshold: f64) -> Self {
        Self {
            attr,
            op: Cmp::Gt,
            threshold,
        }
    }

    /// `c[attr] ≥ threshold`.
    pub fn ge(attr: usize, threshold: f64) -> Self {
        Self {
            attr,
            op: Cmp::Ge,
            threshold,
        }
    }

    /// Evaluate against a comparison vector.
    pub fn holds(&self, c: &[f64]) -> bool {
        let v = c[self.attr];
        match self.op {
            Cmp::Gt => v > self.threshold,
            Cmp::Ge => v >= self.threshold,
        }
    }
}

/// An identification rule: a conjunction of conditions and the certainty
/// factor it asserts when all hold.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    conditions: Vec<Condition>,
    certainty: f64,
}

impl Rule {
    /// Build a rule; certainty must lie in `[0, 1]`.
    pub fn new(conditions: Vec<Condition>, certainty: f64) -> Result<Self, DecisionError> {
        if !(0.0..=1.0).contains(&certainty) || certainty.is_nan() {
            return Err(DecisionError::InvalidParameter {
                name: "certainty",
                value: certainty,
            });
        }
        Ok(Self {
            conditions,
            certainty,
        })
    }

    /// The asserted certainty factor.
    pub fn certainty(&self) -> f64 {
        self.certainty
    }

    /// Whether the rule fires on `c⃗` (all conditions hold; an empty
    /// conjunction always fires).
    pub fn fires(&self, c: &[f64]) -> bool {
        self.conditions.iter().all(|cond| cond.holds(c))
    }

    /// Largest attribute index referenced (for arity validation).
    pub fn max_attr(&self) -> Option<usize> {
        self.conditions.iter().map(|c| c.attr).max()
    }
}

/// How certainty factors of multiple fired rules combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CfCombination {
    /// The strongest rule wins: `max(cf₁, …, cfₖ)`.
    #[default]
    Max,
    /// Probabilistic sum (MYCIN): `cf₁ ⊕ cf₂ = cf₁ + cf₂·(1 − cf₁)` —
    /// independent corroborating evidence strengthens the conclusion.
    ProbabilisticSum,
}

/// A set of identification rules with a certainty-combination mode.
///
/// `RuleSet` is a *normalized* scorer: its output (the combined certainty
/// factor) lies in `[0, 1]`, which is why the paper pairs knowledge-based
/// techniques with the similarity-based x-tuple derivation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    rules: Vec<Rule>,
    combination: CfCombination,
}

impl RuleSet {
    /// An empty rule set (certainty 0 for everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule.
    pub fn with_rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Select the certainty-combination mode.
    pub fn with_combination(mut self, combination: CfCombination) -> Self {
        self.combination = combination;
        self
    }

    /// The rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The combined certainty factor of all rules firing on `c⃗`.
    pub fn certainty(&self, c: &[f64]) -> f64 {
        let fired = self
            .rules
            .iter()
            .filter(|r| r.fires(c))
            .map(Rule::certainty);
        match self.combination {
            CfCombination::Max => fired.fold(0.0, f64::max),
            CfCombination::ProbabilisticSum => fired.fold(0.0, |acc, cf| acc + cf * (1.0 - acc)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 1: IF name > th1 AND job > th2 THEN DUPLICATES, CERTAINTY 0.8.
    fn fig1_rule() -> Rule {
        Rule::new(vec![Condition::gt(0, 0.7), Condition::gt(1, 0.5)], 0.8).unwrap()
    }

    #[test]
    fn fig1_rule_fires_when_both_conditions_hold() {
        let r = fig1_rule();
        assert!(r.fires(&[0.9, 0.59]));
        assert!(!r.fires(&[0.9, 0.5])); // job not strictly greater
        assert!(!r.fires(&[0.6, 0.9])); // name too low
        assert_eq!(r.certainty(), 0.8);
        assert_eq!(r.max_attr(), Some(1));
    }

    #[test]
    fn ruleset_max_combination() {
        let rs = RuleSet::new()
            .with_rule(fig1_rule())
            .with_rule(Rule::new(vec![Condition::ge(0, 0.99)], 0.95).unwrap());
        // Only Fig. 1 rule fires.
        assert!((rs.certainty(&[0.9, 0.6]) - 0.8).abs() < 1e-12);
        // Both fire → max.
        assert!((rs.certainty(&[1.0, 0.6]) - 0.95).abs() < 1e-12);
        // Nothing fires.
        assert_eq!(rs.certainty(&[0.1, 0.1]), 0.0);
    }

    #[test]
    fn ruleset_probabilistic_sum() {
        let rs = RuleSet::new()
            .with_combination(CfCombination::ProbabilisticSum)
            .with_rule(Rule::new(vec![Condition::ge(0, 0.5)], 0.6).unwrap())
            .with_rule(Rule::new(vec![Condition::ge(1, 0.5)], 0.5).unwrap());
        // Both fire: 0.6 ⊕ 0.5 = 0.6 + 0.5·0.4 = 0.8.
        assert!((rs.certainty(&[0.9, 0.9]) - 0.8).abs() < 1e-12);
        // Corroboration never exceeds 1.
        let rs_many = RuleSet::new()
            .with_combination(CfCombination::ProbabilisticSum)
            .with_rule(Rule::new(vec![], 0.9).unwrap())
            .with_rule(Rule::new(vec![], 0.9).unwrap())
            .with_rule(Rule::new(vec![], 0.9).unwrap());
        let cf = rs_many.certainty(&[]);
        assert!(cf <= 1.0 && cf > 0.99);
    }

    #[test]
    fn empty_conjunction_always_fires() {
        let r = Rule::new(vec![], 0.3).unwrap();
        assert!(r.fires(&[0.0, 0.0]));
        assert_eq!(r.max_attr(), None);
    }

    #[test]
    fn invalid_certainty_rejected() {
        assert!(Rule::new(vec![], 1.5).is_err());
        assert!(Rule::new(vec![], -0.1).is_err());
        assert!(Rule::new(vec![], f64::NAN).is_err());
    }

    #[test]
    fn ge_vs_gt_boundary() {
        assert!(Condition::ge(0, 0.5).holds(&[0.5]));
        assert!(!Condition::gt(0, 0.5).holds(&[0.5]));
    }
}
