//! Decision models adapted to the x-tuple concept — both sides of Fig. 6.
//!
//! Input: an x-tuple pair and its comparison matrix. Output: the similarity
//! degree and the matching value `η(t₁,t₂) ∈ {m,p,u}`.
//!
//! * [`SimilarityBasedModel`] (Fig. 6, left): φ per alternative pair →
//!   similarity vector → derivation ϑ over ℝ^{k×l} → thresholds.
//! * [`DecisionBasedModel`] (Fig. 6, right): φ per alternative pair → inner
//!   thresholds classify each pair → derivation ϑ over {m,p,u}^{k×l} →
//!   outer thresholds.

use std::sync::Arc;

use probdedup_matching::matrix::ComparisonMatrix;
use probdedup_model::condition::normalized_alternative_probs;
use probdedup_model::xtuple::XTuple;

use crate::combine::CombinationFunction;
use crate::derive_decision::{AlternativeDecisions, DecisionDerivation};
use crate::derive_sim::{AlternativeSimilarities, SimilarityDerivation};
use crate::threshold::{MatchClass, Thresholds};

/// The decision for one x-tuple pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XDecision {
    /// The derived similarity degree `sim(t₁, t₂)` (normalized or not,
    /// depending on the model).
    pub similarity: f64,
    /// The matching value `η(t₁, t₂)`.
    pub class: MatchClass,
}

/// A decision model for x-tuple pairs (either side of Fig. 6).
pub trait XTupleDecisionModel: Send + Sync {
    /// Decide whether `(t1, t2)` is a duplicate, given their comparison
    /// matrix (as produced by
    /// [`compare_xtuples`](probdedup_matching::compare_xtuples)).
    fn decide(&self, t1: &XTuple, t2: &XTuple, matrix: &ComparisonMatrix) -> XDecision;

    /// Short human-readable name.
    fn name(&self) -> &str {
        "x-decision-model"
    }
}

impl<T: XTupleDecisionModel + ?Sized> XTupleDecisionModel for Arc<T> {
    fn decide(&self, t1: &XTuple, t2: &XTuple, matrix: &ComparisonMatrix) -> XDecision {
        (**self).decide(t1, t2, matrix)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Apply φ to every comparison vector of the matrix (step 1 / step 1.1).
fn step1_similarities(phi: &dyn CombinationFunction, matrix: &ComparisonMatrix) -> Vec<f64> {
    matrix.iter().map(|(_, _, c)| phi.combine(c)).collect()
}

/// Similarity-based derivation model (Fig. 6, left).
#[derive(Clone)]
pub struct SimilarityBasedModel {
    phi: Arc<dyn CombinationFunction>,
    derivation: Arc<dyn SimilarityDerivation>,
    thresholds: Thresholds,
}

impl SimilarityBasedModel {
    /// Build from φ, ϑ and the step-3 thresholds.
    pub fn new(
        phi: Arc<dyn CombinationFunction>,
        derivation: Arc<dyn SimilarityDerivation>,
        thresholds: Thresholds,
    ) -> Self {
        Self {
            phi,
            derivation,
            thresholds,
        }
    }
}

impl XTupleDecisionModel for SimilarityBasedModel {
    fn decide(&self, t1: &XTuple, t2: &XTuple, matrix: &ComparisonMatrix) -> XDecision {
        assert_eq!(matrix.k(), t1.len(), "matrix rows vs t1 alternatives");
        assert_eq!(matrix.l(), t2.len(), "matrix cols vs t2 alternatives");
        // Step 1: φ per alternative pair → s⃗(t1, t2).
        let sims = step1_similarities(self.phi.as_ref(), matrix);
        // Step 2: derivation over conditioned probabilities.
        let w1 = normalized_alternative_probs(t1);
        let w2 = normalized_alternative_probs(t2);
        let similarity = self.derivation.derive(&AlternativeSimilarities {
            sims: &sims,
            w1: &w1,
            w2: &w2,
        });
        // Step 3: classification.
        XDecision {
            similarity,
            class: self.thresholds.classify(similarity),
        }
    }

    fn name(&self) -> &str {
        "similarity-based"
    }
}

/// Decision-based derivation model (Fig. 6, right).
#[derive(Clone)]
pub struct DecisionBasedModel {
    phi: Arc<dyn CombinationFunction>,
    inner: Thresholds,
    derivation: Arc<dyn DecisionDerivation>,
    outer: Thresholds,
}

impl DecisionBasedModel {
    /// Build from φ, the step-1.2 (inner, per-alternative-pair) thresholds,
    /// ϑ and the step-3 (outer) thresholds. The outer thresholds live on
    /// ϑ's scale — for the Eq. 7 matching weight that is `[0, ∞]`, not
    /// `[0, 1]`.
    pub fn new(
        phi: Arc<dyn CombinationFunction>,
        inner: Thresholds,
        derivation: Arc<dyn DecisionDerivation>,
        outer: Thresholds,
    ) -> Self {
        Self {
            phi,
            inner,
            derivation,
            outer,
        }
    }
}

impl XTupleDecisionModel for DecisionBasedModel {
    fn decide(&self, t1: &XTuple, t2: &XTuple, matrix: &ComparisonMatrix) -> XDecision {
        assert_eq!(matrix.k(), t1.len(), "matrix rows vs t1 alternatives");
        assert_eq!(matrix.l(), t2.len(), "matrix cols vs t2 alternatives");
        // Step 1.1: φ per alternative pair.
        let sims = step1_similarities(self.phi.as_ref(), matrix);
        // Step 1.2: per-pair classification → η⃗(t1, t2).
        let classes: Vec<MatchClass> = sims.iter().map(|&s| self.inner.classify(s)).collect();
        // Step 2: derivation over conditioned probabilities.
        let w1 = normalized_alternative_probs(t1);
        let w2 = normalized_alternative_probs(t2);
        let similarity = self.derivation.derive(&AlternativeDecisions {
            classes: &classes,
            w1: &w1,
            w2: &w2,
        });
        // Step 3: classification.
        XDecision {
            similarity,
            class: self.outer.classify(similarity),
        }
    }

    fn name(&self) -> &str {
        "decision-based"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::WeightedSum;
    use crate::derive_decision::{ExpectedMatchingResult, MatchingWeightDerivation};
    use crate::derive_sim::ExpectedSimilarity;
    use probdedup_matching::compare_xtuples;
    use probdedup_matching::vector::AttributeComparators;
    use probdedup_model::schema::Schema;
    use probdedup_textsim::NormalizedHamming;

    fn schema() -> Schema {
        Schema::new(["name", "job"])
    }

    fn fig7_pair() -> (XTuple, XTuple, ComparisonMatrix) {
        let s = schema();
        let t32 = XTuple::builder(&s)
            .alt(0.3, ["Tim", "mechanic"])
            .alt(0.2, ["Jim", "mechanic"])
            .alt(0.4, ["Jim", "baker"])
            .build()
            .unwrap();
        let t42 = XTuple::builder(&s)
            .alt(0.8, ["Tom", "mechanic"])
            .build()
            .unwrap();
        let cmp = AttributeComparators::uniform(&s, NormalizedHamming::new());
        let m = compare_xtuples(&t32, &t42, &cmp);
        (t32, t42, m)
    }

    fn phi() -> Arc<dyn CombinationFunction> {
        Arc::new(WeightedSum::new([0.8, 0.2]).unwrap())
    }

    /// End-to-end reproduction of the paper's similarity-based example:
    /// sim(t32, t42) = 7/15.
    #[test]
    fn fig7_similarity_based_end_to_end() {
        let (t32, t42, m) = fig7_pair();
        let model = SimilarityBasedModel::new(
            phi(),
            Arc::new(ExpectedSimilarity),
            Thresholds::new(0.4, 0.7).unwrap(),
        );
        let d = model.decide(&t32, &t42, &m);
        assert!(
            (d.similarity - 7.0 / 15.0).abs() < 1e-12,
            "sim = {}",
            d.similarity
        );
        // 7/15 ≈ 0.467 lies in the possible band [0.4, 0.7).
        assert_eq!(d.class, MatchClass::Possible);
        assert_eq!(model.name(), "similarity-based");
    }

    /// End-to-end reproduction of the paper's decision-based example:
    /// P(m) = 3/9, P(u) = 4/9, sim = 0.75.
    #[test]
    fn fig7_decision_based_end_to_end() {
        let (t32, t42, m) = fig7_pair();
        let model = DecisionBasedModel::new(
            phi(),
            Thresholds::new(0.4, 0.7).unwrap(), // inner, from the paper
            Arc::new(MatchingWeightDerivation::new()),
            Thresholds::new(0.5, 2.0).unwrap(), // outer, weight scale
        );
        let d = model.decide(&t32, &t42, &m);
        assert!(
            (d.similarity - 0.75).abs() < 1e-12,
            "sim = {}",
            d.similarity
        );
        assert_eq!(d.class, MatchClass::Possible); // 0.75 ∈ [0.5, 2)
    }

    /// The sketched E(η) derivation on the same pair: 8/9.
    #[test]
    fn fig7_expected_matching_result() {
        let (t32, t42, m) = fig7_pair();
        let model = DecisionBasedModel::new(
            phi(),
            Thresholds::new(0.4, 0.7).unwrap(),
            Arc::new(ExpectedMatchingResult::new()),
            Thresholds::new(0.5, 1.5).unwrap(), // [0,2] scale
        );
        let d = model.decide(&t32, &t42, &m);
        assert!((d.similarity - 8.0 / 9.0).abs() < 1e-12);
        assert_eq!(d.class, MatchClass::Possible);
    }

    /// Tuple-membership invariance: scaling both tuples' membership leaves
    /// the decision unchanged (the paper's conditioning requirement).
    #[test]
    fn membership_scaling_invariance() {
        let s = schema();
        let full = XTuple::builder(&s)
            .alt(0.6, ["Tim", "mechanic"])
            .alt(0.4, ["Jim", "baker"])
            .build()
            .unwrap();
        let scaled = XTuple::builder(&s)
            .alt(0.06, ["Tim", "mechanic"])
            .alt(0.04, ["Jim", "baker"])
            .build()
            .unwrap();
        let other = XTuple::builder(&s)
            .alt(0.8, ["Tom", "mechanic"])
            .build()
            .unwrap();
        let cmp = AttributeComparators::uniform(&s, NormalizedHamming::new());
        let model = SimilarityBasedModel::new(
            phi(),
            Arc::new(ExpectedSimilarity),
            Thresholds::new(0.4, 0.7).unwrap(),
        );
        let d_full = model.decide(&full, &other, &compare_xtuples(&full, &other, &cmp));
        let d_scaled = model.decide(&scaled, &other, &compare_xtuples(&scaled, &other, &cmp));
        assert!((d_full.similarity - d_scaled.similarity).abs() < 1e-12);
        assert_eq!(d_full.class, d_scaled.class);
    }

    /// Identical certain x-tuples are perfect matches under both models.
    #[test]
    fn identical_tuples_match() {
        let s = schema();
        let t = XTuple::builder(&s)
            .alt(1.0, ["Tim", "mechanic"])
            .build()
            .unwrap();
        let cmp = AttributeComparators::uniform(&s, NormalizedHamming::new());
        let m = compare_xtuples(&t, &t, &cmp);
        let sim_model = SimilarityBasedModel::new(
            phi(),
            Arc::new(ExpectedSimilarity),
            Thresholds::new(0.4, 0.7).unwrap(),
        );
        assert_eq!(sim_model.decide(&t, &t, &m).class, MatchClass::Match);
        let dec_model = DecisionBasedModel::new(
            phi(),
            Thresholds::new(0.4, 0.7).unwrap(),
            Arc::new(MatchingWeightDerivation::with_cap(1e9)),
            Thresholds::new(0.5, 2.0).unwrap(),
        );
        assert_eq!(dec_model.decide(&t, &t, &m).class, MatchClass::Match);
    }

    #[test]
    #[should_panic(expected = "alternatives")]
    fn mismatched_matrix_panics() {
        let (t32, t42, m) = fig7_pair();
        let model = SimilarityBasedModel::new(
            phi(),
            Arc::new(ExpectedSimilarity),
            Thresholds::new(0.4, 0.7).unwrap(),
        );
        // Swap the tuples so the matrix no longer fits.
        let _ = model.decide(&t42, &t32, &m);
    }
}
