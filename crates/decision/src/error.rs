//! Error type for decision-model construction and estimation.

use std::fmt;

/// Errors raised while building or fitting decision models.
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionError {
    /// Thresholds must satisfy `T_λ ≤ T_μ`.
    InvalidThresholds {
        /// Lower (non-match) threshold.
        lambda: f64,
        /// Upper (match) threshold.
        mu: f64,
    },
    /// Weights must be finite, non-negative and not all zero.
    InvalidWeights,
    /// A probability parameter was outside its valid open interval.
    InvalidParameter {
        /// Parameter name (`m`, `u`, `p`, …).
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Estimation needs at least one observation.
    EmptyTrainingData,
    /// Comparison vectors fed to a model must share its arity.
    DimensionMismatch {
        /// Arity the model was built for.
        expected: usize,
        /// Arity received.
        got: usize,
    },
    /// Fellegi–Sunter threshold selection enumerates 2ⁿ agreement patterns;
    /// refused beyond this arity.
    TooManyAttributes {
        /// Arity requested.
        got: usize,
        /// Maximum supported.
        max: usize,
    },
}

impl fmt::Display for DecisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidThresholds { lambda, mu } => {
                write!(f, "invalid thresholds: T_λ = {lambda} must be ≤ T_μ = {mu}")
            }
            Self::InvalidWeights => write!(f, "weights must be finite, ≥ 0 and not all zero"),
            Self::InvalidParameter { name, value } => {
                write!(f, "parameter {name} = {value} outside its valid range")
            }
            Self::EmptyTrainingData => write!(f, "estimation requires at least one observation"),
            Self::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: model arity {expected}, vector arity {got}"
                )
            }
            Self::TooManyAttributes { got, max } => {
                write!(f, "{got} attributes exceed the supported maximum of {max}")
            }
        }
    }
}

impl std::error::Error for DecisionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let cases: Vec<(DecisionError, &str)> = vec![
            (
                DecisionError::InvalidThresholds {
                    lambda: 0.9,
                    mu: 0.1,
                },
                "T_λ",
            ),
            (DecisionError::InvalidWeights, "weights"),
            (
                DecisionError::InvalidParameter {
                    name: "m",
                    value: 2.0,
                },
                "parameter m",
            ),
            (DecisionError::EmptyTrainingData, "at least one"),
            (
                DecisionError::DimensionMismatch {
                    expected: 2,
                    got: 3,
                },
                "dimension",
            ),
            (
                DecisionError::TooManyAttributes { got: 40, max: 24 },
                "maximum",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
