//! The Fellegi–Sunter probabilistic record-linkage model (Section III-D of
//! the paper; Fellegi & Sunter 1969).
//!
//! For every tuple pair the comparison vector is reduced to an *agreement
//! pattern* `γ ∈ {0,1}ⁿ` (attribute similarity above a per-attribute
//! agreement threshold). The model carries, per attribute `i`:
//!
//! * `mᵢ = P(γᵢ = 1 | pair ∈ M)` — the m-probability (Eq. 1),
//! * `uᵢ = P(γᵢ = 1 | pair ∈ U)` — the u-probability (Eq. 2),
//!
//! and scores a pair by the matching weight `R = m(c⃗)/u(c⃗)` under
//! conditional independence. Pairs with `R > T_μ` match, `R < T_λ` don't,
//! the band in between goes to clerical review. [`FellegiSunter::optimal_thresholds`]
//! implements Fellegi & Sunter's error-bound-driven threshold selection;
//! parameters can be estimated from labeled data
//! ([`FellegiSunter::estimate_labeled`]) or without labels via EM
//! ([`crate::em`]).

use crate::error::DecisionError;
use crate::threshold::Thresholds;

/// Maximum arity for exact threshold selection (enumerates 2ⁿ patterns).
pub const MAX_PATTERN_ARITY: usize = 24;

/// Clamp for probability parameters: keeps weights finite.
const PARAM_EPS: f64 = 1e-6;

/// A fitted Fellegi–Sunter model.
#[derive(Debug, Clone, PartialEq)]
pub struct FellegiSunter {
    m: Vec<f64>,
    u: Vec<f64>,
    /// Per-attribute agreement thresholds binarizing comparison vectors.
    agree: Vec<f64>,
}

impl FellegiSunter {
    /// Build from per-attribute m/u-probabilities with a single agreement
    /// threshold for all attributes. Parameters are clamped into
    /// `[ε, 1−ε]`; arities must match; `m > u` is the informative case but
    /// is not enforced (EM may legitimately estimate uninformative
    /// attributes).
    pub fn new<I, J>(m: I, u: J, agreement_threshold: f64) -> Result<Self, DecisionError>
    where
        I: IntoIterator<Item = f64>,
        J: IntoIterator<Item = f64>,
    {
        let m: Vec<f64> = m.into_iter().collect();
        let u: Vec<f64> = u.into_iter().collect();
        if m.is_empty() {
            return Err(DecisionError::EmptyTrainingData);
        }
        if m.len() != u.len() {
            return Err(DecisionError::DimensionMismatch {
                expected: m.len(),
                got: u.len(),
            });
        }
        for &x in m.iter().chain(u.iter()) {
            if x.is_nan() || !(0.0..=1.0).contains(&x) {
                return Err(DecisionError::InvalidParameter {
                    name: "m/u",
                    value: x,
                });
            }
        }
        if !(0.0..=1.0).contains(&agreement_threshold) {
            return Err(DecisionError::InvalidParameter {
                name: "agreement_threshold",
                value: agreement_threshold,
            });
        }
        let clamp = |v: f64| v.clamp(PARAM_EPS, 1.0 - PARAM_EPS);
        let agree = vec![agreement_threshold; m.len()];
        Ok(Self {
            m: m.into_iter().map(clamp).collect(),
            u: u.into_iter().map(clamp).collect(),
            agree,
        })
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.m.len()
    }

    /// The m-probabilities.
    pub fn m(&self) -> &[f64] {
        &self.m
    }

    /// The u-probabilities.
    pub fn u(&self) -> &[f64] {
        &self.u
    }

    /// Binarize a comparison vector into the agreement pattern γ.
    pub fn agreement_pattern(&self, c: &[f64]) -> Vec<bool> {
        assert_eq!(c.len(), self.arity(), "comparison vector arity");
        c.iter().zip(&self.agree).map(|(x, t)| x >= t).collect()
    }

    /// Matching weight `R = P(γ|M)/P(γ|U)` of a comparison vector.
    pub fn weight(&self, c: &[f64]) -> f64 {
        self.weight_of_pattern(&self.agreement_pattern(c))
    }

    /// `log₂ R` — the additive form used in practice (each attribute
    /// contributes its agreement or disagreement weight).
    pub fn log2_weight(&self, c: &[f64]) -> f64 {
        self.weight(c).log2()
    }

    /// Matching weight of an explicit agreement pattern.
    pub fn weight_of_pattern(&self, gamma: &[bool]) -> f64 {
        assert_eq!(gamma.len(), self.arity(), "pattern arity");
        let mut r = 1.0;
        for ((&g, &m), &u) in gamma.iter().zip(&self.m).zip(&self.u) {
            r *= if g { m / u } else { (1.0 - m) / (1.0 - u) };
        }
        r
    }

    /// `P(γ | M)` of an explicit pattern.
    pub fn prob_given_match(&self, gamma: &[bool]) -> f64 {
        gamma
            .iter()
            .zip(&self.m)
            .map(|(&g, &m)| if g { m } else { 1.0 - m })
            .product()
    }

    /// `P(γ | U)` of an explicit pattern.
    pub fn prob_given_unmatch(&self, gamma: &[bool]) -> f64 {
        gamma
            .iter()
            .zip(&self.u)
            .map(|(&g, &u)| if g { u } else { 1.0 - u })
            .product()
    }

    /// Estimate m/u from labeled pairs: `matched`/`unmatched` are comparison
    /// vectors of known duplicates and known distinct pairs. Laplace
    /// smoothing (+1/+2) keeps estimates off the boundary.
    pub fn estimate_labeled(
        matched: &[Vec<f64>],
        unmatched: &[Vec<f64>],
        agreement_threshold: f64,
    ) -> Result<Self, DecisionError> {
        let arity = matched
            .first()
            .or_else(|| unmatched.first())
            .ok_or(DecisionError::EmptyTrainingData)?
            .len();
        if matched.is_empty() || unmatched.is_empty() {
            return Err(DecisionError::EmptyTrainingData);
        }
        for v in matched.iter().chain(unmatched) {
            if v.len() != arity {
                return Err(DecisionError::DimensionMismatch {
                    expected: arity,
                    got: v.len(),
                });
            }
        }
        let rate = |data: &[Vec<f64>], i: usize| -> f64 {
            let agree = data.iter().filter(|v| v[i] >= agreement_threshold).count() as f64;
            (agree + 1.0) / (data.len() as f64 + 2.0)
        };
        let m: Vec<f64> = (0..arity).map(|i| rate(matched, i)).collect();
        let u: Vec<f64> = (0..arity).map(|i| rate(unmatched, i)).collect();
        Self::new(m, u, agreement_threshold)
    }

    /// Fellegi & Sunter's optimal threshold selection on the matching
    /// weight `R`, given admissible error rates:
    ///
    /// * `mu_bound` — tolerated false-match rate `μ = P(assign M | U)`;
    /// * `lambda_bound` — tolerated false-non-match rate
    ///   `λ = P(assign U | M)`.
    ///
    /// All 2ⁿ agreement patterns are ordered by decreasing `R`; the match
    /// region grows from the top while its accumulated u-probability stays
    /// within `μ`, the non-match region grows from the bottom while its
    /// accumulated m-probability stays within `λ`. Returns thresholds on
    /// `R` (not log-scaled). Errors above [`MAX_PATTERN_ARITY`] attributes.
    pub fn optimal_thresholds(
        &self,
        mu_bound: f64,
        lambda_bound: f64,
    ) -> Result<Thresholds, DecisionError> {
        if self.arity() > MAX_PATTERN_ARITY {
            return Err(DecisionError::TooManyAttributes {
                got: self.arity(),
                max: MAX_PATTERN_ARITY,
            });
        }
        for (name, v) in [("mu_bound", mu_bound), ("lambda_bound", lambda_bound)] {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(DecisionError::InvalidParameter { name, value: v });
            }
        }
        let n = self.arity();
        let mut patterns: Vec<(f64, f64, f64)> = (0..(1usize << n))
            .map(|bits| {
                let gamma: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                (
                    self.weight_of_pattern(&gamma),
                    self.prob_given_match(&gamma),
                    self.prob_given_unmatch(&gamma),
                )
            })
            .collect();
        // Decreasing weight.
        patterns.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite weights"));
        // Group patterns with (numerically) equal weight: they are
        // indistinguishable to the classifier, so each group is admitted to
        // a region in full or not at all.
        let mut groups: Vec<(f64, f64, f64)> = Vec::new();
        for (w, pm, pu) in patterns {
            match groups.last_mut() {
                Some((gw, gm, gu)) if (*gw - w).abs() <= 1e-12 * gw.max(1.0) => {
                    *gm += pm;
                    *gu += pu;
                }
                _ => groups.push((w, pm, pu)),
            }
        }
        let max_weight = groups.first().expect("non-empty").0;

        // Match region grows from the top; `T_μ` is the weight of the last
        // admitted group (classification is `R ≥ T_μ`). No group admitted →
        // a threshold strictly above every weight.
        let mut acc_u = 0.0;
        let mut t_mu = max_weight * 2.0;
        for &(w, _, pu) in &groups {
            if acc_u + pu > mu_bound {
                break;
            }
            acc_u += pu;
            t_mu = w;
        }
        // Non-match region grows from the bottom; `T_λ` is the weight of the
        // first *excluded* group (classification is `R < T_λ`, so every
        // strictly lighter group lands in U). All groups admitted → a
        // threshold above every weight (collapses with T_μ below).
        let mut acc_m = 0.0;
        let mut t_lambda = max_weight * 2.0;
        for &(w, pm, _) in groups.iter().rev() {
            if acc_m + pm > lambda_bound {
                t_lambda = w;
                break;
            }
            acc_m += pm;
        }
        if t_lambda > t_mu {
            // Error bounds so tight/loose that the regions would overlap;
            // collapse to a single threshold at the geometric mean.
            let t = (t_lambda * t_mu).sqrt();
            return Thresholds::new(t, t);
        }
        Thresholds::new(t_lambda, t_mu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::MatchClass;

    fn model() -> FellegiSunter {
        FellegiSunter::new([0.9, 0.8], [0.1, 0.2], 0.8).unwrap()
    }

    #[test]
    fn weight_product_form() {
        let fs = model();
        // Both agree: (0.9/0.1)·(0.8/0.2) = 36.
        assert!((fs.weight(&[0.9, 0.95]) - 36.0).abs() < 1e-9);
        // First agrees, second disagrees: 9 · (0.2/0.8) = 2.25.
        assert!((fs.weight(&[0.9, 0.1]) - 2.25).abs() < 1e-9);
        // Both disagree: (0.1/0.9)·(0.2/0.8) = 1/36.
        assert!((fs.weight(&[0.0, 0.0]) - 1.0 / 36.0).abs() < 1e-9);
    }

    #[test]
    fn log2_weight_is_additive() {
        let fs = model();
        let w_full = fs.log2_weight(&[1.0, 1.0]);
        let w1 = (0.9f64 / 0.1).log2();
        let w2 = (0.8f64 / 0.2).log2();
        assert!((w_full - (w1 + w2)).abs() < 1e-9);
    }

    #[test]
    fn agreement_pattern_binarization() {
        let fs = model();
        assert_eq!(fs.agreement_pattern(&[0.85, 0.3]), vec![true, false]);
        assert_eq!(fs.agreement_pattern(&[0.8, 0.8]), vec![true, true]); // ≥
    }

    #[test]
    fn pattern_probabilities_sum_to_one() {
        let fs = model();
        let mut pm = 0.0;
        let mut pu = 0.0;
        for bits in 0..4usize {
            let gamma = vec![bits & 1 == 1, bits >> 1 & 1 == 1];
            pm += fs.prob_given_match(&gamma);
            pu += fs.prob_given_unmatch(&gamma);
        }
        assert!((pm - 1.0).abs() < 1e-9);
        assert!((pu - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validation_errors() {
        assert!(FellegiSunter::new([0.9], [0.1, 0.2], 0.5).is_err());
        assert!(FellegiSunter::new([1.5], [0.1], 0.5).is_err());
        assert!(FellegiSunter::new([], [], 0.5).is_err());
        assert!(FellegiSunter::new([0.9], [0.1], 1.5).is_err());
    }

    #[test]
    fn labeled_estimation_recovers_rates() {
        // 10 matched pairs: attribute 0 agrees 9 times; attribute 1 agrees 8.
        let matched: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![if i < 9 { 1.0 } else { 0.0 }, if i < 8 { 1.0 } else { 0.0 }])
            .collect();
        // 10 unmatched: attribute 0 agrees once, attribute 1 twice.
        let unmatched: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![if i < 1 { 1.0 } else { 0.0 }, if i < 2 { 1.0 } else { 0.0 }])
            .collect();
        let fs = FellegiSunter::estimate_labeled(&matched, &unmatched, 0.5).unwrap();
        // Laplace-smoothed: (9+1)/12, (8+1)/12, (1+1)/12, (2+1)/12.
        assert!((fs.m()[0] - 10.0 / 12.0).abs() < 1e-9);
        assert!((fs.m()[1] - 9.0 / 12.0).abs() < 1e-9);
        assert!((fs.u()[0] - 2.0 / 12.0).abs() < 1e-9);
        assert!((fs.u()[1] - 3.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn estimation_requires_both_classes() {
        assert!(FellegiSunter::estimate_labeled(&[], &[vec![1.0]], 0.5).is_err());
        assert!(FellegiSunter::estimate_labeled(&[vec![1.0]], &[], 0.5).is_err());
    }

    #[test]
    fn optimal_thresholds_classify_sensibly() {
        let fs = model();
        let th = fs.optimal_thresholds(0.05, 0.05).unwrap();
        assert!(th.lambda() <= th.mu());
        // The all-agreement pattern must be a match under loose bounds.
        assert_eq!(th.classify(fs.weight(&[1.0, 1.0])), MatchClass::Match);
        // The all-disagreement pattern must be a non-match.
        assert_eq!(th.classify(fs.weight(&[0.0, 0.0])), MatchClass::NonMatch);
    }

    #[test]
    fn tighter_bounds_widen_the_review_band() {
        let fs = FellegiSunter::new([0.95, 0.9, 0.85], [0.05, 0.1, 0.15], 0.8).unwrap();
        let loose = fs.optimal_thresholds(0.2, 0.2).unwrap();
        let tight = fs.optimal_thresholds(0.01, 0.01).unwrap();
        // Tight error bounds exclude more patterns from M and U: the match
        // threshold rises and the non-match threshold falls (or stays).
        assert!(tight.mu() >= loose.mu() - 1e-12);
        assert!(tight.lambda() <= loose.lambda() + 1e-12);
    }

    #[test]
    fn zero_bounds_yield_extreme_thresholds() {
        let fs = model();
        let th = fs.optimal_thresholds(0.0, 0.0).unwrap();
        // Nothing may be auto-classified: everything is a possible match.
        assert_eq!(th.classify(fs.weight(&[1.0, 1.0])), MatchClass::Possible);
        assert_eq!(th.classify(fs.weight(&[0.0, 0.0])), MatchClass::Possible);
    }

    #[test]
    fn too_many_attributes_refused() {
        let n = MAX_PATTERN_ARITY + 1;
        let fs = FellegiSunter::new(vec![0.9; n], vec![0.1; n], 0.8).unwrap();
        assert!(matches!(
            fs.optimal_thresholds(0.1, 0.1),
            Err(DecisionError::TooManyAttributes { .. })
        ));
    }
}
