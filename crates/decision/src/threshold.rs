//! Classification of similarity degrees into M / P / U (Fig. 2 of the
//! paper): match if the degree reaches `T_μ`, non-match below `T_λ`,
//! possible match (clerical review) in between.

use crate::error::DecisionError;

/// The decision for one tuple pair: the matching value
/// `η(t₁,t₂) ∈ {m, p, u}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchClass {
    /// `m` — the pair is a duplicate (set M).
    Match,
    /// `p` — possible match, requires clerical review (set P).
    Possible,
    /// `u` — non-match (set U).
    NonMatch,
}

impl MatchClass {
    /// The paper's numeric encoding for the expected-matching-result
    /// derivation: `m = 2, p = 1, u = 0`.
    pub fn as_score(self) -> f64 {
        match self {
            MatchClass::Match => 2.0,
            MatchClass::Possible => 1.0,
            MatchClass::NonMatch => 0.0,
        }
    }
}

impl std::fmt::Display for MatchClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = match self {
            MatchClass::Match => 'm',
            MatchClass::Possible => 'p',
            MatchClass::NonMatch => 'u',
        };
        write!(f, "{c}")
    }
}

/// The threshold pair `(T_λ, T_μ)` of Fig. 2. With `T_λ = T_μ` the possible
/// class vanishes and the classifier is binary (common for knowledge-based
/// techniques, which "usually do not consider P").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    lambda: f64,
    mu: f64,
}

impl Thresholds {
    /// Two-threshold classifier; requires `lambda ≤ mu`.
    pub fn new(lambda: f64, mu: f64) -> Result<Self, DecisionError> {
        if !(lambda.is_finite() && mu.is_finite()) || lambda > mu {
            return Err(DecisionError::InvalidThresholds { lambda, mu });
        }
        Ok(Self { lambda, mu })
    }

    /// Single-threshold (binary) classifier: `sim ≥ t` is a match.
    pub fn single(t: f64) -> Result<Self, DecisionError> {
        Self::new(t, t)
    }

    /// The non-match threshold `T_λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The match threshold `T_μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Classify a similarity degree:
    /// `sim ≥ T_μ → m`, `sim < T_λ → u`, otherwise `p`.
    pub fn classify(&self, sim: f64) -> MatchClass {
        if sim >= self.mu {
            MatchClass::Match
        } else if sim < self.lambda {
            MatchClass::NonMatch
        } else {
            MatchClass::Possible
        }
    }

    /// Whether a possible-match band exists (`T_λ < T_μ`).
    pub fn has_possible_band(&self) -> bool {
        self.lambda < self.mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_decision_based_classification() {
        // Paper: T_λ = 0.4, T_μ = 0.7 on alternative-pair similarities
        // 11/15 → m, 7/15 → p, 4/15 → u.
        let t = Thresholds::new(0.4, 0.7).unwrap();
        assert_eq!(t.classify(11.0 / 15.0), MatchClass::Match);
        assert_eq!(t.classify(7.0 / 15.0), MatchClass::Possible);
        assert_eq!(t.classify(4.0 / 15.0), MatchClass::NonMatch);
    }

    #[test]
    fn boundary_semantics() {
        let t = Thresholds::new(0.4, 0.7).unwrap();
        assert_eq!(t.classify(0.7), MatchClass::Match); // ≥ T_μ
        assert_eq!(t.classify(0.4), MatchClass::Possible); // ≥ T_λ, < T_μ
        assert_eq!(t.classify(0.3999), MatchClass::NonMatch);
        assert!(t.has_possible_band());
    }

    #[test]
    fn single_threshold_is_binary() {
        let t = Thresholds::single(0.5).unwrap();
        assert!(!t.has_possible_band());
        assert_eq!(t.classify(0.5), MatchClass::Match);
        assert_eq!(t.classify(0.4999), MatchClass::NonMatch);
    }

    #[test]
    fn invalid_thresholds_rejected() {
        assert!(Thresholds::new(0.8, 0.2).is_err());
        assert!(Thresholds::new(f64::NAN, 0.5).is_err());
        assert!(Thresholds::new(0.1, f64::INFINITY).is_err());
    }

    #[test]
    fn score_encoding() {
        assert_eq!(MatchClass::Match.as_score(), 2.0);
        assert_eq!(MatchClass::Possible.as_score(), 1.0);
        assert_eq!(MatchClass::NonMatch.as_score(), 0.0);
    }

    #[test]
    fn display() {
        assert_eq!(MatchClass::Match.to_string(), "m");
        assert_eq!(MatchClass::Possible.to_string(), "p");
        assert_eq!(MatchClass::NonMatch.to_string(), "u");
    }
}
