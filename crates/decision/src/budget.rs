//! Threshold decomposition into **running attribute budgets**: the decision
//! layer's half of bounded evaluation.
//!
//! The similarity-based model (Fig. 6, left, with the weighted-sum φ and
//! the Eq. 6 expectation ϑ) is linear in every attribute similarity:
//!
//! ```text
//! sim(t₁,t₂) = Σᵢⱼ w₁ᵢ·w₂ⱼ · Σₐ wₐ · cᵢⱼ[a]
//! ```
//!
//! with every `cᵢⱼ[a] ∈ [0,1]`. After any prefix of the terms has been
//! evaluated exactly, the rest is bracketed by `[0, remaining weight]` —
//! so the classification thresholds `(T_λ, T_μ)` decompose into running
//! budgets: the moment the certified interval clears `T_μ` the pair is a
//! match, the moment it drops below `T_λ` it is a non-match, and the
//! moment it is pinned inside `[T_λ, T_μ)` it is a possible match — no
//! further attribute needs to be looked at. [`classify_comparison_bounded`]
//! walks alternative pairs (heaviest conditioned weight first is not
//! required — the mass bound holds in any order) and, inside each, the
//! attributes in **descending φ-weight order**, handing every attribute
//! evaluation the cut interval that would settle the band (the φ-level and
//! per-attribute cut derivations of `phi_cuts` / `phi_bounded`); the
//! attribute evaluator answers with a
//! [`BoundedSim`] — typically produced by the bounded Eq. 5 loop of
//! `probdedup-matching`, which in turn hands per-term cuts to the banded
//! text kernels. Thresholds flow *down* the whole stack; exact values flow
//! up only as far as they are needed.
//!
//! **Certificate margin.** All cut derivations happen in floating point,
//! and the bounded evaluation sums terms in a different order than the
//! exact path, so the two can disagree by rounding (≲1e-12). Certificates
//! are therefore taken against thresholds tightened by [`CERT_MARGIN`]
//! (1e-9, three orders of magnitude above the worst observed drift): a
//! certified class can only differ from the exact classification if the
//! exact similarity lies within the margin of a threshold — in which case
//! the budgets never certify and the walk runs to completion. Property
//! tests (`tests/bounded_classification.rs` at the workspace root) pin
//! bounded-equals-exact classification across generated schemas with all
//! three Fellegi–Sunter bands populated.

use probdedup_matching::bounded::BoundedSim;

use crate::combine::WeightedSum;
use crate::threshold::{MatchClass, Thresholds};

/// Safety margin for certificates: bounds are only trusted when they clear
/// a threshold by at least this much, so floating-point drift between the
/// bounded and exact summation orders can never flip a classification.
pub const CERT_MARGIN: f64 = 1e-9;

/// Which bound tier disposed of a pair (reported per pair by
/// [`classify_comparison_bounded`] and aggregated into the pipeline's
/// matching stats / the bench JSON).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundedTier {
    /// Certified `≥ T_μ` before the evaluation finished.
    EarlyMatch,
    /// Certified `< T_λ` before the evaluation finished.
    EarlyNonMatch,
    /// Certified inside `[T_λ, T_μ)` before the evaluation finished.
    EarlyPossible,
    /// Ran to completion; classified from the accumulated exact value.
    Exhausted,
}

/// A bounded classification outcome.
///
/// `similarity` is a **certified representative**, not the exact degree:
/// a certified lower bound for (early) matches, a certified upper bound
/// for non-matches, and the accumulated exact value otherwise. It always
/// classifies (via the same thresholds) to `class` — consumers that need
/// the exact degree must run the exact path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedDecision {
    /// The matching value η.
    pub class: MatchClass,
    /// A certified representative similarity (see the type docs).
    pub similarity: f64,
    /// Which bound settled the pair.
    pub tier: BoundedTier,
}

/// The decomposed thresholds: φ weights in descending processing order
/// with suffix sums (best-possible-remaining contributions), plus the
/// margin-tightened classification cuts.
#[derive(Debug, Clone)]
pub struct AttributeBudgets {
    /// Attribute indices, heaviest φ weight first.
    order: Vec<usize>,
    /// φ weight per attribute (original indexing).
    weights: Vec<f64>,
    /// `suffix[pos]` = Σ of the weights of `order[pos+1..]` — the maximum
    /// contribution every attribute after position `pos` can still add.
    suffix: Vec<f64>,
    /// Σ of all weights: the maximum φ value on the unit hypercube.
    total: f64,
    thresholds: Thresholds,
}

impl AttributeBudgets {
    /// Decompose `thresholds` over the weighted-sum φ. Attributes are
    /// ordered by descending weight so the heaviest evidence is consumed
    /// first and the band settles as early as possible.
    pub fn new(phi: &WeightedSum, thresholds: Thresholds) -> Self {
        let weights = phi.weights().to_vec();
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| {
            weights[b]
                .partial_cmp(&weights[a])
                .expect("finite weights")
                .then(a.cmp(&b))
        });
        let mut suffix = vec![0.0; order.len()];
        let mut rest = 0.0;
        for pos in (0..order.len()).rev() {
            suffix[pos] = rest;
            rest += weights[order[pos]];
        }
        Self {
            order,
            weights,
            suffix,
            total: rest,
            thresholds,
        }
    }

    /// Number of attributes covered.
    pub fn arity(&self) -> usize {
        self.weights.len()
    }

    /// The thresholds being decomposed.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// The φ-level cut interval for one alternative pair, given the exact
    /// accumulated contribution `acc` of the pairs already evaluated, this
    /// pair's conditioned weight `w`, and the total conditioned weight
    /// `rem` of the pairs still to come: a φ value `≥ hi_cut` certifies a
    /// match on its own, a φ value `< lo_cut` certifies a non-match even
    /// if everything remaining scores perfectly.
    fn phi_cuts(&self, acc: f64, w: f64, rem: f64) -> (f64, f64) {
        let hi_cut = (self.thresholds.mu() + CERT_MARGIN - acc) / w;
        let lo_cut = (self.thresholds.lambda() - CERT_MARGIN - acc - rem * self.total) / w;
        (lo_cut, hi_cut)
    }
}

/// Bounded φ over one comparison vector: attributes in descending-weight
/// order, each evaluated against the cut interval that would settle this
/// vector's verdict. `eval(attr, lo, hi)` produces the attribute's
/// [`BoundedSim`].
fn phi_bounded(
    budgets: &AttributeBudgets,
    lo: f64,
    hi: f64,
    mut eval: impl FnMut(usize, f64, f64) -> BoundedSim,
) -> BoundedSim {
    let mut acc = 0.0;
    for (pos, &attr) in budgets.order.iter().enumerate() {
        let wa = budgets.weights[attr];
        if wa <= 0.0 {
            continue;
        }
        let rest = budgets.suffix[pos];
        // s ≥ (hi − acc)/wa certifies φ ≥ hi even with zero remaining;
        // s < (lo − acc − rest)/wa certifies φ < lo even with perfect
        // remaining attributes.
        let hi_cut = (hi - acc) / wa;
        let lo_cut = (lo - acc - rest) / wa;
        match eval(attr, lo_cut, hi_cut) {
            BoundedSim::Above => return BoundedSim::Above,
            BoundedSim::Below => return BoundedSim::Below,
            BoundedSim::Exact(s) => acc += wa * s,
        }
        if acc >= hi {
            return BoundedSim::Above;
        }
        if acc + rest < lo {
            return BoundedSim::Below;
        }
    }
    BoundedSim::Exact(acc)
}

/// Bounded classification of one x-tuple pair under the linear
/// similarity-based model (weighted-sum φ + Eq. 6 expectation ϑ +
/// thresholds).
///
/// `w1`/`w2` are the **conditioned** alternative probabilities of the two
/// x-tuples (each summing to 1 — see
/// [`normalized_alternative_probs`](probdedup_model::condition::normalized_alternative_probs)),
/// and `eval(i, j, attr, lo, hi)` evaluates attribute `attr` of
/// alternative pair `(i, j)` against the cut interval `[lo, hi)` —
/// typically `interned_pvalue_similarity_bounded` or
/// `pvalue_similarity_bounded` from `probdedup-matching`.
///
/// Classification is **identical** to running the exact model and
/// thresholding, as long as the exact similarity does not sit within
/// [`CERT_MARGIN`] of a threshold (where certificates abstain and the
/// accumulated value decides; the accumulated value can differ from the
/// exact path's by summation-order rounding ≪ the margin).
pub fn classify_comparison_bounded(
    w1: &[f64],
    w2: &[f64],
    budgets: &AttributeBudgets,
    mut eval: impl FnMut(usize, usize, usize, f64, f64) -> BoundedSim,
) -> BoundedDecision {
    let thresholds = budgets.thresholds;
    let (lambda, mu) = (thresholds.lambda(), thresholds.mu());
    let mu_cut = mu + CERT_MARGIN;
    let lambda_cut = lambda - CERT_MARGIN;
    let mut acc = 0.0;
    let mut rem = 1.0;
    for (i, &wi) in w1.iter().enumerate() {
        for (j, &wj) in w2.iter().enumerate() {
            let w = wi * wj;
            rem -= w;
            if w <= 0.0 {
                continue;
            }
            let (lo_cut, hi_cut) = budgets.phi_cuts(acc, w, rem.max(0.0));
            match phi_bounded(budgets, lo_cut, hi_cut, |attr, lo, hi| {
                eval(i, j, attr, lo, hi)
            }) {
                // φ ≥ hi_cut ⟹ total ≥ acc + w·hi_cut = μ + margin.
                BoundedSim::Above => {
                    return BoundedDecision {
                        class: MatchClass::Match,
                        similarity: acc + w * hi_cut,
                        tier: BoundedTier::EarlyMatch,
                    }
                }
                // φ < lo_cut ⟹ total < acc + w·lo_cut + rem·W = λ − margin.
                BoundedSim::Below => {
                    return BoundedDecision {
                        class: MatchClass::NonMatch,
                        similarity: (acc + w * lo_cut + rem.max(0.0) * budgets.total).max(0.0),
                        tier: BoundedTier::EarlyNonMatch,
                    }
                }
                BoundedSim::Exact(phi) => acc += w * phi,
            }
            // Inter-pair settlement on the certified interval
            // [acc, acc + rem·W].
            if acc >= mu_cut {
                return BoundedDecision {
                    class: MatchClass::Match,
                    similarity: acc,
                    tier: BoundedTier::EarlyMatch,
                };
            }
            let upper = acc + rem.max(0.0) * budgets.total;
            if upper < lambda_cut {
                return BoundedDecision {
                    class: MatchClass::NonMatch,
                    similarity: upper.max(0.0),
                    tier: BoundedTier::EarlyNonMatch,
                };
            }
            if thresholds.has_possible_band()
                && acc >= lambda + CERT_MARGIN
                && upper < mu - CERT_MARGIN
            {
                return BoundedDecision {
                    class: MatchClass::Possible,
                    similarity: acc,
                    tier: BoundedTier::EarlyPossible,
                };
            }
        }
    }
    BoundedDecision {
        class: thresholds.classify(acc),
        similarity: acc,
        tier: BoundedTier::Exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budgets() -> AttributeBudgets {
        // The experiments' weights: heaviest first order is [0, 2, 1, 3].
        AttributeBudgets::new(
            &WeightedSum::normalized([3.0, 1.0, 1.5, 0.5]).unwrap(),
            Thresholds::new(0.72, 0.82).unwrap(),
        )
    }

    /// Exact reference: Σᵢⱼ wᵢⱼ Σₐ wₐ·cᵢⱼ[a], classified.
    fn exact_class(
        w1: &[f64],
        w2: &[f64],
        vectors: &dyn Fn(usize, usize) -> Vec<f64>,
        b: &AttributeBudgets,
    ) -> (MatchClass, f64) {
        let mut total = 0.0;
        for (i, &wi) in w1.iter().enumerate() {
            for (j, &wj) in w2.iter().enumerate() {
                let c = vectors(i, j);
                let phi: f64 = c.iter().zip(&b.weights).map(|(x, w)| x * w).sum();
                total += wi * wj * phi;
            }
        }
        (b.thresholds.classify(total), total)
    }

    fn run(
        w1: &[f64],
        w2: &[f64],
        vectors: &dyn Fn(usize, usize) -> Vec<f64>,
        b: &AttributeBudgets,
    ) -> BoundedDecision {
        classify_comparison_bounded(w1, w2, b, |i, j, attr, lo, hi| {
            let s = vectors(i, j)[attr];
            // An adversarially-certifying evaluator: certify whenever the
            // cuts allow it, exposing any unsound cut derivation.
            if s >= hi {
                BoundedSim::Above
            } else if s < lo {
                BoundedSim::Below
            } else {
                BoundedSim::Exact(s)
            }
        })
    }

    #[test]
    fn processing_order_is_descending_weight() {
        let b = budgets();
        assert_eq!(b.order, vec![0, 2, 1, 3]);
        assert!((b.total - 1.0).abs() < 1e-12);
        assert!((b.suffix[0] - 0.5).abs() < 1e-12);
        assert_eq!(b.arity(), 4);
    }

    #[test]
    fn certified_classes_match_exact_on_grid() {
        let b = budgets();
        // Sweep single-alternative comparison vectors over a value grid.
        let grid = [0.0, 0.2, 0.45, 0.6, 0.75, 0.8, 0.85, 0.95, 1.0];
        for &a0 in &grid {
            for &a1 in &grid {
                for &a2 in &grid {
                    for &a3 in &grid {
                        let v = vec![a0, a1, a2, a3];
                        let vectors = move |_: usize, _: usize| v.clone();
                        let got = run(&[1.0], &[1.0], &vectors, &b);
                        let (want, sim) = exact_class(&[1.0], &[1.0], &vectors, &b);
                        if (sim - 0.72).abs() < CERT_MARGIN || (sim - 0.82).abs() < CERT_MARGIN {
                            // Inside the certificate margin the documented
                            // guarantee is summation-order agreement, not
                            // bit-identical ties; the property tests choose
                            // thresholds away from observed values.
                            continue;
                        }
                        assert_eq!(
                            got.class, want,
                            "vector {a0}/{a1}/{a2}/{a3} (exact sim {sim})"
                        );
                        // The representative similarity classifies the same.
                        assert_eq!(b.thresholds.classify(got.similarity), got.class);
                    }
                }
            }
        }
    }

    #[test]
    fn multi_alternative_pairs_settle_early() {
        let b = budgets();
        // Three alternatives vs two: a clear non-match everywhere.
        let vectors = |_: usize, _: usize| vec![0.1, 0.2, 0.1, 0.0];
        let w1 = [0.5, 0.3, 0.2];
        let w2 = [0.7, 0.3];
        let got = run(&w1, &w2, &vectors, &b);
        assert_eq!(got.class, MatchClass::NonMatch);
        assert_eq!(got.tier, BoundedTier::EarlyNonMatch);
        // And a clear match settles as EarlyMatch.
        let ones = |_: usize, _: usize| vec![1.0, 1.0, 1.0, 1.0];
        let got = run(&w1, &w2, &ones, &b);
        assert_eq!(got.class, MatchClass::Match);
        assert_eq!(got.tier, BoundedTier::EarlyMatch);
    }

    #[test]
    fn possible_band_settles_without_exhaustion() {
        // Wide possible band, flat vector pinned inside it.
        let b = AttributeBudgets::new(
            &WeightedSum::normalized([1.0, 1.0]).unwrap(),
            Thresholds::new(0.2, 0.9).unwrap(),
        );
        // Two equally-weighted alternatives on one side: after the first
        // alternative pair the interval is [0.25, 0.75] ⊂ [0.2, 0.9).
        let vectors = |_: usize, _: usize| vec![0.5, 0.5];
        let got = run(&[0.5, 0.5], &[1.0], &vectors, &b);
        assert_eq!(got.class, MatchClass::Possible);
        assert_eq!(got.tier, BoundedTier::EarlyPossible);
    }

    #[test]
    fn abstaining_evaluator_degrades_to_exact() {
        // An evaluator that never certifies must still classify correctly.
        let b = budgets();
        let vectors = |_: usize, _: usize| vec![0.9, 0.8, 0.7, 0.6];
        let got = classify_comparison_bounded(&[1.0], &[1.0], &b, |_, _, attr, _, _| {
            BoundedSim::Exact(vectors(0, 0)[attr])
        });
        let (want, sim) = exact_class(&[1.0], &[1.0], &vectors, &b);
        assert_eq!(got.class, want);
        assert!((got.similarity - sim).abs() < 1e-12);
    }

    #[test]
    fn binary_thresholds_never_emit_possible() {
        let b = AttributeBudgets::new(
            &WeightedSum::normalized([1.0]).unwrap(),
            Thresholds::single(0.5).unwrap(),
        );
        for s in [0.0, 0.49, 0.5, 0.51, 1.0] {
            let vectors = move |_: usize, _: usize| vec![s];
            let got = run(&[1.0], &[1.0], &vectors, &b);
            assert_ne!(got.class, MatchClass::Possible, "s = {s}");
            assert_eq!(got.class, b.thresholds.classify(s), "s = {s}");
        }
    }
}
