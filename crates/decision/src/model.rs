//! The certain-data decision model of Fig. 3: φ on the comparison vector,
//! then threshold classification — as a reusable trait with the paper's
//! three families as implementations.

use std::sync::Arc;

use crate::combine::CombinationFunction;
use crate::fellegi_sunter::FellegiSunter;
use crate::rules::RuleSet;
use crate::threshold::{MatchClass, Thresholds};

/// A decision model for (comparison vectors of) tuple pairs — Fig. 3's
/// two-step scheme. `Common decision models can be used without any
/// adaption` for the dependency-free probabilistic model (Section IV-A):
/// uncertainty is already absorbed into the comparison vector.
pub trait DecisionModel: Send + Sync {
    /// Step 1: the similarity degree `sim(t₁,t₂) = φ(c⃗)`.
    fn similarity(&self, c: &[f64]) -> f64;

    /// The thresholds used in step 2.
    fn thresholds(&self) -> Thresholds;

    /// Steps 1+2: similarity and classification `η(t₁,t₂)`.
    fn decide(&self, c: &[f64]) -> (f64, MatchClass) {
        let s = self.similarity(c);
        (s, self.thresholds().classify(s))
    }

    /// Short human-readable name.
    fn name(&self) -> &str {
        "decision-model"
    }
}

impl<T: DecisionModel + ?Sized> DecisionModel for Arc<T> {
    fn similarity(&self, c: &[f64]) -> f64 {
        (**self).similarity(c)
    }
    fn thresholds(&self) -> Thresholds {
        (**self).thresholds()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// φ + thresholds: the generic model of Fig. 3 with an arbitrary
/// combination function.
#[derive(Clone)]
pub struct SimpleModel {
    phi: Arc<dyn CombinationFunction>,
    thresholds: Thresholds,
}

impl SimpleModel {
    /// Build from a combination function and thresholds.
    pub fn new(phi: Arc<dyn CombinationFunction>, thresholds: Thresholds) -> Self {
        Self { phi, thresholds }
    }
}

impl DecisionModel for SimpleModel {
    fn similarity(&self, c: &[f64]) -> f64 {
        self.phi.combine(c)
    }

    fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    fn name(&self) -> &str {
        "simple"
    }
}

/// Knowledge-based model: a rule set's combined certainty factor classified
/// against a user threshold (Fig. 1; the P class is usually unused, so a
/// single threshold is the common configuration).
#[derive(Clone)]
pub struct KnowledgeModel {
    rules: Arc<RuleSet>,
    thresholds: Thresholds,
}

impl KnowledgeModel {
    /// Build from rules and a decision threshold.
    pub fn new(rules: RuleSet, thresholds: Thresholds) -> Self {
        Self {
            rules: Arc::new(rules),
            thresholds,
        }
    }
}

impl DecisionModel for KnowledgeModel {
    fn similarity(&self, c: &[f64]) -> f64 {
        self.rules.certainty(c)
    }

    fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    fn name(&self) -> &str {
        "knowledge-based"
    }
}

/// Probabilistic model: the Fellegi–Sunter matching weight `R` classified
/// against `T_λ`/`T_μ` (which live on the **weight scale**, not `[0,1]`).
#[derive(Clone)]
pub struct FsModel {
    fs: Arc<FellegiSunter>,
    thresholds: Thresholds,
}

impl FsModel {
    /// Build from a fitted Fellegi–Sunter model and weight-scale thresholds
    /// (e.g. from [`FellegiSunter::optimal_thresholds`]).
    pub fn new(fs: FellegiSunter, thresholds: Thresholds) -> Self {
        Self {
            fs: Arc::new(fs),
            thresholds,
        }
    }

    /// The underlying Fellegi–Sunter parameters.
    pub fn fellegi_sunter(&self) -> &FellegiSunter {
        &self.fs
    }
}

impl DecisionModel for FsModel {
    fn similarity(&self, c: &[f64]) -> f64 {
        self.fs.weight(c)
    }

    fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    fn name(&self) -> &str {
        "fellegi-sunter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::WeightedSum;
    use crate::rules::{Condition, Rule};

    #[test]
    fn simple_model_matches_paper_example() {
        let phi = Arc::new(WeightedSum::new([0.8, 0.2]).unwrap());
        let model = SimpleModel::new(phi, Thresholds::new(0.4, 0.7).unwrap());
        let (sim, class) = model.decide(&[0.9, 53.0 / 90.0]);
        assert!((sim - 377.0 / 450.0).abs() < 1e-12);
        assert_eq!(class, MatchClass::Match);
        assert_eq!(model.name(), "simple");
    }

    #[test]
    fn knowledge_model_uses_certainty_factor() {
        let rules = RuleSet::new()
            .with_rule(Rule::new(vec![Condition::gt(0, 0.7), Condition::gt(1, 0.5)], 0.8).unwrap());
        let model = KnowledgeModel::new(rules, Thresholds::single(0.75).unwrap());
        // Fig. 1 rule fires → certainty 0.8 ≥ 0.75 → match.
        let (sim, class) = model.decide(&[0.9, 0.59]);
        assert!((sim - 0.8).abs() < 1e-12);
        assert_eq!(class, MatchClass::Match);
        // Rule does not fire → certainty 0 → non-match.
        let (_, class) = model.decide(&[0.1, 0.1]);
        assert_eq!(class, MatchClass::NonMatch);
    }

    #[test]
    fn fs_model_classifies_on_weight_scale() {
        let fs = FellegiSunter::new([0.9, 0.8], [0.1, 0.2], 0.8).unwrap();
        let th = Thresholds::new(0.5, 10.0).unwrap();
        let model = FsModel::new(fs, th);
        // Both agree: weight 36 > 10 → match.
        assert_eq!(model.decide(&[1.0, 1.0]).1, MatchClass::Match);
        // Both disagree: 1/36 < 0.5 → non-match.
        assert_eq!(model.decide(&[0.0, 0.0]).1, MatchClass::NonMatch);
        // Mixed: 2.25 in the review band.
        assert_eq!(model.decide(&[1.0, 0.0]).1, MatchClass::Possible);
        assert_eq!(model.fellegi_sunter().arity(), 2);
    }

    #[test]
    fn trait_object_via_arc() {
        let phi = Arc::new(WeightedSum::mean(2).unwrap());
        let model: Arc<dyn DecisionModel> =
            Arc::new(SimpleModel::new(phi, Thresholds::single(0.5).unwrap()));
        assert_eq!(model.decide(&[1.0, 1.0]).1, MatchClass::Match);
    }
}
