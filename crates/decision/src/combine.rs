//! Combination functions φ : \[0,1\]ⁿ → ℝ (Eq. 3 of the paper): collapse a
//! comparison vector into a single similarity degree.

use crate::error::DecisionError;

/// A combination function φ. Implementations taking weighted averages of a
/// comparison vector in `[0,1]ⁿ` are *normalized* (output in `[0,1]`,
/// suitable for knowledge-based techniques); others (e.g. matching weights)
/// are not.
pub trait CombinationFunction: Send + Sync {
    /// Collapse the comparison vector `c⃗`.
    fn combine(&self, c: &[f64]) -> f64;

    /// Whether the output is guaranteed to stay in `[0, 1]` for inputs in
    /// the unit hypercube.
    fn is_normalized(&self) -> bool {
        true
    }

    /// Short human-readable name.
    fn name(&self) -> &str {
        "phi"
    }
}

impl<T: CombinationFunction + ?Sized> CombinationFunction for &T {
    fn combine(&self, c: &[f64]) -> f64 {
        (**self).combine(c)
    }
    fn is_normalized(&self) -> bool {
        (**self).is_normalized()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<T: CombinationFunction + ?Sized> CombinationFunction for std::sync::Arc<T> {
    fn combine(&self, c: &[f64]) -> f64 {
        (**self).combine(c)
    }
    fn is_normalized(&self) -> bool {
        (**self).is_normalized()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Weighted sum `φ(c⃗) = Σ wᵢ·cᵢ`. With weights summing to 1 this is the
/// paper's running example `φ(c⃗) = 0.8·c₁ + 0.2·c₂` (Section IV-A).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedSum {
    weights: Vec<f64>,
}

impl WeightedSum {
    /// Weights as given (finite, non-negative, not all zero). Output is
    /// normalized iff the weights sum to ≤ 1.
    pub fn new<I: IntoIterator<Item = f64>>(weights: I) -> Result<Self, DecisionError> {
        let weights: Vec<f64> = weights.into_iter().collect();
        if weights.is_empty()
            || weights.iter().any(|w| !w.is_finite() || *w < 0.0)
            || weights.iter().sum::<f64>() == 0.0
        {
            return Err(DecisionError::InvalidWeights);
        }
        Ok(Self { weights })
    }

    /// Weights rescaled to sum to 1 (always normalized output).
    pub fn normalized<I: IntoIterator<Item = f64>>(weights: I) -> Result<Self, DecisionError> {
        let mut w = Self::new(weights)?;
        let total: f64 = w.weights.iter().sum();
        for x in &mut w.weights {
            *x /= total;
        }
        Ok(w)
    }

    /// Equal weights over `n` attributes (the arithmetic mean).
    pub fn mean(n: usize) -> Result<Self, DecisionError> {
        if n == 0 {
            return Err(DecisionError::InvalidWeights);
        }
        Self::new(std::iter::repeat_n(1.0 / n as f64, n))
    }

    /// The weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl CombinationFunction for WeightedSum {
    fn combine(&self, c: &[f64]) -> f64 {
        assert_eq!(c.len(), self.weights.len(), "comparison vector arity");
        self.weights.iter().zip(c).map(|(w, x)| w * x).sum()
    }

    fn is_normalized(&self) -> bool {
        self.weights.iter().sum::<f64>() <= 1.0 + 1e-12
    }

    fn name(&self) -> &str {
        "weighted-sum"
    }
}

/// Weighted product `φ(c⃗) = Π cᵢ^{wᵢ}` — a strict conjunction: any
/// single attribute similarity of 0 zeroes the whole degree.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedProduct {
    weights: Vec<f64>,
}

impl WeightedProduct {
    /// Weights as given (finite, non-negative, not all zero).
    pub fn new<I: IntoIterator<Item = f64>>(weights: I) -> Result<Self, DecisionError> {
        let weights: Vec<f64> = weights.into_iter().collect();
        if weights.is_empty()
            || weights.iter().any(|w| !w.is_finite() || *w < 0.0)
            || weights.iter().sum::<f64>() == 0.0
        {
            return Err(DecisionError::InvalidWeights);
        }
        Ok(Self { weights })
    }
}

impl CombinationFunction for WeightedProduct {
    fn combine(&self, c: &[f64]) -> f64 {
        assert_eq!(c.len(), self.weights.len(), "comparison vector arity");
        self.weights
            .iter()
            .zip(c)
            .map(|(w, x)| if *w == 0.0 { 1.0 } else { x.powf(*w) })
            .product()
    }

    fn name(&self) -> &str {
        "weighted-product"
    }
}

/// `φ(c⃗) = min cᵢ` — the weakest link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinCombine;

impl CombinationFunction for MinCombine {
    fn combine(&self, c: &[f64]) -> f64 {
        c.iter().copied().fold(1.0, f64::min)
    }
    fn name(&self) -> &str {
        "min"
    }
}

/// `φ(c⃗) = max cᵢ` — the strongest signal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxCombine;

impl CombinationFunction for MaxCombine {
    fn combine(&self, c: &[f64]) -> f64 {
        c.iter().copied().fold(0.0, f64::max)
    }
    fn name(&self) -> &str {
        "max"
    }
}

/// Logistic combination `σ(b + Σ wᵢ·cᵢ)` — a trained linear classifier's
/// scoring function; normalized by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Logistic {
    weights: Vec<f64>,
    bias: f64,
}

impl Logistic {
    /// A logistic scorer with the given weights (any sign) and bias.
    pub fn new<I: IntoIterator<Item = f64>>(weights: I, bias: f64) -> Result<Self, DecisionError> {
        let weights: Vec<f64> = weights.into_iter().collect();
        if weights.is_empty() || weights.iter().any(|w| !w.is_finite()) || !bias.is_finite() {
            return Err(DecisionError::InvalidWeights);
        }
        Ok(Self { weights, bias })
    }
}

impl CombinationFunction for Logistic {
    fn combine(&self, c: &[f64]) -> f64 {
        assert_eq!(c.len(), self.weights.len(), "comparison vector arity");
        let z: f64 = self.bias + self.weights.iter().zip(c).map(|(w, x)| w * x).sum::<f64>();
        1.0 / (1.0 + (-z).exp())
    }

    fn name(&self) -> &str {
        "logistic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_weighted_sum() {
        // φ(c⃗) = 0.8·c₁ + 0.2·c₂ on c⃗ = (0.9, 53/90) → 377/450 ≈ 0.838.
        let phi = WeightedSum::new([0.8, 0.2]).unwrap();
        let sim = phi.combine(&[0.9, 53.0 / 90.0]);
        assert!((sim - 377.0 / 450.0).abs() < 1e-12);
        assert!((sim - 0.838).abs() < 1e-3); // the paper's rounded figure
        assert!(phi.is_normalized());
    }

    #[test]
    fn weighted_sum_validation() {
        assert!(WeightedSum::new(Vec::<f64>::new()).is_err());
        assert!(WeightedSum::new([0.5, -0.1]).is_err());
        assert!(WeightedSum::new([0.0, 0.0]).is_err());
        assert!(WeightedSum::new([f64::NAN]).is_err());
    }

    #[test]
    fn normalized_rescales() {
        let phi = WeightedSum::normalized([4.0, 1.0]).unwrap();
        assert!((phi.weights()[0] - 0.8).abs() < 1e-12);
        assert!(phi.is_normalized());
        let heavy = WeightedSum::new([4.0, 1.0]).unwrap();
        assert!(!heavy.is_normalized());
    }

    #[test]
    fn mean_combination() {
        let phi = WeightedSum::mean(4).unwrap();
        assert!((phi.combine(&[1.0, 0.0, 1.0, 0.0]) - 0.5).abs() < 1e-12);
        assert!(WeightedSum::mean(0).is_err());
    }

    #[test]
    fn weighted_product_is_conjunctive() {
        let phi = WeightedProduct::new([1.0, 1.0]).unwrap();
        assert_eq!(phi.combine(&[0.9, 0.0]), 0.0);
        assert!((phi.combine(&[0.5, 0.5]) - 0.25).abs() < 1e-12);
        // Zero weight neutralizes an attribute.
        let skip = WeightedProduct::new([1.0, 0.0]).unwrap();
        assert!((skip.combine(&[0.5, 0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        assert_eq!(MinCombine.combine(&[0.9, 0.2, 0.5]), 0.2);
        assert_eq!(MaxCombine.combine(&[0.9, 0.2, 0.5]), 0.9);
        assert_eq!(MinCombine.combine(&[]), 1.0);
        assert_eq!(MaxCombine.combine(&[]), 0.0);
    }

    #[test]
    fn logistic_monotone_and_normalized() {
        let phi = Logistic::new([2.0, 2.0], -2.0).unwrap();
        let low = phi.combine(&[0.1, 0.1]);
        let high = phi.combine(&[0.9, 0.9]);
        assert!(low < high);
        assert!((0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high));
        assert!(Logistic::new([f64::INFINITY], 0.0).is_err());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let phi = WeightedSum::new([1.0]).unwrap();
        let _ = phi.combine(&[0.5, 0.5]);
    }

    #[test]
    fn trait_objects_delegate() {
        let phi: Box<dyn CombinationFunction> = Box::new(WeightedSum::new([1.0]).unwrap());
        assert_eq!(phi.combine(&[0.7]), 0.7);
        let arc: std::sync::Arc<dyn CombinationFunction> = std::sync::Arc::new(MinCombine);
        assert_eq!(arc.combine(&[0.3, 0.6]), 0.3);
        assert_eq!(arc.name(), "min");
    }
}
