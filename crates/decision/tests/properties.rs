//! Property tests for decision models: combination-function bounds,
//! derivation laws, EM likelihood monotonicity and threshold coherence.

use std::sync::Arc;

use proptest::prelude::*;

use probdedup_decision::combine::{CombinationFunction, WeightedSum};
use probdedup_decision::derive_decision::{
    AlternativeDecisions, DecisionDerivation, ExpectedMatchingResult, MatchingWeightDerivation,
};
use probdedup_decision::derive_sim::{
    AlternativeSimilarities, ExpectedSimilarity, MaxSimilarity, MinSimilarity, SimilarityDerivation,
};
use probdedup_decision::em::{fit_em, EmConfig};
use probdedup_decision::fellegi_sunter::FellegiSunter;
use probdedup_decision::threshold::{MatchClass, Thresholds};
use probdedup_decision::xmodel::{SimilarityBasedModel, XTupleDecisionModel};
use probdedup_matching::compare_xtuples;
use probdedup_matching::vector::AttributeComparators;
use probdedup_model::schema::Schema;
use probdedup_model::xtuple::XTuple;
use probdedup_textsim::NormalizedHamming;

/// Strategy: normalized weights of the given arity.
fn arb_weights(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1u32..100, n).prop_map(|ws| {
        let total: u32 = ws.iter().sum();
        ws.into_iter()
            .map(|w| f64::from(w) / f64::from(total))
            .collect()
    })
}

/// Strategy: a comparison vector in [0,1]^n.
fn arb_cvec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..=1.0, n)
}

/// Strategy: an x-tuple over (name, job) with 1–3 alternatives.
fn arb_xtuple() -> impl Strategy<Value = XTuple> {
    proptest::collection::vec(("[a-c]{1,3}", "[a-c]{1,3}", 1u32..50), 1..4).prop_map(|alts| {
        let total: u32 = alts.iter().map(|(_, _, w)| *w).sum();
        let denom = f64::from(total) * 1.25;
        let s = Schema::new(["name", "job"]);
        let mut b = XTuple::builder(&s);
        for (n, j, w) in alts {
            b = b.alt(f64::from(w) / denom, [n, j]);
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Normalized weighted sums stay in [0,1] and are monotone in each input.
    #[test]
    fn weighted_sum_bounds_and_monotonicity(ws in arb_weights(3), c in arb_cvec(3), bump in 0.0f64..0.5) {
        let phi = WeightedSum::new(ws).unwrap();
        let base = phi.combine(&c);
        prop_assert!((0.0..=1.0).contains(&base));
        let mut c2 = c.clone();
        c2[0] = (c2[0] + bump).min(1.0);
        prop_assert!(phi.combine(&c2) >= base - 1e-12);
    }

    /// Expected similarity is squeezed between min and max derivations, and
    /// weights being a distribution means it is a convex combination.
    #[test]
    fn expectation_between_extremes(
        sims in proptest::collection::vec(0.0f64..=1.0, 4),
        w1 in arb_weights(2),
        w2 in arb_weights(2),
    ) {
        let input = AlternativeSimilarities { sims: &sims, w1: &w1, w2: &w2 };
        let e = ExpectedSimilarity.derive(&input);
        prop_assert!(e <= MaxSimilarity.derive(&input) + 1e-12);
        prop_assert!(e >= MinSimilarity.derive(&input) - 1e-12);
    }

    /// Decision-derivation masses partition: P(m) + P(p) + P(u) = 1, the
    /// expected matching result is 2·P(m) + P(p), and the matching weight is
    /// consistent with the masses.
    #[test]
    fn decision_derivation_consistency(
        classes_raw in proptest::collection::vec(0u8..3, 6),
        w1 in arb_weights(2),
        w2 in arb_weights(3),
    ) {
        let classes: Vec<MatchClass> = classes_raw
            .iter()
            .map(|&x| match x {
                0 => MatchClass::NonMatch,
                1 => MatchClass::Possible,
                _ => MatchClass::Match,
            })
            .collect();
        let input = AlternativeDecisions { classes: &classes, w1: &w1, w2: &w2 };
        let (pm, pp, pu) = input.class_masses();
        prop_assert!((pm + pp + pu - 1.0).abs() < 1e-9);
        let e = ExpectedMatchingResult::new().derive(&input);
        prop_assert!((e - (2.0 * pm + pp)).abs() < 1e-9);
        let w = MatchingWeightDerivation::new().derive(&input);
        if pu > 0.0 {
            prop_assert!((w - pm / pu).abs() < 1e-9);
        }
    }

    /// The similarity-based model is invariant under scaling all alternative
    /// probabilities of either tuple (membership must not matter).
    #[test]
    fn xmodel_membership_invariance(t1 in arb_xtuple(), t2 in arb_xtuple(), scale in 1u32..=10) {
        let s = Schema::new(["name", "job"]);
        let cmp = AttributeComparators::uniform(&s, NormalizedHamming::new());
        let model = SimilarityBasedModel::new(
            Arc::new(WeightedSum::new([0.8, 0.2]).unwrap()),
            Arc::new(ExpectedSimilarity),
            Thresholds::new(0.4, 0.7).unwrap(),
        );
        // Scale t1's alternatives down by `scale`.
        let factor = 1.0 / f64::from(scale);
        let mut b = XTuple::builder(&s);
        for alt in t1.alternatives() {
            b = b.alt_pvalues(alt.probability() * factor, alt.values().to_vec());
        }
        let t1_scaled = b.build().unwrap();
        let d1 = model.decide(&t1, &t2, &compare_xtuples(&t1, &t2, &cmp));
        let d2 = model.decide(&t1_scaled, &t2, &compare_xtuples(&t1_scaled, &t2, &cmp));
        prop_assert!((d1.similarity - d2.similarity).abs() < 1e-9);
        prop_assert_eq!(d1.class, d2.class);
    }

    /// Thresholds classify coherently: raising the similarity never demotes
    /// the class (ordering m > p > u is monotone in sim).
    #[test]
    fn threshold_monotonicity(lambda in 0.0f64..0.5, gap in 0.0f64..0.5, s1 in 0.0f64..=1.0, s2 in 0.0f64..=1.0) {
        let t = Thresholds::new(lambda, lambda + gap).unwrap();
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let rank = |c: MatchClass| match c {
            MatchClass::NonMatch => 0,
            MatchClass::Possible => 1,
            MatchClass::Match => 2,
        };
        prop_assert!(rank(t.classify(hi)) >= rank(t.classify(lo)));
    }

    /// Fellegi–Sunter weights factor multiplicatively over attributes.
    #[test]
    fn fs_weight_factorization(m in arb_weights(3), c in arb_cvec(3)) {
        // Use weights as (scaled) m-probabilities; fixed u.
        let ms: Vec<f64> = m.iter().map(|x| 0.5 + x / 2.0).collect();
        let us = vec![0.1, 0.2, 0.3];
        let fs = FellegiSunter::new(ms.clone(), us.clone(), 0.5).unwrap();
        let w = fs.weight(&c);
        let manual: f64 = (0..3)
            .map(|i| {
                let (mi, ui) = (ms[i].clamp(1e-6, 1.0 - 1e-6), us[i]);
                if c[i] >= 0.5 { mi / ui } else { (1.0 - mi) / (1.0 - ui) }
            })
            .product();
        prop_assert!((w - manual).abs() < 1e-9 * manual.max(1.0));
    }

    /// EM monotonically increases log-likelihood (checked via successive
    /// one-round fits against the same data) and always returns parameters
    /// in the open unit interval.
    #[test]
    fn em_likelihood_and_param_bounds(seed_rows in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 2), 8..40)) {
        let mut lls = Vec::new();
        for iters in [1usize, 2, 4, 8] {
            let cfg = EmConfig { max_iterations: iters, tolerance: 0.0, ..EmConfig::default() };
            let r = fit_em(&seed_rows, &cfg).unwrap();
            lls.push(r.log_likelihood);
            for &x in r.model.m().iter().chain(r.model.u().iter()) {
                prop_assert!(x > 0.0 && x < 1.0);
            }
        }
        for pair in lls.windows(2) {
            prop_assert!(pair[1] >= pair[0] - 1e-7, "log-likelihood decreased: {lls:?}");
        }
    }
}
