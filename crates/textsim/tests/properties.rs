//! Property-based tests for the similarity kernels: the [`StringComparator`]
//! laws (range, reflexivity, symmetry) plus kernel-specific invariants.

use proptest::prelude::*;

use probdedup_textsim::{
    DamerauLevenshtein, Exact, Jaro, JaroWinkler, Lcs, Levenshtein, MongeElkan, NormalizedHamming,
    ProfileSimilarity, QGram, SmithWaterman, SoundexComparator, StringComparator, TokenJaccard,
    TokenSort,
};

fn all_comparators() -> Vec<Box<dyn StringComparator>> {
    vec![
        Box::new(NormalizedHamming::new()),
        Box::new(NormalizedHamming::case_insensitive()),
        Box::new(Levenshtein::new()),
        Box::new(DamerauLevenshtein::new()),
        Box::new(Jaro::new()),
        Box::new(JaroWinkler::new()),
        Box::new(QGram::bigram(ProfileSimilarity::Dice)),
        Box::new(QGram::trigram(ProfileSimilarity::Jaccard)),
        Box::new(QGram::new(2, false, ProfileSimilarity::Cosine)),
        Box::new(QGram::new(2, false, ProfileSimilarity::Overlap)),
        Box::new(Lcs::new()),
        Box::new(SoundexComparator::strict()),
        Box::new(SoundexComparator::graded()),
        Box::new(MongeElkan::jaro_winkler()),
        Box::new(TokenJaccard::new()),
        Box::new(TokenSort::levenshtein()),
        Box::new(SmithWaterman::new()),
        Box::new(Exact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Law: similarity is within [0, 1] for arbitrary inputs.
    #[test]
    fn similarity_in_unit_interval(a in ".{0,24}", b in ".{0,24}") {
        for c in all_comparators() {
            let s = c.similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s), "{}({a:?},{b:?}) = {s}", c.name());
        }
    }

    /// Law: similarity(a, a) == 1.
    #[test]
    fn reflexivity(a in ".{0,24}") {
        for c in all_comparators() {
            let s = c.similarity(&a, &a);
            prop_assert!((s - 1.0).abs() < 1e-12, "{}({a:?},{a:?}) = {s}", c.name());
        }
    }

    /// Law: similarity(a, b) == similarity(b, a).
    #[test]
    fn symmetry(a in ".{0,24}", b in ".{0,24}") {
        for c in all_comparators() {
            let lhs = c.similarity(&a, &b);
            let rhs = c.similarity(&b, &a);
            prop_assert!((lhs - rhs).abs() < 1e-12, "{} asymmetric on {a:?}/{b:?}", c.name());
        }
    }

    /// Levenshtein satisfies the triangle inequality (on the raw distance).
    #[test]
    fn levenshtein_triangle(a in "[a-d]{0,10}", b in "[a-d]{0,10}", c in "[a-d]{0,10}") {
        let l = Levenshtein::new();
        let ab = l.distance(&a, &b);
        let bc = l.distance(&b, &c);
        let ac = l.distance(&a, &c);
        prop_assert!(ac <= ab + bc);
    }

    /// Damerau-Levenshtein is never larger than Levenshtein.
    #[test]
    fn damerau_le_levenshtein(a in ".{0,16}", b in ".{0,16}") {
        prop_assert!(DamerauLevenshtein::new().distance(&a, &b) <= Levenshtein::new().distance(&a, &b));
    }

    /// Hamming distance upper-bounds nothing below Levenshtein: the edit
    /// distance is at most the Hamming distance (substitutions alone realize
    /// the Hamming alignment).
    #[test]
    fn levenshtein_le_hamming(a in ".{0,16}", b in ".{0,16}") {
        let h = NormalizedHamming::new().distance(&a, &b);
        let l = Levenshtein::new().distance(&a, &b);
        prop_assert!(l <= h, "lev {l} > ham {h} for {a:?}/{b:?}");
    }

    /// Jaro-Winkler dominates Jaro.
    #[test]
    fn jw_ge_jaro(a in ".{0,16}", b in ".{0,16}") {
        prop_assert!(JaroWinkler::new().similarity(&a, &b) >= Jaro::new().similarity(&a, &b) - 1e-12);
    }

    /// LCS length is bounded by both string lengths and is monotone under
    /// concatenation of a common suffix.
    #[test]
    fn lcs_bounds(a in ".{0,12}", b in ".{0,12}", suffix in ".{0,6}") {
        let l = Lcs::new();
        let base = l.lcs_len(&a, &b);
        prop_assert!(base <= a.chars().count().min(b.chars().count()));
        let with_suffix = l.lcs_len(&format!("{a}{suffix}"), &format!("{b}{suffix}"));
        prop_assert!(with_suffix >= base + suffix.chars().count().min(suffix.chars().count()));
    }

    /// Exact is the indicator of equality.
    #[test]
    fn exact_indicator(a in ".{0,8}", b in ".{0,8}") {
        let s = Exact.similarity(&a, &b);
        prop_assert_eq!(s == 1.0, a == b);
    }

    /// Token-sort is invariant under token permutation (2-token case).
    #[test]
    fn token_sort_permutation_invariant(t1 in "[a-z]{1,6}", t2 in "[a-z]{1,6}") {
        let ts = TokenSort::levenshtein();
        let ab = format!("{t1} {t2}");
        let ba = format!("{t2} {t1}");
        prop_assert!((ts.similarity(&ab, &ba) - 1.0).abs() < 1e-12);
    }
}
