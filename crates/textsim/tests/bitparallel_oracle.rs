//! Exactness property tests for the bit-parallel kernel tier: the
//! word-level fast paths must produce the **same integers** (and hence
//! bitwise-identical normalized similarities) as the scalar reference
//! implementations they replace, on arbitrary Unicode strings up to
//! length 200 — comfortably past the 64/65-character Myers word boundary.

use proptest::prelude::*;

use probdedup_textsim::jaro::jaro_similarity_scalar;
use probdedup_textsim::{
    Jaro, JaroWinkler, Levenshtein, NormalizedHamming, PatternBits, PreparedText, StringComparator,
};

/// A character class mixing ASCII with multi-byte scalars so both the
/// byte-sliced fast paths and the Unicode fallbacks are exercised (the
/// shim's `.` only draws printable ASCII).
const MIXED: &str = "[aAbB xyz09àéüßñ日本語中]{0,200}";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Myers' bit-vector Levenshtein equals the two-row DP, printable ASCII.
    #[test]
    fn levenshtein_matches_scalar_ascii(a in ".{0,200}", b in ".{0,200}") {
        let l = Levenshtein::new();
        prop_assert_eq!(l.distance(&a, &b), l.distance_scalar(&a, &b), "{:?} vs {:?}", a, b);
    }

    /// Myers' bit-vector Levenshtein equals the two-row DP, mixed Unicode.
    #[test]
    fn levenshtein_matches_scalar_unicode(a in MIXED, b in MIXED) {
        let l = Levenshtein::new();
        prop_assert_eq!(l.distance(&a, &b), l.distance_scalar(&a, &b), "{:?} vs {:?}", a, b);
    }

    /// The prepared path (per-string Peq tables) is bitwise-identical to
    /// the unprepared similarity, with and without pattern bits.
    #[test]
    fn levenshtein_prepared_matches(a in MIXED, b in MIXED, bits in any::<bool>()) {
        let l = Levenshtein::new();
        let pa = PreparedText::new(&a, bits);
        let pb = PreparedText::new(&b, bits);
        prop_assert_eq!(
            l.similarity_prepared(&pa, &pb).to_bits(),
            l.similarity(&a, &b).to_bits(),
            "{:?} vs {:?} (bits: {})", a, b, bits
        );
    }

    /// Byte-sliced XOR+popcount Hamming equals the character walk.
    #[test]
    fn hamming_matches_scalar(a in ".{0,200}", b in MIXED) {
        for h in [NormalizedHamming::new(), NormalizedHamming::case_insensitive()] {
            prop_assert_eq!(h.distance(&a, &b), h.distance_scalar(&a, &b), "{:?} vs {:?}", a, b);
            prop_assert_eq!(h.distance(&a, &a), 0);
        }
    }

    /// The bitset Jaro scan is bitwise-identical to the scalar Jaro, and
    /// Jaro-Winkler (boost on top) inherits the equality.
    #[test]
    fn jaro_matches_scalar(a in ".{0,120}", b in MIXED) {
        prop_assert_eq!(
            Jaro::new().similarity(&a, &b).to_bits(),
            jaro_similarity_scalar(&a, &b).to_bits(),
            "{:?} vs {:?}", a, b
        );
        let jw = JaroWinkler::new();
        let pa = PreparedText::new(&a, false);
        let pb = PreparedText::new(&b, false);
        prop_assert_eq!(
            jw.similarity_prepared(&pa, &pb).to_bits(),
            jw.similarity(&a, &b).to_bits(),
            "{:?} vs {:?}", a, b
        );
    }

    /// `distance_within(a, b, k)` agrees with `distance(a, b)` clamped at
    /// `k + 1`: `Some(d)` exactly when `d ≤ k`, `None` otherwise — across
    /// mixed Unicode strings and the whole bound range around the true
    /// distance.
    #[test]
    fn distance_within_matches_clamped_distance(a in MIXED, b in MIXED, extra in 0usize..6) {
        let l = Levenshtein::new();
        let d = l.distance_scalar(&a, &b);
        for k in [0, d.saturating_sub(2), d.saturating_sub(1), d, d + 1, d + extra] {
            let got = l.distance_within(&a, &b, k);
            prop_assert_eq!(got, (d <= k).then_some(d), "{:?} vs {:?} at k={}", a, b, k);
        }
        // Prepared twin, with and without precomputed pattern bits.
        for bits in [false, true] {
            let pa = PreparedText::new(&a, bits);
            let pb = PreparedText::new(&b, bits);
            for k in [0, d.saturating_sub(1), d, d + extra] {
                prop_assert_eq!(
                    l.distance_prepared_within(&pa, &pb, k),
                    (d <= k).then_some(d),
                    "prepared {:?} vs {:?} at k={} (bits {})", a, b, k, bits
                );
            }
        }
    }

    /// `similarity_within` certificates are sound and `Some` values exact,
    /// for every bounded kernel, on arbitrary bounds.
    #[test]
    fn similarity_within_certificates_sound(a in MIXED, b in MIXED, cut in 0u32..=100) {
        let bound = f64::from(cut) / 100.0;
        let kernels: [&dyn StringComparator; 5] = [
            &Levenshtein::new(),
            &Jaro::new(),
            &JaroWinkler::new(),
            &NormalizedHamming::new(),
            &NormalizedHamming::case_insensitive(),
        ];
        for k in kernels {
            let exact = k.similarity(&a, &b);
            match k.similarity_within(&a, &b, bound) {
                Some(s) => prop_assert_eq!(
                    s.to_bits(), exact.to_bits(),
                    "{}: inexact Some on {:?} vs {:?}", k.name(), a, b
                ),
                None => prop_assert!(
                    exact < bound,
                    "{}: bad certificate on {:?} vs {:?}: {} >= {}",
                    k.name(), a, b, exact, bound
                ),
            }
            let pa = PreparedText::new(&a, k.wants_pattern_bits());
            let pb = PreparedText::new(&b, k.wants_pattern_bits());
            match k.similarity_prepared_within(&pa, &pb, bound) {
                Some(s) => prop_assert_eq!(s.to_bits(), exact.to_bits(), "{} prepared", k.name()),
                None => prop_assert!(exact < bound, "{} prepared certificate", k.name()),
            }
        }
    }

    /// Bounded Myers around the 64/65-char word boundary: the banded
    /// multi-word path must agree with the clamped scalar distance.
    #[test]
    fn distance_within_word_boundary(
        pat_len in 60usize..=68,
        text in ".{0,200}",
        seed in any::<u64>(),
        k in 0usize..100,
    ) {
        let pattern: String = (0..pat_len)
            .map(|i| char::from(b'a' + ((seed.wrapping_mul(31).wrapping_add(i as u64 * 7)) % 26) as u8))
            .collect();
        let l = Levenshtein::new();
        let d = l.distance_scalar(&pattern, &text);
        prop_assert_eq!(
            l.distance_within(&pattern, &text, k),
            (d <= k).then_some(d),
            "len {} pattern vs {:?} at k={}", pat_len, text, k
        );
        // Drive the banded kernel directly (no pattern/text swap) so the
        // multi-word band runs even when the text is the shorter side.
        if pattern.chars().count().abs_diff(text.chars().count()) <= k {
            prop_assert_eq!(
                probdedup_textsim::myers_distance_within(&PatternBits::new(&pattern), &text, k),
                (d <= k).then_some(d)
            );
        }
    }

    /// The single-word / multi-word Myers hand-off: patterns drawn right
    /// around 64 characters against texts of any length.
    #[test]
    fn myers_word_boundary(pat_len in 60usize..=68, text in ".{0,200}", seed in any::<u64>()) {
        // Deterministic pseudo-random ASCII pattern of exactly pat_len.
        let pattern: String = (0..pat_len)
            .map(|i| char::from(b'a' + ((seed.wrapping_mul(31).wrapping_add(i as u64 * 7)) % 26) as u8))
            .collect();
        let l = Levenshtein::new();
        prop_assert_eq!(
            l.distance(&pattern, &text),
            l.distance_scalar(&pattern, &text),
            "len {} pattern vs {:?}", pat_len, text
        );
        prop_assert_eq!(
            myers_at(&pattern, &text),
            l.distance_scalar(&pattern, &text)
        );
    }
}

/// Drive `myers_distance` directly (no length-based pattern/text swap) so
/// the blocked path is hit whenever the pattern exceeds 64 chars even if
/// the text is shorter.
fn myers_at(pattern: &str, text: &str) -> usize {
    probdedup_textsim::myers_distance(&PatternBits::new(pattern), text)
}

/// Exhaustive sweep of the 63/64/65 boundary with edits planted on the
/// word seam — the off-by-one trap the blocked carry logic must survive.
#[test]
fn myers_block_boundary_sweep() {
    let l = Levenshtein::new();
    for len in [63usize, 64, 65, 66, 127, 128, 129, 200] {
        let a: String = ('a'..='z').cycle().take(len).collect();
        // Substitution at the last position of word 0 and first of word 1.
        for edit_at in [0usize, 62, 63, 64, 65].iter().filter(|&&i| i + 1 < len) {
            let mut b: Vec<char> = a.chars().collect();
            b[*edit_at] = 'Z';
            let b: String = b.into_iter().collect();
            assert_eq!(
                l.distance(&a, &b),
                l.distance_scalar(&a, &b),
                "len {len}, edit at {edit_at}"
            );
            assert_eq!(myers_at(&a, &b), l.distance_scalar(&a, &b));
        }
        // Deletion straddling the seam changes alignment, not just cost.
        if len > 65 {
            let b: String = a.chars().take(63).chain(a.chars().skip(66)).collect();
            assert_eq!(
                l.distance(&a, &b),
                l.distance_scalar(&a, &b),
                "len {len} deletion"
            );
        }
    }
}

/// Empty-input short-circuits (the allocation bugfix) keep exact
/// semantics.
#[test]
fn empty_input_short_circuits() {
    let l = Levenshtein::new();
    assert_eq!(l.distance("", ""), 0);
    assert_eq!(l.distance("", "日本語"), 3);
    assert_eq!(l.distance("abc", ""), 3);
    assert_eq!(l.similarity("", ""), 1.0);
}
