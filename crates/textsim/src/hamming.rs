//! Normalized Hamming similarity — the kernel of the paper's worked examples.

use crate::bitparallel::{
    class_absent_bound, class_mask, hamming_bytes, hamming_bytes_ci, PreparedText,
};
use crate::traits::{StringComparator, BOUND_SLACK};

/// Normalized Hamming similarity.
///
/// Characters are compared position by position; the similarity is the number
/// of matching positions divided by the length of the **longer** string, so
/// strings of different lengths are penalized for every unmatched trailing
/// position. This is the convention under which the paper's examples hold:
///
/// * `sim(Tim, Kim) = 2/3` (Section IV-A),
/// * `sim(machinist, mechanic) = 5/9`,
/// * `sim(Jim, Tom) = 1/3`, `sim(Tim, Tom) = 2/3` (Fig. 7 discussion).
///
/// Comparison is on Unicode scalar values (`char`), not bytes, so multi-byte
/// characters count as single positions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NormalizedHamming {
    case_insensitive: bool,
}

impl NormalizedHamming {
    /// Case-sensitive normalized Hamming similarity (the paper's variant).
    pub fn new() -> Self {
        Self {
            case_insensitive: false,
        }
    }

    /// Case-insensitive variant: characters are compared after ASCII-folding.
    pub fn case_insensitive() -> Self {
        Self {
            case_insensitive: true,
        }
    }

    /// Raw Hamming distance: number of differing positions, counting the
    /// length difference as mismatches.
    ///
    /// ASCII pairs take a byte-sliced path (XOR + popcount, eight
    /// positions per `u64` step); anything else falls back to the scalar
    /// character walk of [`distance_scalar`](Self::distance_scalar).
    pub fn distance(&self, a: &str, b: &str) -> usize {
        if a.is_ascii() && b.is_ascii() {
            if self.case_insensitive {
                hamming_bytes_ci(a.as_bytes(), b.as_bytes())
            } else {
                hamming_bytes(a.as_bytes(), b.as_bytes())
            }
        } else {
            self.distance_scalar(a, b)
        }
    }

    /// The scalar character-by-character walk: the non-ASCII path of
    /// [`distance`](Self::distance) and the exactness oracle its byte-
    /// sliced fast path is property-tested against.
    pub fn distance_scalar(&self, a: &str, b: &str) -> usize {
        let (mut dist, mut len_a, mut len_b) = (0usize, 0usize, 0usize);
        let mut ita = a.chars();
        let mut itb = b.chars();
        loop {
            match (ita.next(), itb.next()) {
                (Some(ca), Some(cb)) => {
                    len_a += 1;
                    len_b += 1;
                    if !self.chars_eq(ca, cb) {
                        dist += 1;
                    }
                }
                (Some(_), None) => {
                    len_a += 1;
                    dist += 1;
                }
                (None, Some(_)) => {
                    len_b += 1;
                    dist += 1;
                }
                (None, None) => break,
            }
        }
        debug_assert!(dist <= len_a.max(len_b));
        dist
    }

    fn chars_eq(&self, a: char, b: char) -> bool {
        if self.case_insensitive {
            a.eq_ignore_ascii_case(&b)
        } else {
            a == b
        }
    }
}

impl StringComparator for NormalizedHamming {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        let max_len = a.chars().count().max(b.chars().count());
        if max_len == 0 {
            return 1.0; // both empty: identical
        }
        1.0 - self.distance(a, b) as f64 / max_len as f64
    }

    fn name(&self) -> &str {
        "hamming"
    }

    fn similarity_prepared(&self, a: &PreparedText, b: &PreparedText) -> f64 {
        let max_len = a.char_len().max(b.char_len());
        if max_len == 0 {
            return 1.0;
        }
        // The prepared ASCII class replaces the per-comparison is_ascii
        // scans of `distance`.
        let d = if a.is_ascii() && b.is_ascii() {
            if self.case_insensitive {
                hamming_bytes_ci(a.text().as_bytes(), b.text().as_bytes())
            } else {
                hamming_bytes(a.text().as_bytes(), b.text().as_bytes())
            }
        } else {
            self.distance_scalar(a.text(), b.text())
        };
        1.0 - d as f64 / max_len as f64
    }

    fn similarity_within(&self, a: &str, b: &str, bound: f64) -> Option<f64> {
        let (la, lb) = (a.chars().count(), b.chars().count());
        let max_len = la.max(lb);
        if max_len == 0 {
            return Some(1.0);
        }
        // d ≥ length gap always; the class-mask bound additionally holds
        // for the case-sensitive variant (case folding can match characters
        // whose masks differ).
        let mut d_lb = la.abs_diff(lb);
        if !self.case_insensitive {
            d_lb = d_lb.max(class_absent_bound(class_mask(a), class_mask(b)));
        }
        if 1.0 - d_lb as f64 / max_len as f64 + BOUND_SLACK < bound {
            return None;
        }
        Some(self.similarity(a, b))
    }

    fn similarity_prepared_within(
        &self,
        a: &PreparedText,
        b: &PreparedText,
        bound: f64,
    ) -> Option<f64> {
        let max_len = a.char_len().max(b.char_len());
        if max_len == 0 {
            return Some(1.0);
        }
        let mut d_lb = a.char_len().abs_diff(b.char_len());
        if !self.case_insensitive {
            d_lb = d_lb.max(class_absent_bound(a.class(), b.class()));
        }
        if 1.0 - d_lb as f64 / max_len as f64 + BOUND_SLACK < bound {
            return None;
        }
        Some(self.similarity_prepared(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn paper_example_tim_kim() {
        // Section IV-A: α = 2/3 under the normalized Hamming distance.
        let h = NormalizedHamming::new();
        assert!((h.similarity("Tim", "Kim") - 2.0 / 3.0).abs() < EPS);
    }

    #[test]
    fn paper_example_machinist_mechanic() {
        // Section IV-A: sim(machinist, mechanic) = 5/9.
        let h = NormalizedHamming::new();
        assert!((h.similarity("machinist", "mechanic") - 5.0 / 9.0).abs() < EPS);
    }

    #[test]
    fn paper_example_fig7_names() {
        // Fig. 7 walkthrough: sim(Jim, Tom) = 1/3 and sim(Tim, Tom) = 2/3.
        let h = NormalizedHamming::new();
        assert!((h.similarity("Jim", "Tom") - 1.0 / 3.0).abs() < EPS);
        assert!((h.similarity("Tim", "Tom") - 2.0 / 3.0).abs() < EPS);
    }

    #[test]
    fn length_difference_counts_as_mismatch() {
        let h = NormalizedHamming::new();
        // "ab" vs "abcd": 2 matches out of 4 positions.
        assert!((h.similarity("ab", "abcd") - 0.5).abs() < EPS);
        // Completely disjoint lengths.
        assert_eq!(h.similarity("", "abcd"), 0.0);
    }

    #[test]
    fn empty_strings_are_identical() {
        assert_eq!(NormalizedHamming::new().similarity("", ""), 1.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let h = NormalizedHamming::new();
        assert_eq!(h.distance("abc", "abcdef"), h.distance("abcdef", "abc"));
        assert_eq!(
            h.distance("kitten", "sitting"),
            h.distance("sitting", "kitten")
        );
    }

    #[test]
    fn case_insensitive_variant() {
        let h = NormalizedHamming::case_insensitive();
        assert_eq!(h.similarity("TIM", "tim"), 1.0);
        let strict = NormalizedHamming::new();
        assert!(strict.similarity("TIM", "tim") < 1.0);
    }

    #[test]
    fn unicode_chars_count_as_single_positions() {
        let h = NormalizedHamming::new();
        // "né" vs "ne": one of two positions differs.
        assert!((h.similarity("né", "ne") - 0.5).abs() < EPS);
    }

    #[test]
    fn byte_sliced_path_agrees_with_scalar_oracle() {
        let long_a = "a fairly long ascii string, enough for two u64 chunks";
        let long_b = "a fairly long ASCII string; enough for two u64 chunks!";
        for h in [
            NormalizedHamming::new(),
            NormalizedHamming::case_insensitive(),
        ] {
            for (a, b) in [
                ("Tim", "Kim"),
                ("machinist", "mechanic"),
                ("", "abcd"),
                (long_a, long_b),
            ] {
                assert_eq!(h.distance(a, b), h.distance_scalar(a, b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn prepared_similarity_matches_unprepared() {
        use crate::bitparallel::PreparedText;
        let h = NormalizedHamming::new();
        for (a, b) in [("Tim", "Kim"), ("né", "ne"), ("", ""), ("ab", "abcd")] {
            let pa = PreparedText::new(a, false);
            let pb = PreparedText::new(b, false);
            assert_eq!(
                h.similarity_prepared(&pa, &pb).to_bits(),
                h.similarity(a, b).to_bits(),
                "{a:?} vs {b:?}"
            );
        }
    }
}
