//! Levenshtein and Damerau-Levenshtein edit distances, normalized to `[0,1]`.

use crate::bitparallel::{
    class_absent_bound, class_mask, myers_ascii_64, myers_ascii_64_within, myers_distance,
    myers_distance_within, PatternBits, PreparedText,
};
use crate::traits::StringComparator;

/// Convert a similarity cut into an edit-distance budget for a pair of
/// maximum character length `max_len`: `sim < bound ⟺ d > (1−bound)·L`.
/// The budget errs one unit high so float rounding can never turn a valid
/// distance into a spurious below-bound certificate.
fn distance_budget(bound: f64, max_len: usize) -> Option<usize> {
    if bound <= 0.0 || bound.is_nan() {
        return None; // nothing can be certified below a non-positive bound
    }
    let t = (1.0 - bound) * max_len as f64;
    if t < 0.0 {
        Some(0)
    } else {
        Some(t.floor() as usize + 1)
    }
}

/// Normalized Levenshtein similarity: `1 − d(a,b) / max(|a|, |b|)` where `d`
/// is the classical edit distance (insertions, deletions, substitutions, all
/// of cost 1).
///
/// The distance runs Myers' 1999 bit-vector algorithm: `O(⌈m/64⌉·n)` with
/// word-sized constants, a zero-allocation single-`u64` path for ASCII
/// pairs whose shorter side fits 64 bytes, and Hyyrö's blocked multi-word
/// form above that. [`Levenshtein::distance_scalar`] keeps the classical
/// two-row dynamic program as the property-tested oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Levenshtein {
    _priv: (),
}

impl Levenshtein {
    /// A new Levenshtein comparator.
    pub fn new() -> Self {
        Self { _priv: () }
    }

    /// Raw edit distance between `a` and `b`.
    pub fn distance(&self, a: &str, b: &str) -> usize {
        // Empty sides short-circuit before any table build or allocation.
        if a.is_empty() {
            return b.chars().count();
        }
        if b.is_empty() {
            return a.chars().count();
        }
        if a.is_ascii() && b.is_ascii() {
            let (pat, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
            if pat.len() <= 64 {
                return myers_ascii_64(pat.as_bytes(), text.as_bytes());
            }
        }
        // Unicode or > 64-char pattern: heap-built Peq, multi-word as needed
        // (the shorter side as pattern minimizes words).
        let (ca, cb) = (a.chars().count(), b.chars().count());
        let (pat, text) = if ca <= cb { (a, b) } else { (b, a) };
        myers_distance(&PatternBits::new(pat), text)
    }

    /// The classical two-row dynamic program (`O(|a|·|b|)` time): retained
    /// as the exactness oracle for [`distance`](Self::distance) — the
    /// property tests assert both agree on arbitrary Unicode inputs.
    pub fn distance_scalar(&self, a: &str, b: &str) -> usize {
        let (short, long): (Vec<char>, Vec<char>) = {
            let av: Vec<char> = a.chars().collect();
            let bv: Vec<char> = b.chars().collect();
            if av.len() <= bv.len() {
                (av, bv)
            } else {
                (bv, av)
            }
        };
        if short.is_empty() {
            return long.len();
        }
        let mut prev: Vec<usize> = (0..=short.len()).collect();
        let mut curr: Vec<usize> = vec![0; short.len() + 1];
        for (i, cl) in long.iter().enumerate() {
            curr[0] = i + 1;
            for (j, cs) in short.iter().enumerate() {
                let cost = usize::from(cl != cs);
                curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[short.len()]
    }

    /// Bounded edit distance: `Some(d)` iff `d ≤ bound` (with `d` exact),
    /// `None` certifying `d > bound` — usually without running the full
    /// distance. Three tiers, each cheaper than the next:
    ///
    /// 1. **length-difference prefilter** — `d ≥ ||a| − |b||` (byte lengths
    ///    suffice for ASCII pairs);
    /// 2. **ASCII-class prefilter** — `d ≥` the number of distinct
    ///    characters of either string absent from the other
    ///    ([`class_absent_bound`]);
    /// 3. **banded Myers** — [`myers_distance_within`] (or its stack-`Peq`
    ///    ASCII twin), which aborts mid-column-loop once the band
    ///    certifies the bound.
    pub fn distance_within(&self, a: &str, b: &str, bound: usize) -> Option<usize> {
        let ascii = a.is_ascii() && b.is_ascii();
        let (la, lb) = if ascii {
            (a.len(), b.len())
        } else {
            (a.chars().count(), b.chars().count())
        };
        self.distance_within_with_lens(a, b, la, lb, ascii, bound)
    }

    /// [`distance_within`](Self::distance_within) with the character
    /// lengths and ASCII class already known — callers that derived the
    /// bound from `max(la, lb)` (the similarity adapters) avoid a second
    /// scan of both strings.
    fn distance_within_with_lens(
        &self,
        a: &str,
        b: &str,
        la: usize,
        lb: usize,
        ascii: bool,
        bound: usize,
    ) -> Option<usize> {
        if la.abs_diff(lb) > bound {
            return None;
        }
        if la == 0 || lb == 0 {
            let d = la.max(lb);
            return (d <= bound).then_some(d); // gap check above ⇒ d ≤ bound
        }
        if bound >= la.max(lb) {
            // The bound cannot fail; skip the prefilter scans.
            return Some(self.distance(a, b));
        }
        if class_absent_bound(class_mask(a), class_mask(b)) > bound {
            return None;
        }
        let (pat, text) = if la <= lb { (a, b) } else { (b, a) };
        if ascii && pat.len() <= 64 {
            return myers_ascii_64_within(pat.as_bytes(), text.as_bytes(), bound);
        }
        myers_distance_within(&PatternBits::new(pat), text, bound)
    }

    /// [`distance_within`](Self::distance_within) over prepared strings:
    /// lengths and class masks come from the preparation, and a precomputed
    /// Myers table (either side's) feeds the banded kernel directly.
    pub fn distance_prepared_within(
        &self,
        a: &PreparedText,
        b: &PreparedText,
        bound: usize,
    ) -> Option<usize> {
        let (la, lb) = (a.char_len(), b.char_len());
        if la.abs_diff(lb) > bound {
            return None;
        }
        if la == 0 || lb == 0 {
            let d = la.max(lb);
            return (d <= bound).then_some(d);
        }
        if bound < la.max(lb) && class_absent_bound(a.class(), b.class()) > bound {
            return None;
        }
        let (pat, text) = if la <= lb { (a, b) } else { (b, a) };
        match (pat.bits(), text.bits()) {
            (Some(bits), _) => myers_distance_within(bits, text.text(), bound),
            (None, Some(bits)) => myers_distance_within(bits, pat.text(), bound),
            (None, None) => self.distance_within(pat.text(), text.text(), bound),
        }
    }
}

impl StringComparator for Levenshtein {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        let max_len = a.chars().count().max(b.chars().count());
        if max_len == 0 {
            return 1.0;
        }
        1.0 - self.distance(a, b) as f64 / max_len as f64
    }

    fn name(&self) -> &str {
        "levenshtein"
    }

    fn wants_pattern_bits(&self) -> bool {
        true
    }

    fn similarity_prepared(&self, a: &PreparedText, b: &PreparedText) -> f64 {
        let max_len = a.char_len().max(b.char_len());
        if max_len == 0 {
            return 1.0;
        }
        let d = if a.char_len() == 0 || b.char_len() == 0 {
            max_len
        } else {
            let (pat, text) = if a.char_len() <= b.char_len() {
                (a, b)
            } else {
                (b, a)
            };
            match (pat.bits(), text.bits()) {
                (Some(bits), _) => myers_distance(bits, text.text()),
                (None, Some(bits)) => myers_distance(bits, pat.text()),
                (None, None) => self.distance(pat.text(), text.text()),
            }
        };
        1.0 - d as f64 / max_len as f64
    }

    fn similarity_within(&self, a: &str, b: &str, bound: f64) -> Option<f64> {
        let ascii = a.is_ascii() && b.is_ascii();
        let (la, lb) = if ascii {
            (a.len(), b.len())
        } else {
            (a.chars().count(), b.chars().count())
        };
        let max_len = la.max(lb);
        if max_len == 0 {
            return Some(1.0);
        }
        let Some(k) = distance_budget(bound, max_len) else {
            return Some(self.similarity(a, b));
        };
        let d = self.distance_within_with_lens(a, b, la, lb, ascii, k)?;
        Some(1.0 - d as f64 / max_len as f64)
    }

    fn similarity_prepared_within(
        &self,
        a: &PreparedText,
        b: &PreparedText,
        bound: f64,
    ) -> Option<f64> {
        let max_len = a.char_len().max(b.char_len());
        if max_len == 0 {
            return Some(1.0);
        }
        let Some(k) = distance_budget(bound, max_len) else {
            return Some(self.similarity_prepared(a, b));
        };
        let d = self.distance_prepared_within(a, b, k)?;
        Some(1.0 - d as f64 / max_len as f64)
    }
}

/// Normalized Damerau-Levenshtein similarity (optimal string alignment
/// variant): like Levenshtein but counting a transposition of two adjacent
/// characters as a single edit.
///
/// Typos are dominated by adjacent transpositions ("teh" → "the"), which is
/// why record-linkage systems often prefer this kernel over plain
/// Levenshtein; the synthetic data generator in `probdedup-datagen` injects
/// such transpositions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DamerauLevenshtein {
    _priv: (),
}

impl DamerauLevenshtein {
    /// A new Damerau-Levenshtein (OSA) comparator.
    pub fn new() -> Self {
        Self { _priv: () }
    }

    /// Raw optimal-string-alignment distance.
    pub fn distance(&self, a: &str, b: &str) -> usize {
        // Empty sides short-circuit before the char collections.
        if a.is_empty() {
            return b.chars().count();
        }
        if b.is_empty() {
            return a.chars().count();
        }
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        let (n, m) = (av.len(), bv.len());
        // Three rows are enough for the OSA recurrence (needs i-2).
        let mut row0: Vec<usize> = vec![0; m + 1]; // i-2
        let mut row1: Vec<usize> = (0..=m).collect(); // i-1
        let mut row2: Vec<usize> = vec![0; m + 1]; // i
        for i in 1..=n {
            row2[0] = i;
            for j in 1..=m {
                let cost = usize::from(av[i - 1] != bv[j - 1]);
                let mut d = (row1[j - 1] + cost).min(row1[j] + 1).min(row2[j - 1] + 1);
                if i > 1 && j > 1 && av[i - 1] == bv[j - 2] && av[i - 2] == bv[j - 1] {
                    d = d.min(row0[j - 2] + 1);
                }
                row2[j] = d;
            }
            std::mem::swap(&mut row0, &mut row1);
            std::mem::swap(&mut row1, &mut row2);
        }
        row1[m]
    }
}

impl StringComparator for DamerauLevenshtein {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        let max_len = a.chars().count().max(b.chars().count());
        if max_len == 0 {
            return 1.0;
        }
        1.0 - self.distance(a, b) as f64 / max_len as f64
    }

    fn name(&self) -> &str {
        "damerau"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_distances() {
        let l = Levenshtein::new();
        assert_eq!(l.distance("kitten", "sitting"), 3);
        assert_eq!(l.distance("flaw", "lawn"), 2);
        assert_eq!(l.distance("", "abc"), 3);
        assert_eq!(l.distance("abc", ""), 3);
        assert_eq!(l.distance("abc", "abc"), 0);
    }

    #[test]
    fn bit_parallel_agrees_with_scalar_oracle() {
        let l = Levenshtein::new();
        let long: String = ('a'..='z').cycle().take(100).collect();
        let cases = [
            ("kitten", "sitting"),
            ("", ""),
            ("日本語です", "日本語"),
            ("café au lait", "cafe au lait"),
            (long.as_str(), "kitten"),
            (long.as_str(), &long[3..]),
        ];
        for (a, b) in cases {
            assert_eq!(l.distance(a, b), l.distance_scalar(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn prepared_similarity_matches_unprepared() {
        use crate::bitparallel::PreparedText;
        let l = Levenshtein::new();
        assert!(l.wants_pattern_bits());
        for (a, b) in [("kitten", "sitting"), ("", "x"), ("café", "cafe"), ("", "")] {
            let pa = PreparedText::new(a, true);
            let pb = PreparedText::new(b, true);
            assert_eq!(
                l.similarity_prepared(&pa, &pb).to_bits(),
                l.similarity(a, b).to_bits(),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn normalized_similarity() {
        let l = Levenshtein::new();
        assert!((l.similarity("kitten", "sitting") - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
        assert_eq!(l.similarity("", ""), 1.0);
        assert_eq!(l.similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn distance_within_bound() {
        let l = Levenshtein::new();
        assert_eq!(l.distance_within("kitten", "sitting", 3), Some(3));
        assert_eq!(l.distance_within("kitten", "sitting", 2), None);
        // Length-difference shortcut.
        assert_eq!(l.distance_within("a", "abcdefgh", 2), None);
    }

    #[test]
    fn damerau_counts_transposition_once() {
        let d = DamerauLevenshtein::new();
        assert_eq!(d.distance("teh", "the"), 1);
        assert_eq!(Levenshtein::new().distance("teh", "the"), 2);
        assert_eq!(d.distance("ca", "abc"), 3); // OSA, not full Damerau
        assert_eq!(d.distance("abcdef", "abcdfe"), 1);
    }

    #[test]
    fn damerau_reduces_to_levenshtein_without_transpositions() {
        let d = DamerauLevenshtein::new();
        let l = Levenshtein::new();
        for (a, b) in [("kitten", "sitting"), ("abc", ""), ("", ""), ("x", "y")] {
            assert_eq!(d.distance(a, b), l.distance(a, b), "{a} vs {b}");
        }
    }

    #[test]
    fn unicode_aware() {
        let l = Levenshtein::new();
        assert_eq!(l.distance("café", "cafe"), 1);
        assert_eq!(l.distance("日本語", "日本"), 1);
    }

    #[test]
    fn symmetry_on_samples() {
        let l = Levenshtein::new();
        let d = DamerauLevenshtein::new();
        for (a, b) in [("abcd", "badc"), ("Tim", "Timothy"), ("", "xy")] {
            assert_eq!(l.distance(a, b), l.distance(b, a));
            assert_eq!(d.distance(a, b), d.distance(b, a));
        }
    }
}
