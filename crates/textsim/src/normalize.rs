//! String standardization used in the *data preparation* step
//! (Section III-A of the paper): unification of conventions so that
//! comparison functions see homogeneous representations.

/// A configurable string normalizer. Operations are applied in a fixed,
//  documented order: trim → case fold → strip punctuation → collapse
/// whitespace → replacements.
#[derive(Debug, Clone, Default)]
pub struct Normalizer {
    trim: bool,
    lowercase: bool,
    strip_punctuation: bool,
    collapse_whitespace: bool,
    strip_diacritics: bool,
    replacements: Vec<(String, String)>,
}

impl Normalizer {
    /// An identity normalizer (no transformations).
    pub fn new() -> Self {
        Self::default()
    }

    /// A sensible default for person/occupation data: trim, lowercase,
    /// strip punctuation, collapse whitespace, strip common diacritics.
    pub fn standard() -> Self {
        Self::new()
            .trim()
            .lowercase()
            .strip_punctuation()
            .collapse_whitespace()
            .strip_diacritics()
    }

    /// Trim leading/trailing whitespace.
    pub fn trim(mut self) -> Self {
        self.trim = true;
        self
    }

    /// Lowercase (Unicode-aware).
    pub fn lowercase(mut self) -> Self {
        self.lowercase = true;
        self
    }

    /// Remove ASCII punctuation characters.
    pub fn strip_punctuation(mut self) -> Self {
        self.strip_punctuation = true;
        self
    }

    /// Collapse runs of whitespace to single spaces.
    pub fn collapse_whitespace(mut self) -> Self {
        self.collapse_whitespace = true;
        self
    }

    /// Map common Latin diacritics to their ASCII base letter (é→e, ü→u, ß→ss).
    pub fn strip_diacritics(mut self) -> Self {
        self.strip_diacritics = true;
        self
    }

    /// Add a literal substring replacement (applied last, in insertion
    /// order). Useful for unit unification ("St." → "Street").
    pub fn replace(mut self, from: &str, to: &str) -> Self {
        self.replacements.push((from.to_string(), to.to_string()));
        self
    }

    /// Apply the configured transformations to `s`.
    ///
    /// ASCII inputs (the common case after source-convention cleanup) take
    /// a single-pass path that builds exactly one output allocation; the
    /// general path below applies the same steps with per-step buffers.
    /// Both produce identical output for ASCII inputs (property-tested).
    pub fn apply(&self, s: &str) -> String {
        let mut out = if s.is_ascii() {
            self.apply_ascii(s)
        } else {
            self.apply_general(s)
        };
        for (from, to) in &self.replacements {
            out = out.replace(from.as_str(), to);
        }
        out
    }

    /// Single-pass ASCII pipeline: trim → case fold → strip punctuation →
    /// collapse whitespace, one output `String`, no intermediate buffers.
    /// Diacritic folding is the identity on ASCII and is skipped.
    fn apply_ascii(&self, s: &str) -> String {
        let s = if self.trim { s.trim() } else { s };
        let mut out = String::with_capacity(s.len());
        let mut pending_space = false;
        for &b in s.as_bytes() {
            let b = if self.lowercase {
                b.to_ascii_lowercase()
            } else {
                b
            };
            let c = b as char;
            if self.strip_punctuation && c.is_ascii_punctuation() {
                continue;
            }
            if self.collapse_whitespace {
                if c.is_whitespace() {
                    pending_space = true;
                    continue;
                }
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
            }
            out.push(c);
        }
        out
    }

    /// The general (Unicode) pipeline, also the oracle the ASCII path is
    /// tested against. Replacements are applied by [`apply`](Self::apply).
    fn apply_general(&self, s: &str) -> String {
        let mut out: String = if self.trim {
            s.trim().to_string()
        } else {
            s.to_string()
        };
        if self.lowercase {
            out = out.to_lowercase();
        }
        if self.strip_diacritics {
            out = out.chars().map(fold_diacritic).collect();
        }
        if self.strip_punctuation {
            out.retain(|c| !c.is_ascii_punctuation());
        }
        if self.collapse_whitespace {
            let mut collapsed = String::with_capacity(out.len());
            let mut in_space = false;
            for c in out.chars() {
                if c.is_whitespace() {
                    if !in_space && !collapsed.is_empty() {
                        collapsed.push(' ');
                    }
                    in_space = true;
                } else {
                    collapsed.push(c);
                    in_space = false;
                }
            }
            while collapsed.ends_with(' ') {
                collapsed.pop();
            }
            out = collapsed;
        }
        out
    }
}

/// Fold a small table of Latin-1 diacritics to ASCII. Characters outside the
/// table pass through unchanged. `ß` maps to `s` (single char keeps the
/// function `char → char`; full "ss" expansion is handled via `replace`).
fn fold_diacritic(c: char) -> char {
    match c {
        'á' | 'à' | 'â' | 'ä' | 'ã' | 'å' => 'a',
        'é' | 'è' | 'ê' | 'ë' => 'e',
        'í' | 'ì' | 'î' | 'ï' => 'i',
        'ó' | 'ò' | 'ô' | 'ö' | 'õ' | 'ø' => 'o',
        'ú' | 'ù' | 'û' | 'ü' => 'u',
        'ý' | 'ÿ' => 'y',
        'ñ' => 'n',
        'ç' => 'c',
        'ß' => 's',
        'Á' | 'À' | 'Â' | 'Ä' | 'Ã' | 'Å' => 'A',
        'É' | 'È' | 'Ê' | 'Ë' => 'E',
        'Í' | 'Ì' | 'Î' | 'Ï' => 'I',
        'Ó' | 'Ò' | 'Ô' | 'Ö' | 'Õ' | 'Ø' => 'O',
        'Ú' | 'Ù' | 'Û' | 'Ü' => 'U',
        'Ñ' => 'N',
        'Ç' => 'C',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_by_default() {
        assert_eq!(
            Normalizer::new().apply("  MiXed,  Case! "),
            "  MiXed,  Case! "
        );
    }

    #[test]
    fn standard_pipeline() {
        let n = Normalizer::standard();
        assert_eq!(n.apply("  MiXed,  Case! "), "mixed case");
        assert_eq!(n.apply("Vogt-Kölln Straße"), "vogtkolln strase");
    }

    #[test]
    fn individual_steps() {
        assert_eq!(Normalizer::new().trim().apply(" x "), "x");
        assert_eq!(Normalizer::new().lowercase().apply("ABC"), "abc");
        assert_eq!(Normalizer::new().strip_punctuation().apply("a,b.c!"), "abc");
        assert_eq!(
            Normalizer::new().collapse_whitespace().apply("a \t b\n\nc"),
            "a b c"
        );
    }

    #[test]
    fn replacements_apply_last() {
        let n = Normalizer::new().lowercase().replace("st ", "street ");
        assert_eq!(n.apply("Main St X"), "main street x");
    }

    #[test]
    fn diacritics_folded() {
        let n = Normalizer::new().strip_diacritics();
        assert_eq!(n.apply("Müller Café"), "Muller Cafe");
    }

    #[test]
    fn empty_input() {
        assert_eq!(Normalizer::standard().apply(""), "");
        assert_eq!(Normalizer::standard().apply("   "), "");
    }

    /// Every configuration subset: the single-pass ASCII path must produce
    /// the same output as the general pipeline.
    #[test]
    fn ascii_fast_path_matches_general() {
        let inputs = [
            "",
            "   ",
            "  MiXed,  Case! ",
            "a \t b\n\nc",
            "trailing space  ",
            "\x0bvertical\x0btab",
            "A.B,C;D:E!F?G",
            "double  space,  and CAPS",
        ];
        for bits in 0u8..16 {
            let mut n = Normalizer::new();
            if bits & 1 != 0 {
                n = n.trim();
            }
            if bits & 2 != 0 {
                n = n.lowercase();
            }
            if bits & 4 != 0 {
                n = n.strip_punctuation();
            }
            if bits & 8 != 0 {
                n = n.collapse_whitespace();
            }
            for s in inputs {
                assert_eq!(
                    n.apply_ascii(s),
                    n.apply_general(s),
                    "config {bits:#06b} on {s:?}"
                );
            }
        }
    }
}
