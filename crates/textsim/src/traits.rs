//! The [`StringComparator`] trait: a normalized similarity kernel on strings.

use std::sync::Arc;

use crate::bitparallel::PreparedText;

/// A normalized comparison function on strings.
///
/// Implementations must guarantee, for all inputs `a`, `b`:
///
/// * **Range**: `similarity(a, b) ∈ [0, 1]`.
/// * **Reflexivity**: `similarity(a, a) == 1.0`.
/// * **Symmetry**: `similarity(a, b) == similarity(b, a)`.
///
/// These invariants let the probabilistic matcher (Eq. 5 of Panse et al.)
/// compute expected similarities that stay in `[0, 1]`. All comparators
/// shipped by this crate are verified against these laws with property tests.
pub trait StringComparator: Send + Sync {
    /// Similarity of `a` and `b` in `[0, 1]`.
    fn similarity(&self, a: &str, b: &str) -> f64;

    /// A short human-readable name used in reports and benchmarks.
    fn name(&self) -> &str {
        "comparator"
    }

    /// Whether [`similarity_prepared`](Self::similarity_prepared) benefits
    /// from the Myers `Peq` table in [`PreparedText`]. Callers that prepare
    /// strings once and compare many times (the interned matching path)
    /// only pay for the table when the kernel will use it.
    fn wants_pattern_bits(&self) -> bool {
        false
    }

    /// Similarity of two [`PreparedText`]s.
    ///
    /// Must return the **same value** as `similarity(a.text(), b.text())`
    /// — preparation is a performance contract, not a semantic one. The
    /// default delegates; kernels with a bit-parallel fast path override it
    /// to reuse the precomputed ASCII class, character length and pattern
    /// bitmasks.
    fn similarity_prepared(&self, a: &PreparedText, b: &PreparedText) -> f64 {
        self.similarity(a.text(), b.text())
    }

    /// **Bounded** similarity: either the exact similarity, or a
    /// certificate that it falls below `bound`.
    ///
    /// Contract: `Some(s)` means `s == similarity(a, b)` exactly (bitwise);
    /// `None` **certifies** `similarity(a, b) < bound`. A kernel may always
    /// return `Some` (the default does), but kernels with a cheap bounded
    /// evaluation — banded Myers for [`Levenshtein`](crate::Levenshtein),
    /// length-difference and ASCII-class prefilters — override this to
    /// stop as soon as the verdict is certain. Callers that only need to
    /// know which side of a threshold the similarity falls on (the
    /// bounded-classification path of `probdedup-matching`) pay for a full
    /// kernel evaluation only when the answer is genuinely close.
    fn similarity_within(&self, a: &str, b: &str, bound: f64) -> Option<f64> {
        let _ = bound;
        Some(self.similarity(a, b))
    }

    /// [`similarity_within`](Self::similarity_within) over prepared
    /// strings: the same contract, with prefilters reading the precomputed
    /// lengths and class masks instead of re-scanning the text.
    fn similarity_prepared_within(
        &self,
        a: &PreparedText,
        b: &PreparedText,
        bound: f64,
    ) -> Option<f64> {
        let _ = bound;
        Some(self.similarity_prepared(a, b))
    }
}

/// A cheaply cloneable, shareable comparator handle.
pub type SharedComparator = Arc<dyn StringComparator>;

/// Slack added to upper-bound comparisons in
/// [`StringComparator::similarity_within`] implementations so float
/// rounding in the bound arithmetic can never produce a spurious
/// below-`bound` certificate. One shared constant: every bounded kernel
/// must certify against the same slack.
pub(crate) const BOUND_SLACK: f64 = 1e-12;

macro_rules! impl_delegating_comparator {
    ($($ptr:ty),*) => {$(
        impl<T: StringComparator + ?Sized> StringComparator for $ptr {
            fn similarity(&self, a: &str, b: &str) -> f64 {
                (**self).similarity(a, b)
            }
            fn name(&self) -> &str {
                (**self).name()
            }
            fn wants_pattern_bits(&self) -> bool {
                (**self).wants_pattern_bits()
            }
            fn similarity_prepared(&self, a: &PreparedText, b: &PreparedText) -> f64 {
                (**self).similarity_prepared(a, b)
            }
            fn similarity_within(&self, a: &str, b: &str, bound: f64) -> Option<f64> {
                (**self).similarity_within(a, b, bound)
            }
            fn similarity_prepared_within(
                &self,
                a: &PreparedText,
                b: &PreparedText,
                bound: f64,
            ) -> Option<f64> {
                (**self).similarity_prepared_within(a, b, bound)
            }
        }
    )*};
}

impl_delegating_comparator!(Arc<T>, &T, Box<T>);

/// Exact equality: `1.0` iff the strings are identical, else `0.0`.
///
/// Plugging `Exact` into the erroneous-data formula (Eq. 5) collapses it to
/// the error-free formula (Eq. 4): the probability that both uncertain values
/// are equal. The matching crate has a property test for exactly this
/// reduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Exact;

impl StringComparator for Exact {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        if a == b {
            1.0
        } else {
            0.0
        }
    }
    fn name(&self) -> &str {
        "exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_is_indicator() {
        assert_eq!(Exact.similarity("a", "a"), 1.0);
        assert_eq!(Exact.similarity("a", "b"), 0.0);
        assert_eq!(Exact.similarity("", ""), 1.0);
        assert_eq!(Exact.similarity("", "x"), 0.0);
    }

    #[test]
    fn trait_objects_delegate() {
        let boxed: Box<dyn StringComparator> = Box::new(Exact);
        assert_eq!(boxed.similarity("x", "x"), 1.0);
        assert_eq!(boxed.name(), "exact");
        let arced: SharedComparator = Arc::new(Exact);
        assert_eq!(arced.similarity("x", "y"), 0.0);
        let by_ref: &dyn StringComparator = &Exact;
        assert_eq!(by_ref.similarity("x", "x"), 1.0);
    }

    #[test]
    fn exact_is_case_sensitive() {
        assert_eq!(Exact.similarity("Tim", "tim"), 0.0);
    }
}
