//! q-gram (n-gram) profile similarity.
//!
//! The paper lists "n-grams" first among syntactic comparison functions
//! (Section III-C). A string is mapped to its multiset of `q`-long character
//! substrings (optionally padded so prefix/suffix characters get full
//! weight), and two profiles are compared with a set/multiset coefficient.

use std::collections::HashMap;

use crate::traits::StringComparator;

/// The coefficient used to compare two q-gram profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileSimilarity {
    /// Dice / Sørensen: `2·|A ∩ B| / (|A| + |B|)`.
    #[default]
    Dice,
    /// Jaccard: `|A ∩ B| / |A ∪ B|`.
    Jaccard,
    /// Cosine: `|A ∩ B| / sqrt(|A|·|B|)` on multiset counts.
    Cosine,
    /// Overlap: `|A ∩ B| / min(|A|, |B|)`.
    Overlap,
}

/// q-gram profile comparator.
///
/// `q` is the gram length; `padded` controls whether `q − 1` sentinel
/// characters (`\u{1}` / `\u{2}`) are affixed before profiling, which makes
/// prefix and suffix characters participate in `q` grams each (the common
/// convention in record linkage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QGram {
    q: usize,
    padded: bool,
    coefficient: ProfileSimilarity,
}

impl QGram {
    /// A q-gram comparator; `q` is clamped to at least 1.
    pub fn new(q: usize, padded: bool, coefficient: ProfileSimilarity) -> Self {
        Self {
            q: q.max(1),
            padded,
            coefficient,
        }
    }

    /// Padded bigram comparator.
    pub fn bigram(coefficient: ProfileSimilarity) -> Self {
        Self::new(2, true, coefficient)
    }

    /// Padded trigram comparator.
    pub fn trigram(coefficient: ProfileSimilarity) -> Self {
        Self::new(3, true, coefficient)
    }

    /// The gram length.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Multiset profile of `s`: map from q-gram to count.
    pub fn profile(&self, s: &str) -> HashMap<Vec<char>, u32> {
        let mut chars: Vec<char> = Vec::with_capacity(s.len() + 2 * (self.q - 1));
        if self.padded {
            chars.extend(std::iter::repeat_n('\u{1}', self.q - 1));
        }
        chars.extend(s.chars());
        if self.padded {
            chars.extend(std::iter::repeat_n('\u{2}', self.q - 1));
        }
        let mut profile = HashMap::new();
        if chars.len() >= self.q {
            for w in chars.windows(self.q) {
                *profile.entry(w.to_vec()).or_insert(0) += 1;
            }
        }
        profile
    }

    fn coefficient_value(&self, a: &HashMap<Vec<char>, u32>, b: &HashMap<Vec<char>, u32>) -> f64 {
        let size_a: u64 = a.values().map(|&c| u64::from(c)).sum();
        let size_b: u64 = b.values().map(|&c| u64::from(c)).sum();
        if size_a == 0 && size_b == 0 {
            return 1.0;
        }
        if size_a == 0 || size_b == 0 {
            return 0.0;
        }
        // Multiset intersection size.
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        let inter: u64 = small
            .iter()
            .map(|(g, &c)| u64::from(c.min(large.get(g).copied().unwrap_or(0))))
            .sum();
        let (ia, ib, inter) = (size_a as f64, size_b as f64, inter as f64);
        match self.coefficient {
            ProfileSimilarity::Dice => 2.0 * inter / (ia + ib),
            ProfileSimilarity::Jaccard => inter / (ia + ib - inter),
            ProfileSimilarity::Cosine => inter / (ia * ib).sqrt(),
            ProfileSimilarity::Overlap => inter / ia.min(ib),
        }
    }
}

impl Default for QGram {
    fn default() -> Self {
        Self::bigram(ProfileSimilarity::Dice)
    }
}

impl StringComparator for QGram {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        let pa = self.profile(a);
        let pb = self.profile(b);
        self.coefficient_value(&pa, &pb)
    }

    fn name(&self) -> &str {
        match self.coefficient {
            ProfileSimilarity::Dice => "qgram-dice",
            ProfileSimilarity::Jaccard => "qgram-jaccard",
            ProfileSimilarity::Cosine => "qgram-cosine",
            ProfileSimilarity::Overlap => "qgram-overlap",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_counts_multiset() {
        let q = QGram::new(2, false, ProfileSimilarity::Dice);
        let p = q.profile("aaa");
        assert_eq!(p.len(), 1);
        assert_eq!(p[&vec!['a', 'a']], 2);
    }

    #[test]
    fn padded_profile_includes_sentinels() {
        let q = QGram::bigram(ProfileSimilarity::Dice);
        let p = q.profile("ab");
        // #a, ab, b# → 3 grams.
        assert_eq!(p.values().map(|&c| c as usize).sum::<usize>(), 3);
    }

    #[test]
    fn dice_known_value() {
        // Unpadded bigrams: "night" → {ni, ig, gh, ht}, "nacht" → {na, ac, ch, ht}.
        // Intersection = {ht} → dice = 2·1/(4+4) = 0.25.
        let q = QGram::new(2, false, ProfileSimilarity::Dice);
        assert!((q.similarity("night", "nacht") - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jaccard_known_value() {
        let q = QGram::new(2, false, ProfileSimilarity::Jaccard);
        // |A ∩ B| = 1, |A ∪ B| = 7.
        assert!((q.similarity("night", "nacht") - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_known_value() {
        let q = QGram::new(2, false, ProfileSimilarity::Overlap);
        // min size 4 → 1/4.
        assert!((q.similarity("night", "nacht") - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cosine_known_value() {
        let q = QGram::new(2, false, ProfileSimilarity::Cosine);
        assert!((q.similarity("night", "nacht") - 1.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_short_strings() {
        for coeff in [
            ProfileSimilarity::Dice,
            ProfileSimilarity::Jaccard,
            ProfileSimilarity::Cosine,
            ProfileSimilarity::Overlap,
        ] {
            let q = QGram::new(3, false, coeff);
            assert_eq!(q.similarity("", ""), 1.0);
            // "ab" has no unpadded trigrams: both profiles empty vs non-empty.
            assert_eq!(q.similarity("ab", "abcdef"), 0.0);
            let padded = QGram::new(3, true, coeff);
            assert!(padded.similarity("ab", "abcdef") > 0.0);
        }
    }

    #[test]
    fn identical_strings_are_one() {
        let q = QGram::trigram(ProfileSimilarity::Jaccard);
        assert_eq!(q.similarity("identical", "identical"), 1.0);
    }

    #[test]
    fn symmetry() {
        let q = QGram::bigram(ProfileSimilarity::Cosine);
        for (a, b) in [("night", "nacht"), ("abc", ""), ("aa", "aaa")] {
            assert!((q.similarity(a, b) - q.similarity(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn q_clamped_to_one() {
        let q = QGram::new(0, false, ProfileSimilarity::Dice);
        assert_eq!(q.q(), 1);
        assert!((q.similarity("ab", "ba") - 1.0).abs() < 1e-12); // same unigram multiset
    }
}
