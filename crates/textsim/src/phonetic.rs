//! Phonetic similarity via Soundex codes.
//!
//! Phonetic encodings catch misspellings that preserve pronunciation
//! ("Smith" / "Smyth"), a class of error that edit distances rate as real
//! differences. Classic record-linkage systems (and blocking keys) rely on
//! them heavily.

use crate::traits::StringComparator;

/// The classical American Soundex code of `s` (letter + 3 digits).
///
/// Non-ASCII-alphabetic characters are ignored. Returns `None` when the
/// input contains no ASCII letter at all.
pub fn soundex(s: &str) -> Option<String> {
    let mut letters = s.chars().filter(|c| c.is_ascii_alphabetic());
    let first = letters.next()?.to_ascii_uppercase();
    let mut code = String::with_capacity(4);
    code.push(first);
    let mut last_digit = digit_of(first);
    for c in letters {
        let d = digit_of(c.to_ascii_uppercase());
        match d {
            0 => {
                // Vowels (and y) reset adjacency; h/w (digit 255 sentinel) do not.
                last_digit = 0;
            }
            255 => { /* h, w: transparent */ }
            d => {
                if d != last_digit {
                    code.push(char::from_digit(u32::from(d), 10).expect("digit"));
                    if code.len() == 4 {
                        break;
                    }
                }
                last_digit = d;
            }
        }
    }
    while code.len() < 4 {
        code.push('0');
    }
    Some(code)
}

/// Soundex digit classes; 0 for vowels + y, 255 for the transparent h/w.
fn digit_of(c: char) -> u8 {
    match c {
        'B' | 'F' | 'P' | 'V' => 1,
        'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => 2,
        'D' | 'T' => 3,
        'L' => 4,
        'M' | 'N' => 5,
        'R' => 6,
        'H' | 'W' => 255,
        _ => 0,
    }
}

/// Comparator built on Soundex codes.
///
/// In `strict` mode the similarity is `1.0` iff the codes are equal, `0.0`
/// otherwise. In `graded` mode it is the fraction of agreeing code positions
/// (a softer signal useful inside [`crate::WeightedEnsemble`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoundexComparator {
    graded: bool,
}

impl SoundexComparator {
    /// Equality-of-codes comparator.
    pub fn strict() -> Self {
        Self { graded: false }
    }

    /// Fraction-of-agreeing-positions comparator.
    pub fn graded() -> Self {
        Self { graded: true }
    }
}

impl StringComparator for SoundexComparator {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        match (soundex(a), soundex(b)) {
            (Some(ca), Some(cb)) => {
                if self.graded {
                    let agree = ca.chars().zip(cb.chars()).filter(|(x, y)| x == y).count();
                    agree as f64 / 4.0
                } else if ca == cb {
                    1.0
                } else {
                    0.0
                }
            }
            (None, None) => 1.0, // both carry no phonetic content
            _ => 0.0,
        }
    }

    fn name(&self) -> &str {
        if self.graded {
            "soundex-graded"
        } else {
            "soundex"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_codes() {
        assert_eq!(soundex("Robert").as_deref(), Some("R163"));
        assert_eq!(soundex("Rupert").as_deref(), Some("R163"));
        assert_eq!(soundex("Ashcraft").as_deref(), Some("A261"));
        assert_eq!(soundex("Ashcroft").as_deref(), Some("A261"));
        assert_eq!(soundex("Tymczak").as_deref(), Some("T522"));
        assert_eq!(soundex("Pfister").as_deref(), Some("P236"));
        assert_eq!(soundex("Honeyman").as_deref(), Some("H555"));
    }

    #[test]
    fn smith_smyth_match() {
        assert_eq!(soundex("Smith"), soundex("Smyth"));
        assert_eq!(
            SoundexComparator::strict().similarity("Smith", "Smyth"),
            1.0
        );
    }

    #[test]
    fn empty_or_symbolic_input() {
        assert_eq!(soundex(""), None);
        assert_eq!(soundex("123"), None);
        assert_eq!(SoundexComparator::strict().similarity("", ""), 1.0);
        assert_eq!(SoundexComparator::strict().similarity("", "abc"), 0.0);
    }

    #[test]
    fn graded_partial_agreement() {
        let g = SoundexComparator::graded();
        // Robert (R163) vs Rubin (R150): R,1 agree → 0.5.
        assert!((g.similarity("Robert", "Rubin") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hw_transparent_rule() {
        // Per the standard: letters with the same code separated by h/w are
        // coded once.
        assert_eq!(soundex("Ashcraft").as_deref(), Some("A261")); // s,c both 2 across h
    }

    #[test]
    fn short_codes_padded_with_zeros() {
        assert_eq!(soundex("Lee").as_deref(), Some("L000"));
        assert_eq!(soundex("Kuhn").as_deref(), Some("K500"));
    }
}
