//! Longest-common-subsequence similarity.

use crate::traits::StringComparator;

/// LCS similarity: `2·|lcs(a,b)| / (|a| + |b|)`.
///
/// Robust against insertions/deletions scattered through the string, less so
/// against substitutions; a useful complement to [`crate::NormalizedHamming`]
/// which is strictly positional.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lcs {
    _priv: (),
}

impl Lcs {
    /// A new LCS comparator.
    pub fn new() -> Self {
        Self { _priv: () }
    }

    /// Length of the longest common subsequence, `O(|a|·|b|)` time,
    /// `O(min(|a|,|b|))` space.
    pub fn lcs_len(&self, a: &str, b: &str) -> usize {
        let (short, long): (Vec<char>, Vec<char>) = {
            let av: Vec<char> = a.chars().collect();
            let bv: Vec<char> = b.chars().collect();
            if av.len() <= bv.len() {
                (av, bv)
            } else {
                (bv, av)
            }
        };
        if short.is_empty() {
            return 0;
        }
        let mut prev = vec![0usize; short.len() + 1];
        let mut curr = vec![0usize; short.len() + 1];
        for cl in &long {
            for (j, cs) in short.iter().enumerate() {
                curr[j + 1] = if cl == cs {
                    prev[j] + 1
                } else {
                    prev[j + 1].max(curr[j])
                };
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[short.len()]
    }
}

impl StringComparator for Lcs {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        let la = a.chars().count();
        let lb = b.chars().count();
        if la + lb == 0 {
            return 1.0;
        }
        2.0 * self.lcs_len(a, b) as f64 / (la + lb) as f64
    }

    fn name(&self) -> &str {
        "lcs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_lcs_lengths() {
        let l = Lcs::new();
        assert_eq!(l.lcs_len("ABCBDAB", "BDCABA"), 4); // BCBA / BDAB
        assert_eq!(l.lcs_len("abc", "abc"), 3);
        assert_eq!(l.lcs_len("abc", "xyz"), 0);
        assert_eq!(l.lcs_len("", "abc"), 0);
    }

    #[test]
    fn similarity_values() {
        let l = Lcs::new();
        assert_eq!(l.similarity("", ""), 1.0);
        assert_eq!(l.similarity("abc", "abc"), 1.0);
        assert_eq!(l.similarity("abc", "xyz"), 0.0);
        // lcs("Tim","Timothy") = 3 → 2·3/10 = 0.6
        assert!((l.similarity("Tim", "Timothy") - 0.6).abs() < 1e-12);
    }

    #[test]
    fn insertion_robustness_vs_hamming() {
        use crate::hamming::NormalizedHamming;
        let l = Lcs::new();
        let h = NormalizedHamming::new();
        // A single leading insertion shifts every position for Hamming but
        // barely affects LCS.
        let (a, b) = ("Johannes", "xJohannes");
        assert!(l.similarity(a, b) > 0.9);
        assert!(h.similarity(a, b) < 0.2);
    }

    #[test]
    fn symmetry() {
        let l = Lcs::new();
        for (a, b) in [("ABCBDAB", "BDCABA"), ("", "x"), ("ab", "ba")] {
            assert!((l.similarity(a, b) - l.similarity(b, a)).abs() < 1e-12);
        }
    }
}
