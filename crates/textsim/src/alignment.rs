//! Local alignment similarity (Smith-Waterman).
//!
//! Edit distances charge for *everything* that differs; local alignment
//! rewards the best-matching region and ignores unrelated flanks. That
//! makes it the right kernel for abbreviation-style duplicates
//! ("Tim" vs "Timothy") and for values embedded in noise
//! ("NGC-1976" vs "catalog NGC1976 (Orion)").

use crate::traits::StringComparator;

/// Smith-Waterman local alignment similarity.
///
/// Scores: `match_score` per matching character, `-mismatch_penalty` per
/// substitution, `-gap_penalty` per inserted/deleted character; the
/// similarity is the best local alignment score divided by
/// `match_score · min(|a|, |b|)` (the maximum attainable), clamped to
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmithWaterman {
    match_score: f64,
    mismatch_penalty: f64,
    gap_penalty: f64,
}

impl Default for SmithWaterman {
    fn default() -> Self {
        Self {
            match_score: 2.0,
            mismatch_penalty: 1.0,
            gap_penalty: 1.0,
        }
    }
}

impl SmithWaterman {
    /// The conventional parameterization (match 2, mismatch −1, gap −1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Custom scores; non-positive `match_score` is rejected by clamping
    /// to the default.
    pub fn with_scores(match_score: f64, mismatch_penalty: f64, gap_penalty: f64) -> Self {
        Self {
            match_score: if match_score > 0.0 { match_score } else { 2.0 },
            mismatch_penalty: mismatch_penalty.max(0.0),
            gap_penalty: gap_penalty.max(0.0),
        }
    }

    /// The raw best local alignment score.
    pub fn score(&self, a: &str, b: &str) -> f64 {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        if av.is_empty() || bv.is_empty() {
            return 0.0;
        }
        let mut prev = vec![0.0f64; bv.len() + 1];
        let mut curr = vec![0.0f64; bv.len() + 1];
        let mut best = 0.0f64;
        for ca in &av {
            for (j, cb) in bv.iter().enumerate() {
                let diag = prev[j]
                    + if ca == cb {
                        self.match_score
                    } else {
                        -self.mismatch_penalty
                    };
                let up = prev[j + 1] - self.gap_penalty;
                let left = curr[j] - self.gap_penalty;
                let cell = diag.max(up).max(left).max(0.0);
                curr[j + 1] = cell;
                best = best.max(cell);
            }
            std::mem::swap(&mut prev, &mut curr);
            curr[0] = 0.0;
        }
        best
    }
}

impl StringComparator for SmithWaterman {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        let la = a.chars().count();
        let lb = b.chars().count();
        if la == 0 && lb == 0 {
            return 1.0;
        }
        let denom = self.match_score * la.min(lb) as f64;
        if denom == 0.0 {
            return 0.0;
        }
        (self.score(a, b) / denom).clamp(0.0, 1.0)
    }

    fn name(&self) -> &str {
        "smith-waterman"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_substring_scores_one() {
        let sw = SmithWaterman::new();
        // "Tim" aligns perfectly inside "Timothy".
        assert_eq!(sw.similarity("Tim", "Timothy"), 1.0);
        assert_eq!(sw.similarity("NGC1976", "catalog NGC1976 x"), 1.0);
    }

    #[test]
    fn flanking_noise_is_free_unlike_levenshtein() {
        use crate::levenshtein::Levenshtein;
        let sw = SmithWaterman::new();
        let lev = Levenshtein::new();
        let (a, b) = ("core", "xxxxcorexxxx");
        assert_eq!(sw.similarity(a, b), 1.0);
        assert!(lev.similarity(a, b) < 0.5);
    }

    #[test]
    fn disjoint_strings_score_zero() {
        let sw = SmithWaterman::new();
        assert_eq!(sw.similarity("abc", "xyz"), 0.0);
        assert_eq!(sw.similarity("", "abc"), 0.0);
        assert_eq!(sw.similarity("", ""), 1.0);
    }

    #[test]
    fn raw_score_known_value() {
        // "GGTT" vs "GGT": best local alignment GGT = 3 matches · 2 = 6.
        let sw = SmithWaterman::new();
        assert_eq!(sw.score("GGTT", "GGT"), 6.0);
        // One substitution inside a 4-run: max(2+2-1+2, …) — "abcd"/"abed":
        // ab (4) vs abed alignment ab..d: 2+2-1+2 = 5.
        assert_eq!(sw.score("abcd", "abed"), 5.0);
    }

    #[test]
    fn symmetric_and_bounded() {
        let sw = SmithWaterman::new();
        for (a, b) in [("Tim", "Timothy"), ("machinist", "mechanic"), ("", "x")] {
            let s1 = sw.similarity(a, b);
            let s2 = sw.similarity(b, a);
            assert!((s1 - s2).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&s1));
        }
    }

    #[test]
    fn custom_scores_clamped() {
        let sw = SmithWaterman::with_scores(-1.0, -2.0, -3.0);
        assert_eq!(sw.similarity("abc", "abc"), 1.0);
    }
}
