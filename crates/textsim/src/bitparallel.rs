//! Bit-parallel building blocks for the hot string kernels.
//!
//! The similarity-cache miss path is the only place the matching pipeline
//! still touches strings, so the per-miss cost is dominated by the inner
//! loops of the comparison kernels. This module provides the word-level
//! primitives those kernels dispatch to:
//!
//! * [`PatternBits`] + [`myers_distance`] — Myers' 1999 bit-vector
//!   Levenshtein: the `O(⌈m/64⌉·n)` dynamic program over machine words,
//!   with a single-`u64` fast path for patterns of at most 64 characters
//!   and Hyyrö's blocked multi-word formulation above that.
//! * [`hamming_bytes`] — byte-chunked XOR + popcount Hamming distance for
//!   ASCII inputs: eight positions per `u64` step.
//! * `jaro_ascii` — the Jaro matching scan over byte strings with a
//!   `u128` matched-position bitset (and a per-character position-mask
//!   table for longer inputs) instead of heap-allocated `Vec<char>` /
//!   `Vec<bool>` scratch.
//! * [`PreparedText`] — per-string precomputation (ASCII class, character
//!   length, character-class occupancy mask, optional [`PatternBits`]) that
//!   callers with a value interner compute **once per distinct string** and
//!   reuse across every comparison (see `probdedup_matching`'s interned
//!   miss path).
//! * [`myers_distance_within`] (and the stack-`Peq` ASCII twin
//!   `myers_ascii_64_within`) — the **bounded**
//!   Myers kernels: given an edit-distance budget `k` they either return
//!   the exact distance (when it is ≤ `k`) or certify `> k` and stop,
//!   typically long before the full column loop finishes. The single-word
//!   path aborts as soon as the certified lower bound
//!   `D[m][j] − (n − j)` exceeds `k`; the multi-word path additionally
//!   runs Ukkonen-banded — at column `j` only the words covering rows
//!   `≤ j + k` are computed, the ones below the diagonal band being
//!   provably `> k` (see `myers_block_within` for the substitution
//!   argument).
//! * [`class_mask`] — the 128-bit character-occupancy bitmap behind the
//!   ASCII-class prefilter: each distinct character of `a` that does not
//!   occur in `b` pins at least one unmatched position, so
//!   `popcount(mask(a) & !mask(b))` lower-bounds the edit distance in a
//!   handful of bit operations.
//!
//! All primitives are exact: they compute the same integers (and hence
//! bitwise-identical normalized similarities) as the scalar reference
//! implementations they replace, which the `bitparallel_oracle` property
//! tests assert on arbitrary Unicode inputs either side of the 64/65-char
//! word boundary. The bounded kernels are oracle-tested against the exact
//! distance clamped at `k + 1`.

/// Precomputed pattern bitmasks (the Myers `Peq` table) for one string.
///
/// `Peq[c]` holds a bit for every position of the pattern where character
/// `c` occurs, split across `⌈m/64⌉` words. ASCII characters index a dense
/// table; other characters go through a sorted side table (rare in
/// practice — patterns are attribute values, mostly ASCII after
/// preparation).
#[derive(Debug, Clone)]
pub struct PatternBits {
    /// Pattern length in characters.
    len: usize,
    /// Number of 64-bit words covering the pattern.
    words: usize,
    /// Dense `Peq` for ASCII: `ascii[c * words + w]`.
    ascii: Box<[u64]>,
    /// Sparse `Peq` for non-ASCII pattern characters, sorted by char.
    other: Box<[(char, Box<[u64]>)]>,
}

impl PatternBits {
    /// Build the `Peq` table of `pattern`.
    pub fn new(pattern: &str) -> Self {
        let len = pattern.chars().count();
        let words = len.div_ceil(64).max(1);
        let mut ascii = vec![0u64; 128 * words];
        let mut other: Vec<(char, Box<[u64]>)> = Vec::new();
        for (i, c) in pattern.chars().enumerate() {
            let (w, bit) = (i / 64, 1u64 << (i % 64));
            if (c as u32) < 128 {
                ascii[c as usize * words + w] |= bit;
            } else {
                match other.binary_search_by_key(&c, |(k, _)| *k) {
                    Ok(pos) => other[pos].1[w] |= bit,
                    Err(pos) => {
                        let mut masks = vec![0u64; words].into_boxed_slice();
                        masks[w] = bit;
                        other.insert(pos, (c, masks));
                    }
                }
            }
        }
        Self {
            len,
            words,
            ascii: ascii.into_boxed_slice(),
            other: other.into_boxed_slice(),
        }
    }

    /// Pattern length in characters.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pattern is the empty string.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Word `w` of `Peq[c]`.
    #[inline]
    fn peq(&self, c: char, w: usize) -> u64 {
        if (c as u32) < 128 {
            self.ascii[c as usize * self.words + w]
        } else {
            match self.other.binary_search_by_key(&c, |(k, _)| *k) {
                Ok(pos) => self.other[pos].1[w],
                Err(_) => 0,
            }
        }
    }
}

/// Levenshtein distance between the precomputed pattern and `text`,
/// via Myers' bit-vector algorithm (Hyyrö's formulation).
///
/// Exactly equal to the classical DP distance for all inputs; cost is
/// `O(⌈m/64⌉ · n)` with word-sized constants.
pub fn myers_distance(pat: &PatternBits, text: &str) -> usize {
    if pat.len == 0 {
        return text.chars().count();
    }
    if pat.words == 1 {
        myers_1w(|c| pat.peq(c, 0), pat.len, text.chars())
    } else {
        myers_block(pat, text)
    }
}

/// Single-word Myers over ASCII byte strings, building the 128-entry `Peq`
/// on the stack — the zero-allocation fast path of
/// [`Levenshtein::distance`](crate::Levenshtein::distance) for patterns of
/// at most 64 bytes.
pub(crate) fn myers_ascii_64(pattern: &[u8], text: &[u8]) -> usize {
    debug_assert!(!pattern.is_empty() && pattern.len() <= 64);
    let mut peq = [0u64; 128];
    for (i, &c) in pattern.iter().enumerate() {
        peq[c as usize] |= 1 << i;
    }
    myers_1w(
        |c| peq[c as usize],
        pattern.len(),
        text.iter().map(|&b| b as char),
    )
}

/// The single-word Myers column loop: `peq` maps a text character to the
/// pattern's occurrence mask, `m` is the pattern length (1..=64).
#[inline]
fn myers_1w(peq: impl Fn(char) -> u64, m: usize, text: impl Iterator<Item = char>) -> usize {
    debug_assert!((1..=64).contains(&m));
    let mut vp = !0u64;
    let mut vn = 0u64;
    let mut dist = m;
    let mask = 1u64 << (m - 1);
    for c in text {
        let eq = peq(c);
        let d0 = (((eq & vp).wrapping_add(vp)) ^ vp) | eq | vn;
        let hp = vn | !(d0 | vp);
        let hn = d0 & vp;
        dist += usize::from(hp & mask != 0);
        dist -= usize::from(hn & mask != 0);
        let hp = (hp << 1) | 1;
        let hn = hn << 1;
        vp = hn | !(d0 | hp);
        vn = hp & d0;
    }
    dist
}

/// Blocked multi-word Myers (Hyyrö 2003): horizontal ±1 deltas carry
/// across word boundaries through `hp_carry`/`hn_carry`; the distance is
/// tracked at the pattern's last bit in the last word.
fn myers_block(pat: &PatternBits, text: &str) -> usize {
    let words = pat.words;
    let mut vp = vec![!0u64; words];
    let mut vn = vec![0u64; words];
    let mut dist = pat.len;
    let last = words - 1;
    let mask = 1u64 << ((pat.len - 1) % 64);
    for c in text.chars() {
        // The boundary row D[0][j] grows by one per column: a positive
        // horizontal carry enters word 0.
        let mut hp_carry = 1u64;
        let mut hn_carry = 0u64;
        for w in 0..words {
            let vpw = vp[w];
            let vnw = vn[w];
            let eq = pat.peq(c, w) | hn_carry;
            let d0 = (((eq & vpw).wrapping_add(vpw)) ^ vpw) | eq | vnw;
            let hp = vnw | !(d0 | vpw);
            let hn = d0 & vpw;
            if w == last {
                dist += usize::from(hp & mask != 0);
                dist -= usize::from(hn & mask != 0);
            }
            let hp_out = hp >> 63;
            let hn_out = hn >> 63;
            let hp = (hp << 1) | hp_carry;
            let hn = (hn << 1) | hn_carry;
            hp_carry = hp_out;
            hn_carry = hn_out;
            vp[w] = hn | !(d0 | hp);
            vn[w] = hp & d0;
        }
    }
    dist
}

/// Bounded Levenshtein distance between the precomputed pattern and
/// `text`: `Some(d)` iff `d ≤ k` (with `d` exact), `None` certifying
/// `d > k`, usually long before the full column loop would finish.
///
/// Single-word patterns abort on the certified lower bound
/// `D[m][j] − (n − j) > k` (the final distance can drop by at most one per
/// remaining column). Multi-word patterns run Ukkonen-banded — see
/// `myers_block_within`.
pub fn myers_distance_within(pat: &PatternBits, text: &str, k: usize) -> Option<usize> {
    let n = text.chars().count();
    if pat.len.abs_diff(n) > k {
        return None;
    }
    if pat.len == 0 {
        return Some(n); // n ≤ k via the length gap
    }
    if pat.words == 1 {
        myers_1w_within(|c| pat.peq(c, 0), pat.len, n, text.chars(), k)
    } else {
        myers_block_within(pat, n, text.chars(), k)
    }
}

/// Bounded single-word Myers over ASCII byte strings (stack `Peq`) — the
/// bounded twin of [`myers_ascii_64`]. The caller has already checked the
/// length-difference bound.
pub(crate) fn myers_ascii_64_within(pattern: &[u8], text: &[u8], k: usize) -> Option<usize> {
    debug_assert!(!pattern.is_empty() && pattern.len() <= 64);
    debug_assert!(pattern.len().abs_diff(text.len()) <= k);
    let mut peq = [0u64; 128];
    for (i, &c) in pattern.iter().enumerate() {
        peq[c as usize] |= 1 << i;
    }
    myers_1w_within(
        |c| peq[c as usize],
        pattern.len(),
        text.len(),
        text.iter().map(|&b| b as char),
        k,
    )
}

/// The single-word bounded column loop: identical to [`myers_1w`] plus the
/// per-column abort. The tracked score here is the **true** DP value
/// `D[m][j]` (no band substitution happens in one word), so
/// `D[m][n] ≥ D[m][j] − (n − j)` is a certified lower bound and the abort
/// is exact.
fn myers_1w_within(
    peq: impl Fn(char) -> u64,
    m: usize,
    n: usize,
    text: impl Iterator<Item = char>,
    k: usize,
) -> Option<usize> {
    debug_assert!((1..=64).contains(&m));
    let mut vp = !0u64;
    let mut vn = 0u64;
    let mut dist = m;
    let mask = 1u64 << (m - 1);
    let mut remaining = n;
    for c in text {
        let eq = peq(c);
        let d0 = (((eq & vp).wrapping_add(vp)) ^ vp) | eq | vn;
        let hp = vn | !(d0 | vp);
        let hn = d0 & vp;
        dist += usize::from(hp & mask != 0);
        dist -= usize::from(hn & mask != 0);
        let hp = (hp << 1) | 1;
        let hn = hn << 1;
        vp = hn | !(d0 | hp);
        vn = hp & d0;
        remaining -= 1;
        if dist > k.saturating_add(remaining) {
            return None;
        }
    }
    (dist <= k).then_some(dist)
}

/// Ukkonen-banded blocked Myers: at column `j` only the words covering
/// rows `≤ j + k` are computed — every cell below that diagonal band has
/// `D[r][j] ≥ r − j > k`.
///
/// When the band first extends into a word, its cells are initialized from
/// the word above by the vertical upper bound `D[r] ≤ D[r−1] + 1`
/// (`vp = all ones`). The computed table `D̃` therefore satisfies
/// `D̃ ≥ D` everywhere and — because every cell with `D ≤ k` takes its DP
/// minimum through neighbours that also have `D ≤ k`, all of which lie in
/// the band and are exact by induction — `D̃ = D` wherever `D ≤ k`. Two
/// consequences keep the routine exact:
///
/// * `D̃[cell] > k` **certifies** `D[cell] > k` (contrapositive of
///   exactness below `k`), so the final `scores > k ⇒ None` test and the
///   per-column dead-band abort are sound;
/// * a returned distance `≤ k` is the true distance.
///
/// The abort: a minimal path to `(m, n)` crosses every column at a cell
/// with `D ≤ k` (values along a minimal path are non-decreasing), and from
/// row `r` it still needs at least `(m − r) − (n − j)` deletions. If every
/// active word fails even the optimistic version of that test (bottom
/// score minus the word's height, plus the deletion deficit, exceeds `k`),
/// no such crossing cell exists and the distance is certifiably `> k`.
fn myers_block_within(
    pat: &PatternBits,
    n: usize,
    text: impl Iterator<Item = char>,
    k: usize,
) -> Option<usize> {
    let words = pat.words;
    let m = pat.len;
    debug_assert!(m.abs_diff(n) <= k);
    let last = words - 1;
    let bottom = |w: usize| ((w + 1) * 64).min(m);
    let mut vp = vec![!0u64; words];
    let mut vn = vec![0u64; words];
    // Column-0 boundary: D[r][0] = r.
    let mut scores: Vec<usize> = (0..words).map(bottom).collect();
    // Words 0..=active are live; rows of word w start at w·64 + 1 (1-based),
    // so word w enters the band at the first column j with w·64 < j + k.
    let mut active = (k / 64).min(last);
    for (jm1, c) in text.enumerate() {
        let j = jm1 + 1;
        let new_active = ((j.saturating_add(k) - 1) / 64).min(last);
        while active < new_active {
            active += 1;
            vp[active] = !0;
            vn[active] = 0;
            scores[active] = scores[active - 1] + (bottom(active) - bottom(active - 1));
        }
        let mut hp_carry = 1u64;
        let mut hn_carry = 0u64;
        for (w, (vpw, vnw)) in vp
            .iter_mut()
            .zip(vn.iter_mut())
            .enumerate()
            .take(active + 1)
        {
            let eq = pat.peq(c, w) | hn_carry;
            let d0 = (((eq & *vpw).wrapping_add(*vpw)) ^ *vpw) | eq | *vnw;
            let hp = *vnw | !(d0 | *vpw);
            let hn = d0 & *vpw;
            let bbit = if w == last { (m - 1) % 64 } else { 63 };
            scores[w] += ((hp >> bbit) & 1) as usize;
            scores[w] -= ((hn >> bbit) & 1) as usize;
            let hp_out = hp >> 63;
            let hn_out = hn >> 63;
            let hp = (hp << 1) | hp_carry;
            let hn = (hn << 1) | hn_carry;
            hp_carry = hp_out;
            hn_carry = hn_out;
            *vpw = hn | !(d0 | hp);
            *vnw = hp & d0;
        }
        // Dead-band abort: optimistic minimum over each word's cells plus
        // the deletion deficit from the word's bottom row.
        let all_dead = (0..=active).all(|w| {
            let height = bottom(w) - w * 64;
            let optimistic = scores[w].saturating_sub(height - 1);
            let deficit = (m - bottom(w)).saturating_sub(n - j);
            optimistic + deficit > k
        });
        if all_dead {
            return None;
        }
    }
    // |m − n| ≤ k guarantees the band reached the last word by column n.
    debug_assert_eq!(active, last);
    (scores[last] <= k).then_some(scores[last])
}

/// Character-class occupancy mask: bit `c` set for every ASCII character
/// `c` occurring in `s`. All non-ASCII characters are conflated onto bit
/// 127, which [`class_absent_bound`] therefore ignores — the conflation can
/// only weaken the bound, never invalidate it.
pub fn class_mask(s: &str) -> u128 {
    let mut m = 0u128;
    if s.is_ascii() {
        for &b in s.as_bytes() {
            m |= 1u128 << b;
        }
    } else {
        for c in s.chars() {
            let bit = if (c as u32) < 128 { c as u32 } else { 127 };
            m |= 1u128 << bit;
        }
    }
    m
}

/// The ASCII-class lower bound on the edit (and Hamming) distance of two
/// strings from their [`class_mask`]s: every distinct character of one
/// string that does not occur in the other pins at least one position that
/// no alignment can match, and distinct characters pin distinct positions.
/// Bit 127 is excluded (it conflates all non-ASCII characters, so absence
/// cannot be certified there).
pub fn class_absent_bound(ma: u128, mb: u128) -> usize {
    let (a_only, b_only) = class_absent_counts(ma, mb);
    a_only.max(b_only)
}

/// Per-side variant of [`class_absent_bound`]: `(a_only, b_only)` distinct
/// certified-absent character counts. Jaro-style kernels use these to
/// upper-bound the match count (`m ≤ |a| − a_only`, `m ≤ |b| − b_only`).
pub fn class_absent_counts(ma: u128, mb: u128) -> (usize, usize) {
    const LOW127: u128 = !(1u128 << 127);
    (
        (ma & !mb & LOW127).count_ones() as usize,
        (mb & !ma & LOW127).count_ones() as usize,
    )
}

/// Number of bytes of `x` that are non-zero (SWAR, no per-byte branch).
#[inline]
fn nonzero_bytes(x: u64) -> u32 {
    const LO7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
    const HI: u64 = 0x8080_8080_8080_8080;
    // Bit 7 of each byte ends up set iff the byte had any bit set: the
    // add saturates the low seven bits into bit 7, the OR catches bit 7
    // itself.
    ((((x & LO7) + LO7) | x) & HI).count_ones()
}

/// Hamming distance over byte strings, counting the length difference as
/// mismatches: XOR eight positions at a time and popcount the differing
/// bytes. Exact for ASCII (one byte per character).
pub fn hamming_bytes(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut dist = a.len().max(b.len()) - n;
    let (a, b) = (&a[..n], &b[..n]);
    let mut chunks_a = a.chunks_exact(8);
    let mut chunks_b = b.chunks_exact(8);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        let xa = u64::from_ne_bytes(ca.try_into().expect("8-byte chunk"));
        let xb = u64::from_ne_bytes(cb.try_into().expect("8-byte chunk"));
        dist += nonzero_bytes(xa ^ xb) as usize;
    }
    for (&pa, &pb) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        dist += usize::from(pa != pb);
    }
    dist
}

/// Case-insensitive ASCII Hamming distance over byte strings (byte loop —
/// still allocation- and `char`-free, which is where the scalar path
/// spends its time).
pub(crate) fn hamming_bytes_ci(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut dist = a.len().max(b.len()) - n;
    for (pa, pb) in a[..n].iter().zip(&b[..n]) {
        dist += usize::from(!pa.eq_ignore_ascii_case(pb));
    }
    dist
}

/// Maximum byte length [`jaro_ascii`] accepts (positions must fit a
/// `u128` matched-set).
pub(crate) const JARO_ASCII_MAX: usize = 128;

/// Inputs longer than this get a per-character position-mask table so the
/// window scan is a constant number of bit operations; below it, the
/// table build (zeroing 2 KiB) would cost more than the naive byte scan.
const JARO_TABLE_MIN: usize = 16;

/// Jaro similarity over ASCII byte strings of at most [`JARO_ASCII_MAX`]
/// bytes, using a `u128` bitset of matched `b`-positions and a stack
/// buffer of matched `a`-characters — no heap allocation.
///
/// Produces bitwise-identical results to the scalar reference: the same
/// match set (first unmatched window position wins), the same
/// transposition count, and the same final expression.
pub(crate) fn jaro_ascii(av: &[u8], bv: &[u8]) -> f64 {
    let (n, m) = (av.len(), bv.len());
    debug_assert!(n <= JARO_ASCII_MAX && m <= JARO_ASCII_MAX);
    if n == 0 && m == 0 {
        return 1.0;
    }
    if n == 0 || m == 0 {
        return 0.0;
    }
    let window = (n.max(m) / 2).saturating_sub(1);
    let mut b_matched: u128 = 0;
    let mut a_matches = [0u8; JARO_ASCII_MAX];
    let mut matches = 0usize;
    if m >= JARO_TABLE_MIN {
        // Position masks of b: peq[c] has bit j set iff bv[j] == c. One
        // AND + trailing_zeros replaces the inner window scan.
        let mut peq = [0u128; 128];
        for (j, &cb) in bv.iter().enumerate() {
            peq[cb as usize] |= 1 << j;
        }
        for (i, &ca) in av.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(m);
            let hi_mask = if hi >= 128 { !0u128 } else { (1u128 << hi) - 1 };
            let window_mask = hi_mask & !((1u128 << lo) - 1);
            let cand = peq[ca as usize] & window_mask & !b_matched;
            if cand != 0 {
                b_matched |= cand & cand.wrapping_neg(); // lowest candidate
                a_matches[matches] = ca;
                matches += 1;
            }
        }
    } else {
        for (i, &ca) in av.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(m);
            if lo >= hi {
                continue; // window entirely past the end of b
            }
            for (j, &cb) in bv[lo..hi].iter().enumerate() {
                let bit = 1u128 << (lo + j);
                if b_matched & bit == 0 && cb == ca {
                    b_matched |= bit;
                    a_matches[matches] = ca;
                    matches += 1;
                    break;
                }
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    let mut transpositions = 0usize;
    let mut k = 0usize;
    let mut rest = b_matched;
    while rest != 0 {
        let j = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        transpositions += usize::from(bv[j] != a_matches[k]);
        k += 1;
    }
    let m_f = matches as f64;
    (m_f / n as f64 + m_f / m as f64 + (m_f - transpositions as f64 / 2.0) / m_f) / 3.0
}

/// Per-string precomputation for repeated comparisons.
///
/// Built once per distinct string (the interned matching path keys these
/// off the `ValuePool`'s dense symbol index) and consumed by
/// [`StringComparator::similarity_prepared`](crate::StringComparator::similarity_prepared):
/// the ASCII class and character length replace the per-comparison
/// `is_ascii`/`chars().count()` scans, and the optional [`PatternBits`]
/// lets Myers' algorithm skip its per-comparison `Peq` build entirely.
#[derive(Debug, Clone)]
pub struct PreparedText {
    text: Box<str>,
    char_len: usize,
    ascii: bool,
    class: u128,
    bits: Option<PatternBits>,
}

impl PreparedText {
    /// Prepare `s`. `with_bits` additionally precomputes the Myers `Peq`
    /// table — worthwhile only when the kernel consuming this asks for it
    /// ([`StringComparator::wants_pattern_bits`](crate::StringComparator::wants_pattern_bits)).
    pub fn new(s: &str, with_bits: bool) -> Self {
        let ascii = s.is_ascii();
        Self {
            text: s.into(),
            char_len: if ascii { s.len() } else { s.chars().count() },
            ascii,
            class: class_mask(s),
            bits: with_bits.then(|| PatternBits::new(s)),
        }
    }

    /// The underlying string.
    #[inline]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Length in characters (== bytes when [`is_ascii`](Self::is_ascii)).
    #[inline]
    pub fn char_len(&self) -> usize {
        self.char_len
    }

    /// Whether the string is pure ASCII.
    #[inline]
    pub fn is_ascii(&self) -> bool {
        self.ascii
    }

    /// The character-class occupancy mask (see [`class_mask`]).
    #[inline]
    pub fn class(&self) -> u128 {
        self.class
    }

    /// The precomputed Myers table, if requested at construction.
    #[inline]
    pub fn bits(&self) -> Option<&PatternBits> {
        self.bits.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn myers_matches_known_distances() {
        for (a, b, d) in [
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("abc", "abc", 0),
            ("", "abc", 3),
            ("abc", "", 3),
            ("日本語", "日本", 1),
            ("café", "cafe", 1),
        ] {
            assert_eq!(myers_distance(&PatternBits::new(a), b), d, "{a:?} vs {b:?}");
            assert_eq!(myers_distance(&PatternBits::new(b), a), d, "{b:?} vs {a:?}");
        }
    }

    #[test]
    fn myers_single_word_stack_path() {
        assert_eq!(myers_ascii_64(b"kitten", b"sitting"), 3);
        assert_eq!(myers_ascii_64(b"a", b"a"), 0);
        let p64 = "ab".repeat(32);
        assert_eq!(myers_ascii_64(p64.as_bytes(), p64.as_bytes()), 0);
    }

    #[test]
    fn myers_block_crosses_word_boundary() {
        // 65-char pattern forces the 2-word blocked path.
        let a: String = ('a'..='z').cycle().take(65).collect();
        let mut b = a.clone();
        b.replace_range(62..65, "XY"); // edits straddling bit 63/64
        let bits = PatternBits::new(&a);
        assert_eq!(bits.len(), 65);
        let naive = naive_levenshtein(&a, &b);
        assert_eq!(myers_distance(&bits, &b), naive);
    }

    #[test]
    fn myers_within_agrees_with_clamped_distance() {
        let cases = [
            ("kitten", "sitting"),
            ("flaw", "lawn"),
            ("abc", "abc"),
            ("", "abc"),
            ("日本語です", "日本語"),
            ("café au lait", "late au cafe"),
        ];
        for (a, b) in cases {
            let d = myers_distance(&PatternBits::new(a), b);
            for k in 0..=(d + 3) {
                let got = myers_distance_within(&PatternBits::new(a), b, k);
                assert_eq!(got, (d <= k).then_some(d), "{a:?} vs {b:?} at k={k}");
            }
        }
    }

    #[test]
    fn myers_within_single_word_stack_path() {
        assert_eq!(myers_ascii_64_within(b"kitten", b"sitting", 3), Some(3));
        assert_eq!(myers_ascii_64_within(b"kitten", b"sitting", 2), None);
        assert_eq!(myers_ascii_64_within(b"a", b"b", 0), None);
        assert_eq!(myers_ascii_64_within(b"a", b"a", 0), Some(0));
    }

    #[test]
    fn myers_within_banded_multiword() {
        // Long patterns force the banded multi-word path; sweep bounds
        // around the true distance including straddling word boundaries.
        let a: String = ('a'..='z').cycle().take(150).collect();
        for (b, extra) in [
            (a.clone(), 0usize),
            (
                {
                    let mut b = a.clone();
                    b.replace_range(60..70, "XXXXX");
                    b
                },
                0,
            ),
            (a[5..].to_string(), 2),
            (
                {
                    let mut b = a.clone();
                    b.push_str("tail");
                    b.replace_range(0..3, "Z");
                    b
                },
                1,
            ),
        ] {
            let bits = PatternBits::new(&a);
            let d = myers_distance(&bits, &b);
            for k in d.saturating_sub(2)..=(d + 2 + extra) {
                assert_eq!(
                    myers_distance_within(&bits, &b, k),
                    (d <= k).then_some(d),
                    "k={k}, d={d}"
                );
            }
            // A clearly-too-small bound certifies early.
            if d > 1 {
                assert_eq!(myers_distance_within(&bits, &b, d - 1), None);
            }
        }
    }

    #[test]
    fn class_mask_bound_is_a_lower_bound() {
        for (a, b) in [
            ("smith", "garcia"),
            ("machinist", "mechanic"),
            ("abc", "xyz"),
            ("", "abc"),
            ("café", "cafe"),
            ("same", "same"),
        ] {
            let bound = class_absent_bound(class_mask(a), class_mask(b));
            let d = myers_distance(&PatternBits::new(a), b);
            assert!(bound <= d, "{a:?} vs {b:?}: bound {bound} > distance {d}");
        }
        // Fully disjoint alphabets certify at least the shorter length.
        assert_eq!(class_absent_bound(class_mask("abc"), class_mask("xyz")), 3);
    }

    #[test]
    fn hamming_bytes_counts_differing_positions() {
        assert_eq!(hamming_bytes(b"Tim", b"Kim"), 1);
        assert_eq!(hamming_bytes(b"machinist", b"mechanic"), 4);
        assert_eq!(hamming_bytes(b"", b"abcd"), 4);
        assert_eq!(hamming_bytes(b"same-long-string!", b"same-long-string!"), 0);
        // > 8 bytes exercises the chunked path + remainder.
        assert_eq!(hamming_bytes(b"abcdefghijk", b"abcdeXghiYk"), 2);
    }

    #[test]
    fn hamming_bytes_ci_folds_case() {
        assert_eq!(hamming_bytes_ci(b"TIM", b"tim"), 0);
        assert_eq!(hamming_bytes_ci(b"TIM", b"tom"), 1);
    }

    #[test]
    fn nonzero_bytes_counts() {
        assert_eq!(nonzero_bytes(0), 0);
        assert_eq!(nonzero_bytes(u64::MAX), 8);
        assert_eq!(nonzero_bytes(0x0000_0100_0000_8001), 3);
        assert_eq!(nonzero_bytes(0x8000_0000_0000_0000), 1);
    }

    #[test]
    fn jaro_ascii_classic_values() {
        let j = |a: &str, b: &str| jaro_ascii(a.as_bytes(), b.as_bytes());
        assert!((j("MARTHA", "MARHTA") - 0.944).abs() < 1e-3);
        assert!((j("DWAYNE", "DUANE") - 0.822).abs() < 1e-3);
        assert!((j("DIXON", "DICKSONX") - 0.767).abs() < 1e-3);
        assert_eq!(j("", ""), 1.0);
        assert_eq!(j("", "abc"), 0.0);
        assert_eq!(j("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_ascii_table_and_scan_paths_agree() {
        // Straddle JARO_TABLE_MIN so both inner-loop strategies run.
        let long_a = "a quarter of longer text with repeats: aabbccdd";
        let long_b = "a quartet of longish text with repeats: abcdabcd";
        let got = jaro_ascii(long_a.as_bytes(), long_b.as_bytes());
        assert!((0.0..=1.0).contains(&got));
        // Short side < JARO_TABLE_MIN against long side.
        let mixed = jaro_ascii(b"short one", long_b.as_bytes());
        assert!((0.0..=1.0).contains(&mixed));
    }

    #[test]
    fn prepared_text_classifies() {
        let p = PreparedText::new("machinist", false);
        assert!(p.is_ascii());
        assert_eq!(p.char_len(), 9);
        assert_eq!(p.text(), "machinist");
        assert!(p.bits().is_none());
        let q = PreparedText::new("café", true);
        assert!(!q.is_ascii());
        assert_eq!(q.char_len(), 4);
        assert_eq!(q.bits().expect("bits requested").len(), 4);
    }

    /// Textbook two-row DP, used as an in-module oracle (the crate-level
    /// scalar oracle lives in `levenshtein.rs`).
    fn naive_levenshtein(a: &str, b: &str) -> usize {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        let mut prev: Vec<usize> = (0..=bv.len()).collect();
        let mut curr = vec![0usize; bv.len() + 1];
        for (i, ca) in av.iter().enumerate() {
            curr[0] = i + 1;
            for (j, cb) in bv.iter().enumerate() {
                curr[j + 1] = (prev[j] + usize::from(ca != cb))
                    .min(prev[j + 1] + 1)
                    .min(curr[j] + 1);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[bv.len()]
    }
}
