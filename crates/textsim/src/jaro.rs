//! Jaro and Jaro-Winkler similarity, the record-linkage standards cited by
//! the paper ("edit- or jaro distance", Section III-C).

use crate::bitparallel::{
    class_absent_counts, class_mask, jaro_ascii, PreparedText, JARO_ASCII_MAX,
};
use crate::traits::{StringComparator, BOUND_SLACK};

/// What the class-mask prefilter can say about a Jaro-family similarity.
enum JaroPrefilter {
    /// No shared characters at all: the similarity is exactly `0.0` (and
    /// the Winkler prefix bonus is vacuous — a shared prefix character
    /// would be a shared character).
    ExactZero,
    /// A certified upper bound on the **Jaro** similarity.
    UpperBound(f64),
}

/// Upper-bound the Jaro similarity from character lengths and class masks:
/// the match count `m` is at most `min(|a| − a_only, |b| − b_only)` (each
/// certified-absent character pins an unmatchable position), and the
/// transposition term is at most 1.
fn jaro_prefilter(la: usize, lb: usize, ma: u128, mb: u128) -> JaroPrefilter {
    if la == 0 || lb == 0 {
        // Exact by the kernel's own conventions (1.0 iff both empty).
        return JaroPrefilter::UpperBound(if la == 0 && lb == 0 { 1.0 } else { 0.0 });
    }
    let (a_only, b_only) = class_absent_counts(ma, mb);
    let m_ub = (la - a_only.min(la)).min(lb - b_only.min(lb));
    if m_ub == 0 {
        return JaroPrefilter::ExactZero;
    }
    let m = m_ub as f64;
    JaroPrefilter::UpperBound((m / la as f64 + m / lb as f64 + 1.0) / 3.0)
}

/// Jaro similarity.
///
/// Defined as `(m/|a| + m/|b| + (m − t)/m) / 3` where `m` is the number of
/// matching characters (equal characters within a window of
/// `max(|a|,|b|)/2 − 1`) and `t` is half the number of transpositions among
/// the matched characters. Returns `0.0` when there are no matches, `1.0` for
/// two empty strings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Jaro {
    _priv: (),
}

impl Jaro {
    /// A new Jaro comparator.
    pub fn new() -> Self {
        Self { _priv: () }
    }
}

/// Core Jaro computation shared by [`Jaro`] and [`JaroWinkler`]: ASCII
/// pairs short enough for a `u128` matched-set go through the
/// allocation-free bitset scan of [`jaro_ascii`]; everything else takes
/// the scalar path.
fn jaro_similarity(a: &str, b: &str) -> f64 {
    if a.len() <= JARO_ASCII_MAX && b.len() <= JARO_ASCII_MAX && a.is_ascii() && b.is_ascii() {
        jaro_ascii(a.as_bytes(), b.as_bytes())
    } else {
        jaro_similarity_scalar(a, b)
    }
}

/// The scalar `Vec<char>`-based Jaro: the general-input path and the
/// exactness oracle the bitset scan is property-tested against (both
/// produce the same match set, transposition count and final expression,
/// so results are bitwise identical).
pub fn jaro_similarity_scalar(a: &str, b: &str) -> f64 {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    let (n, m) = (av.len(), bv.len());
    if n == 0 && m == 0 {
        return 1.0;
    }
    if n == 0 || m == 0 {
        return 0.0;
    }
    let window = (n.max(m) / 2).saturating_sub(1);
    let mut b_matched = vec![false; m];
    let mut a_matches: Vec<char> = Vec::new();
    for (i, ca) in av.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(m);
        for j in lo..hi {
            if !b_matched[j] && bv[j] == *ca {
                b_matched[j] = true;
                a_matches.push(*ca);
                break;
            }
        }
    }
    let matches = a_matches.len();
    if matches == 0 {
        return 0.0;
    }
    let b_matches: Vec<char> = bv
        .iter()
        .zip(b_matched.iter())
        .filter_map(|(c, &used)| used.then_some(*c))
        .collect();
    let transpositions = a_matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count();
    let m_f = matches as f64;
    (m_f / n as f64 + m_f / m as f64 + (m_f - transpositions as f64 / 2.0) / m_f) / 3.0
}

/// [`jaro_similarity`] over prepared strings: the precomputed ASCII class
/// replaces the per-comparison `is_ascii` scans.
fn jaro_prepared(a: &PreparedText, b: &PreparedText) -> f64 {
    if a.is_ascii()
        && b.is_ascii()
        && a.char_len() <= JARO_ASCII_MAX
        && b.char_len() <= JARO_ASCII_MAX
    {
        jaro_ascii(a.text().as_bytes(), b.text().as_bytes())
    } else {
        jaro_similarity_scalar(a.text(), b.text())
    }
}

impl StringComparator for Jaro {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        jaro_similarity(a, b)
    }

    fn name(&self) -> &str {
        "jaro"
    }

    fn similarity_prepared(&self, a: &PreparedText, b: &PreparedText) -> f64 {
        jaro_prepared(a, b)
    }

    fn similarity_within(&self, a: &str, b: &str, bound: f64) -> Option<f64> {
        match jaro_prefilter(
            a.chars().count(),
            b.chars().count(),
            class_mask(a),
            class_mask(b),
        ) {
            JaroPrefilter::ExactZero => Some(0.0),
            JaroPrefilter::UpperBound(ub) if ub + BOUND_SLACK < bound => None,
            _ => Some(jaro_similarity(a, b)),
        }
    }

    fn similarity_prepared_within(
        &self,
        a: &PreparedText,
        b: &PreparedText,
        bound: f64,
    ) -> Option<f64> {
        match jaro_prefilter(a.char_len(), b.char_len(), a.class(), b.class()) {
            JaroPrefilter::ExactZero => Some(0.0),
            JaroPrefilter::UpperBound(ub) if ub + BOUND_SLACK < bound => None,
            _ => Some(jaro_prepared(a, b)),
        }
    }
}

/// Jaro-Winkler similarity: Jaro boosted by a common-prefix bonus.
///
/// `JW = J + ℓ · p · (1 − J)` where `ℓ` is the length of the common prefix
/// (capped at [`JaroWinkler::max_prefix`], conventionally 4) and `p` the
/// prefix scale (conventionally 0.1; must satisfy `p · max_prefix ≤ 1` so the
/// result stays in `[0,1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JaroWinkler {
    prefix_scale: f64,
    max_prefix: usize,
    /// Only boost when the plain Jaro similarity exceeds this value
    /// (Winkler's original proposal used 0.7).
    boost_threshold: f64,
}

impl Default for JaroWinkler {
    fn default() -> Self {
        Self {
            prefix_scale: 0.1,
            max_prefix: 4,
            boost_threshold: 0.7,
        }
    }
}

impl JaroWinkler {
    /// A Jaro-Winkler comparator with the conventional parameters
    /// (scale 0.1, prefix cap 4, boost threshold 0.7).
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the prefix scale. Values are clamped so that
    /// `scale · max_prefix ≤ 1` (preserving the `[0,1]` range).
    pub fn with_prefix_scale(mut self, scale: f64) -> Self {
        let cap = 1.0 / self.max_prefix as f64;
        self.prefix_scale = scale.clamp(0.0, cap);
        self
    }

    /// Override the boost threshold (0 disables the threshold entirely).
    pub fn with_boost_threshold(mut self, threshold: f64) -> Self {
        self.boost_threshold = threshold.clamp(0.0, 1.0);
        self
    }

    /// The maximum prefix length that receives a bonus.
    pub fn max_prefix(&self) -> usize {
        self.max_prefix
    }
}

impl JaroWinkler {
    /// The common-prefix boost applied on top of a Jaro similarity `j`.
    fn boost(&self, j: f64, a: &str, b: &str) -> f64 {
        if j < self.boost_threshold {
            return j;
        }
        let prefix = a
            .chars()
            .zip(b.chars())
            .take(self.max_prefix)
            .take_while(|(x, y)| x == y)
            .count();
        (j + prefix as f64 * self.prefix_scale * (1.0 - j)).min(1.0)
    }
}

impl JaroWinkler {
    /// Upper-bound the **boosted** similarity given an upper bound on the
    /// plain Jaro value: `x ↦ x + ℓ·p·(1 − x)` is non-decreasing for
    /// `ℓ·p ≤ 1`, and a below-threshold Jaro (no boost) is bounded by the
    /// boosted expression too since the bonus is non-negative.
    fn boost_upper_bound(&self, jaro_ub: f64) -> f64 {
        let c = self.max_prefix as f64 * self.prefix_scale;
        (jaro_ub + c * (1.0 - jaro_ub)).min(1.0)
    }
}

impl StringComparator for JaroWinkler {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        self.boost(jaro_similarity(a, b), a, b)
    }

    fn name(&self) -> &str {
        "jaro-winkler"
    }

    fn similarity_prepared(&self, a: &PreparedText, b: &PreparedText) -> f64 {
        self.boost(jaro_prepared(a, b), a.text(), b.text())
    }

    fn similarity_within(&self, a: &str, b: &str, bound: f64) -> Option<f64> {
        match jaro_prefilter(
            a.chars().count(),
            b.chars().count(),
            class_mask(a),
            class_mask(b),
        ) {
            // No shared characters: Jaro is 0 and the prefix bonus vacuous.
            JaroPrefilter::ExactZero => Some(0.0),
            JaroPrefilter::UpperBound(ub) if self.boost_upper_bound(ub) + BOUND_SLACK < bound => {
                None
            }
            _ => Some(self.similarity(a, b)),
        }
    }

    fn similarity_prepared_within(
        &self,
        a: &PreparedText,
        b: &PreparedText,
        bound: f64,
    ) -> Option<f64> {
        match jaro_prefilter(a.char_len(), b.char_len(), a.class(), b.class()) {
            JaroPrefilter::ExactZero => Some(0.0),
            JaroPrefilter::UpperBound(ub) if self.boost_upper_bound(ub) + BOUND_SLACK < bound => {
                None
            }
            _ => Some(self.similarity_prepared(a, b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-3;

    #[test]
    fn classic_jaro_values() {
        let j = Jaro::new();
        assert!((j.similarity("MARTHA", "MARHTA") - 0.944).abs() < EPS);
        assert!((j.similarity("DWAYNE", "DUANE") - 0.822).abs() < EPS);
        assert!((j.similarity("DIXON", "DICKSONX") - 0.767).abs() < EPS);
    }

    #[test]
    fn classic_jaro_winkler_values() {
        let jw = JaroWinkler::new();
        assert!((jw.similarity("MARTHA", "MARHTA") - 0.961).abs() < EPS);
        assert!((jw.similarity("DWAYNE", "DUANE") - 0.840).abs() < EPS);
        assert!((jw.similarity("DIXON", "DICKSONX") - 0.813).abs() < EPS);
    }

    #[test]
    fn no_common_characters() {
        assert_eq!(Jaro::new().similarity("abc", "xyz"), 0.0);
        assert_eq!(JaroWinkler::new().similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(Jaro::new().similarity("", ""), 1.0);
        assert_eq!(Jaro::new().similarity("", "abc"), 0.0);
        assert_eq!(JaroWinkler::new().similarity("", ""), 1.0);
    }

    #[test]
    fn winkler_never_below_jaro() {
        let j = Jaro::new();
        let jw = JaroWinkler::new();
        for (a, b) in [
            ("prefix", "prefixed"),
            ("MARTHA", "MARHTA"),
            ("abcdef", "abcfed"),
            ("same", "same"),
        ] {
            assert!(jw.similarity(a, b) >= j.similarity(a, b) - 1e-12);
        }
    }

    #[test]
    fn boost_threshold_suppresses_bonus() {
        let no_boost = JaroWinkler::new().with_boost_threshold(1.0);
        let j = Jaro::new();
        assert!(
            (no_boost.similarity("MARTHA", "MARHTA") - j.similarity("MARTHA", "MARHTA")).abs()
                < 1e-12
        );
    }

    #[test]
    fn prefix_scale_is_clamped() {
        let jw = JaroWinkler::new().with_prefix_scale(5.0);
        for (a, b) in [("aaaa", "aaab"), ("prefix", "prefixed")] {
            let s = jw.similarity(a, b);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn symmetric() {
        let jw = JaroWinkler::new();
        for (a, b) in [("DWAYNE", "DUANE"), ("Tim", "Timothy"), ("x", "")] {
            assert!((jw.similarity(a, b) - jw.similarity(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn bitset_path_agrees_with_scalar_oracle() {
        let long: String = "the quick brown fox jumps over the lazy dog ".repeat(3);
        let cases = [
            ("MARTHA", "MARHTA"),
            ("DIXON", "DICKSONX"),
            ("", "abc"),
            ("aaaa", "aaaa"),
            (long.trim_end(), "the quick brown fox"),
        ];
        for (a, b) in cases {
            assert_eq!(
                Jaro::new().similarity(a, b).to_bits(),
                jaro_similarity_scalar(a, b).to_bits(),
                "{a:?} vs {b:?}"
            );
        }
        // Non-ASCII and over-long inputs route to the scalar path.
        let over = "x".repeat(200);
        assert_eq!(
            Jaro::new().similarity(&over, "x").to_bits(),
            jaro_similarity_scalar(&over, "x").to_bits()
        );
        assert_eq!(
            Jaro::new().similarity("café", "cafe").to_bits(),
            jaro_similarity_scalar("café", "cafe").to_bits()
        );
    }

    #[test]
    fn prepared_similarity_matches_unprepared() {
        use crate::bitparallel::PreparedText;
        let jw = JaroWinkler::new();
        let j = Jaro::new();
        for (a, b) in [
            ("MARTHA", "MARHTA"),
            ("café", "cafe"),
            ("", ""),
            ("pref", "prefix"),
        ] {
            let pa = PreparedText::new(a, false);
            let pb = PreparedText::new(b, false);
            assert_eq!(
                j.similarity_prepared(&pa, &pb).to_bits(),
                j.similarity(a, b).to_bits()
            );
            assert_eq!(
                jw.similarity_prepared(&pa, &pb).to_bits(),
                jw.similarity(a, b).to_bits()
            );
        }
    }
}
