//! Numeric similarity kernels, for attributes such as ages, years or
//! magnitudes. These operate on `f64` directly; the matching crate routes
//! numeric [`Value`](../probdedup_model/value/enum.Value.html)s here.

/// A normalized comparison function on numbers (analogue of
/// [`crate::StringComparator`] for numeric domains).
pub trait NumericComparator: Send + Sync {
    /// Similarity of `a` and `b` in `[0, 1]`.
    fn similarity(&self, a: f64, b: f64) -> f64;

    /// Short human-readable name.
    fn name(&self) -> &str {
        "numeric"
    }
}

/// Absolute-difference kernel: `max(0, 1 − |a − b| / scale)`.
///
/// With `scale = 10.0`, ages 30 and 35 score 0.5; ages differing by ≥ 10
/// years score 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsoluteScaled {
    scale: f64,
}

impl AbsoluteScaled {
    /// A kernel that decays linearly to 0 at difference `scale`.
    /// `scale` must be positive; non-positive values are replaced by 1.0.
    pub fn new(scale: f64) -> Self {
        Self {
            scale: if scale > 0.0 { scale } else { 1.0 },
        }
    }
}

impl NumericComparator for AbsoluteScaled {
    fn similarity(&self, a: f64, b: f64) -> f64 {
        if a == b {
            return 1.0; // covers ±∞ equal cases
        }
        if !a.is_finite() || !b.is_finite() {
            return 0.0;
        }
        (1.0 - (a - b).abs() / self.scale).max(0.0)
    }

    fn name(&self) -> &str {
        "abs-scaled"
    }
}

/// Relative-difference kernel: `max(0, 1 − |a − b| / max(|a|, |b|))`,
/// and `1.0` when both are zero. Scale-free: 100 vs 110 scores like
/// 1000 vs 1100.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelativeNumeric {
    _priv: (),
}

impl RelativeNumeric {
    /// A new relative-difference kernel.
    pub fn new() -> Self {
        Self { _priv: () }
    }
}

impl NumericComparator for RelativeNumeric {
    fn similarity(&self, a: f64, b: f64) -> f64 {
        if a == b {
            return 1.0;
        }
        if !a.is_finite() || !b.is_finite() {
            return 0.0;
        }
        let denom = a.abs().max(b.abs());
        if denom == 0.0 {
            return 1.0;
        }
        (1.0 - (a - b).abs() / denom).max(0.0)
    }

    fn name(&self) -> &str {
        "relative"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_scaled_values() {
        let k = AbsoluteScaled::new(10.0);
        assert_eq!(k.similarity(30.0, 30.0), 1.0);
        assert!((k.similarity(30.0, 35.0) - 0.5).abs() < 1e-12);
        assert_eq!(k.similarity(30.0, 45.0), 0.0);
        assert_eq!(k.similarity(45.0, 30.0), 0.0);
    }

    #[test]
    fn absolute_scaled_guards() {
        let k = AbsoluteScaled::new(-3.0); // replaced by 1.0
        assert_eq!(k.similarity(1.0, 2.0), 0.0);
        assert_eq!(k.similarity(1.0, 1.5), 0.5);
        assert_eq!(k.similarity(f64::NAN, 1.0), 0.0);
        assert_eq!(k.similarity(f64::INFINITY, f64::INFINITY), 1.0);
        assert_eq!(k.similarity(f64::INFINITY, 1.0), 0.0);
    }

    #[test]
    fn relative_values() {
        let k = RelativeNumeric::new();
        assert_eq!(k.similarity(0.0, 0.0), 1.0);
        assert!((k.similarity(100.0, 110.0) - k.similarity(1000.0, 1100.0)).abs() < 1e-12);
        assert!((k.similarity(100.0, 110.0) - (1.0 - 10.0 / 110.0)).abs() < 1e-12);
        assert_eq!(k.similarity(0.0, 5.0), 0.0);
        assert_eq!(k.similarity(-5.0, 5.0), 0.0);
    }

    #[test]
    fn range_and_symmetry() {
        let ks: [&dyn NumericComparator; 2] = [&AbsoluteScaled::new(7.0), &RelativeNumeric::new()];
        for k in ks {
            for (a, b) in [(1.0, 2.0), (-3.0, 3.0), (0.0, 0.0), (1e9, 1e9 + 1.0)] {
                let s = k.similarity(a, b);
                assert!((0.0..=1.0).contains(&s), "{} out of range: {s}", k.name());
                assert!((s - k.similarity(b, a)).abs() < 1e-12);
            }
        }
    }
}
