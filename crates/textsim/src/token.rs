//! Token-level comparators for multi-word values ("van Keulen, Maurice" vs
//! "Maurice van Keulen").

use std::sync::Arc;

use crate::traits::{SharedComparator, StringComparator};

/// Split a string into lowercase alphanumeric tokens.
pub fn tokenize(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Monge-Elkan similarity: each token of `a` is matched to its best-scoring
/// token of `b` under an inner character-level comparator, and the scores are
/// averaged.
///
/// Note that Monge-Elkan is *asymmetric* in its raw form; this implementation
/// symmetrizes it by averaging both directions so it satisfies the
/// [`StringComparator`] symmetry law.
#[derive(Clone)]
pub struct MongeElkan {
    inner: SharedComparator,
}

impl MongeElkan {
    /// Monge-Elkan over the given inner comparator.
    pub fn new(inner: SharedComparator) -> Self {
        Self { inner }
    }

    /// Monge-Elkan over Jaro-Winkler (the common default).
    pub fn jaro_winkler() -> Self {
        Self::new(Arc::new(crate::jaro::JaroWinkler::new()))
    }

    fn directed(&self, from: &[String], to: &[String]) -> f64 {
        if from.is_empty() {
            return if to.is_empty() { 1.0 } else { 0.0 };
        }
        if to.is_empty() {
            return 0.0;
        }
        let total: f64 = from
            .iter()
            .map(|t| {
                to.iter()
                    .map(|u| self.inner.similarity(t, u))
                    .fold(0.0_f64, f64::max)
            })
            .sum();
        total / from.len() as f64
    }
}

impl StringComparator for MongeElkan {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        let ta = tokenize(a);
        let tb = tokenize(b);
        0.5 * (self.directed(&ta, &tb) + self.directed(&tb, &ta))
    }

    fn name(&self) -> &str {
        "monge-elkan"
    }
}

/// Jaccard coefficient on token *sets*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TokenJaccard {
    _priv: (),
}

impl TokenJaccard {
    /// A new token-set Jaccard comparator.
    pub fn new() -> Self {
        Self { _priv: () }
    }
}

impl StringComparator for TokenJaccard {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        let mut ta = tokenize(a);
        let mut tb = tokenize(b);
        ta.sort_unstable();
        ta.dedup();
        tb.sort_unstable();
        tb.dedup();
        if ta.is_empty() && tb.is_empty() {
            return 1.0;
        }
        let inter = ta.iter().filter(|t| tb.binary_search(t).is_ok()).count();
        let union = ta.len() + tb.len() - inter;
        inter as f64 / union as f64
    }

    fn name(&self) -> &str {
        "token-jaccard"
    }
}

/// Sort tokens alphabetically, rejoin with single spaces, then compare with
/// an inner character-level comparator. Neutralizes token reordering
/// ("Panse, Fabian" vs "Fabian Panse") while keeping character-level
/// sensitivity to typos.
#[derive(Clone)]
pub struct TokenSort {
    inner: SharedComparator,
}

impl TokenSort {
    /// Token-sort over the given inner comparator.
    pub fn new(inner: SharedComparator) -> Self {
        Self { inner }
    }

    /// Token-sort over normalized Levenshtein (the `fuzzywuzzy` classic).
    pub fn levenshtein() -> Self {
        Self::new(Arc::new(crate::levenshtein::Levenshtein::new()))
    }

    fn canonical(s: &str) -> String {
        let mut tokens = tokenize(s);
        tokens.sort_unstable();
        tokens.join(" ")
    }
}

impl StringComparator for TokenSort {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        self.inner
            .similarity(&Self::canonical(a), &Self::canonical(b))
    }

    fn name(&self) -> &str {
        "token-sort"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Exact;

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(
            tokenize("van Keulen, Maurice"),
            vec!["van", "keulen", "maurice"]
        );
        assert_eq!(tokenize("  "), Vec::<String>::new());
        assert_eq!(tokenize("a-b_c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn monge_elkan_reordering_invariance() {
        let me = MongeElkan::jaro_winkler();
        let s = me.similarity("Maurice van Keulen", "van Keulen, Maurice");
        assert!((s - 1.0).abs() < 1e-12, "got {s}");
    }

    #[test]
    fn monge_elkan_with_exact_inner_counts_best_matches() {
        let me = MongeElkan::new(Arc::new(Exact));
        // "john smith" vs "john doe": directed a→b = (1 + 0)/2, b→a same.
        assert!((me.similarity("John Smith", "John Doe") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monge_elkan_empty_inputs() {
        let me = MongeElkan::jaro_winkler();
        assert_eq!(me.similarity("", ""), 1.0);
        assert_eq!(me.similarity("", "abc"), 0.0);
    }

    #[test]
    fn token_jaccard_values() {
        let j = TokenJaccard::new();
        assert_eq!(j.similarity("a b c", "a b c"), 1.0);
        assert!((j.similarity("a b c", "b c d") - 0.5).abs() < 1e-12);
        assert_eq!(j.similarity("", ""), 1.0);
        assert_eq!(j.similarity("", "a"), 0.0);
        // Duplicated tokens collapse to a set.
        assert_eq!(j.similarity("a a a", "a"), 1.0);
    }

    #[test]
    fn token_sort_neutralizes_reordering() {
        let ts = TokenSort::levenshtein();
        assert_eq!(ts.similarity("Panse, Fabian", "Fabian Panse"), 1.0);
        // But still penalizes typos.
        let s = ts.similarity("Panse, Fabian", "Fabain Panse");
        assert!(s < 1.0 && s > 0.7, "got {s}");
    }

    #[test]
    fn symmetry() {
        let me = MongeElkan::jaro_winkler();
        let ts = TokenSort::levenshtein();
        let tj = TokenJaccard::new();
        for (a, b) in [
            ("John Smith", "Smith, Jon"),
            ("", "x y"),
            ("alpha beta gamma", "beta"),
        ] {
            assert!((me.similarity(a, b) - me.similarity(b, a)).abs() < 1e-12);
            assert!((ts.similarity(a, b) - ts.similarity(b, a)).abs() < 1e-12);
            assert!((tj.similarity(a, b) - tj.similarity(b, a)).abs() < 1e-12);
        }
    }
}
