//! Semantic similarity from glossaries (synonym sets) and taxonomies
//! (ontologies) — the paper's "semantic means" of attribute value matching
//! (Section III-C).

use std::collections::HashMap;

use crate::traits::{SharedComparator, StringComparator};

/// A glossary of synonym groups.
///
/// Terms inside one group are considered synonyms with a configurable
/// within-group similarity (default `1.0`, e.g. "confectioner" ≈
/// "confectionist"). Terms found in *different* groups score the
/// cross-group similarity (default `0.0`). Terms unknown to the glossary
/// fall back to an optional character-level comparator.
#[derive(Clone)]
pub struct Glossary {
    /// term (lowercase) → group id
    groups: HashMap<String, usize>,
    group_count: usize,
    within_group: f64,
    across_groups: f64,
    fallback: Option<SharedComparator>,
}

impl Glossary {
    /// An empty glossary (every lookup falls through to the fallback).
    pub fn new() -> Self {
        Self {
            groups: HashMap::new(),
            group_count: 0,
            within_group: 1.0,
            across_groups: 0.0,
            fallback: None,
        }
    }

    /// Add a synonym group. Terms are matched case-insensitively.
    /// If a term already belongs to a group, it keeps its first assignment
    /// (glossaries are first-writer-wins to stay deterministic).
    pub fn add_group<I, S>(mut self, terms: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let id = self.group_count;
        self.group_count += 1;
        for t in terms {
            self.groups.entry(t.as_ref().to_lowercase()).or_insert(id);
        }
        self
    }

    /// Similarity assigned to two distinct terms of the same group.
    pub fn with_within_group(mut self, s: f64) -> Self {
        self.within_group = s.clamp(0.0, 1.0);
        self
    }

    /// Similarity assigned to terms of different groups.
    pub fn with_across_groups(mut self, s: f64) -> Self {
        self.across_groups = s.clamp(0.0, 1.0);
        self
    }

    /// Character-level comparator used when at least one term is unknown.
    pub fn with_fallback(mut self, fallback: SharedComparator) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// The group id of `term`, if present.
    pub fn group_of(&self, term: &str) -> Option<usize> {
        self.groups.get(&term.to_lowercase()).copied()
    }

    /// Number of synonym groups added.
    pub fn group_count(&self) -> usize {
        self.group_count
    }
}

impl Default for Glossary {
    fn default() -> Self {
        Self::new()
    }
}

impl StringComparator for Glossary {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        match (self.group_of(a), self.group_of(b)) {
            (Some(ga), Some(gb)) => {
                if ga == gb {
                    self.within_group
                } else {
                    self.across_groups
                }
            }
            _ => self.fallback.as_ref().map_or(0.0, |f| f.similarity(a, b)),
        }
    }

    fn name(&self) -> &str {
        "glossary"
    }
}

/// A tree-shaped taxonomy (ontology fragment) with Wu-Palmer similarity.
///
/// `sim(a, b) = 2·depth(lca) / (depth(a) + depth(b))` where depths count
/// edges from the root **plus one** (so the root itself has depth 1 and the
/// measure is well-defined there). Unknown terms fall back to an optional
/// character-level comparator.
///
/// Example: a small occupation taxonomy places "machinist" and "mechanic"
/// under "technical trade", giving them a high semantic similarity even
/// though their spellings differ.
#[derive(Clone)]
pub struct Taxonomy {
    /// node name (lowercase) → (parent index, depth). Root points to itself.
    nodes: Vec<(usize, u32)>,
    index: HashMap<String, usize>,
    fallback: Option<SharedComparator>,
}

impl Taxonomy {
    /// Create a taxonomy with the given root concept.
    pub fn with_root(root: &str) -> Self {
        let mut index = HashMap::new();
        index.insert(root.to_lowercase(), 0);
        Self {
            nodes: vec![(0, 1)],
            index,
            fallback: None,
        }
    }

    /// Add `child` under `parent`. Returns `self` for chaining; panics if the
    /// parent is unknown (taxonomies are built top-down by construction).
    pub fn add(mut self, parent: &str, child: &str) -> Self {
        let p = *self
            .index
            .get(&parent.to_lowercase())
            .unwrap_or_else(|| panic!("unknown taxonomy parent {parent:?}"));
        let depth = self.nodes[p].1 + 1;
        let id = self.nodes.len();
        if self.index.insert(child.to_lowercase(), id).is_none() {
            self.nodes.push((p, depth));
        }
        self
    }

    /// Character-level comparator used when a term is not in the taxonomy.
    pub fn with_fallback(mut self, fallback: SharedComparator) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Depth of `term` (root = 1), if present.
    pub fn depth(&self, term: &str) -> Option<u32> {
        self.index
            .get(&term.to_lowercase())
            .map(|&i| self.nodes[i].1)
    }

    fn lca_depth(&self, mut a: usize, mut b: usize) -> u32 {
        while self.nodes[a].1 > self.nodes[b].1 {
            a = self.nodes[a].0;
        }
        while self.nodes[b].1 > self.nodes[a].1 {
            b = self.nodes[b].0;
        }
        while a != b {
            a = self.nodes[a].0;
            b = self.nodes[b].0;
        }
        self.nodes[a].1
    }
}

impl StringComparator for Taxonomy {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        let ia = self.index.get(&a.to_lowercase());
        let ib = self.index.get(&b.to_lowercase());
        match (ia, ib) {
            (Some(&ia), Some(&ib)) => {
                let lca = self.lca_depth(ia, ib);
                let (da, db) = (self.nodes[ia].1, self.nodes[ib].1);
                2.0 * f64::from(lca) / f64::from(da + db)
            }
            _ => self.fallback.as_ref().map_or(0.0, |f| f.similarity(a, b)),
        }
    }

    fn name(&self) -> &str {
        "taxonomy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamming::NormalizedHamming;
    use std::sync::Arc;

    fn job_taxonomy() -> Taxonomy {
        Taxonomy::with_root("occupation")
            .add("occupation", "technical trade")
            .add("occupation", "food trade")
            .add("technical trade", "machinist")
            .add("technical trade", "mechanic")
            .add("technical trade", "engineer")
            .add("food trade", "baker")
            .add("food trade", "confectioner")
    }

    #[test]
    fn glossary_within_and_across() {
        let g = Glossary::new()
            .add_group(["confectioner", "confectionist"])
            .add_group(["machinist", "mechanist"]);
        assert_eq!(g.similarity("confectioner", "confectionist"), 1.0);
        assert_eq!(g.similarity("Confectioner", "CONFECTIONIST"), 1.0);
        assert_eq!(g.similarity("confectioner", "mechanist"), 0.0);
        assert_eq!(g.group_count(), 2);
    }

    #[test]
    fn glossary_fallback_for_unknown_terms() {
        let g = Glossary::new()
            .add_group(["baker", "pastry cook"])
            .with_fallback(Arc::new(NormalizedHamming::new()));
        // "Tim"/"Kim" unknown → hamming fallback 2/3.
        assert!((g.similarity("Tim", "Kim") - 2.0 / 3.0).abs() < 1e-12);
        // Without fallback, unknown pairs score 0.
        let bare = Glossary::new().add_group(["baker"]);
        assert_eq!(bare.similarity("Tim", "Kim"), 0.0);
    }

    #[test]
    fn glossary_custom_scores() {
        let g = Glossary::new()
            .add_group(["a", "b"])
            .add_group(["c"])
            .with_within_group(0.9)
            .with_across_groups(0.1);
        assert!((g.similarity("a", "b") - 0.9).abs() < 1e-12);
        assert!((g.similarity("a", "c") - 0.1).abs() < 1e-12);
        assert_eq!(g.similarity("a", "a"), 1.0); // identity overrides
    }

    #[test]
    fn taxonomy_wu_palmer() {
        let t = job_taxonomy();
        // machinist & mechanic: depths 3,3, lca "technical trade" depth 2.
        assert!((t.similarity("machinist", "mechanic") - 4.0 / 6.0).abs() < 1e-12);
        // machinist & baker: lca root depth 1 → 2/6.
        assert!((t.similarity("machinist", "baker") - 2.0 / 6.0).abs() < 1e-12);
        // siblings score higher than cross-branch pairs.
        assert!(t.similarity("baker", "confectioner") > t.similarity("baker", "mechanic"));
    }

    #[test]
    fn taxonomy_identity_and_unknowns() {
        let t = job_taxonomy().with_fallback(Arc::new(NormalizedHamming::new()));
        assert_eq!(t.similarity("mechanic", "mechanic"), 1.0);
        // "pilot" unknown → hamming fallback.
        assert!(t.similarity("pilot", "pilot2") > 0.0);
        let bare = job_taxonomy();
        assert_eq!(bare.similarity("pilot", "astronaut"), 0.0);
    }

    #[test]
    fn taxonomy_root_similarity_defined() {
        let t = Taxonomy::with_root("root").add("root", "leaf");
        // root vs leaf: lca depth 1, depths 1+2 → 2/3.
        assert!((t.similarity("root", "leaf") - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown taxonomy parent")]
    fn taxonomy_unknown_parent_panics() {
        let _ = Taxonomy::with_root("r").add("nope", "x");
    }

    #[test]
    fn symmetry() {
        let t = job_taxonomy();
        assert!(
            (t.similarity("baker", "engineer") - t.similarity("engineer", "baker")).abs() < 1e-12
        );
        let g = Glossary::new().add_group(["x", "y"]);
        assert!((g.similarity("x", "y") - g.similarity("y", "x")).abs() < 1e-12);
    }
}
