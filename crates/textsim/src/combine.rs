//! Comparator combinators: weighted ensembles, max/min, and gates.
//!
//! The paper's footnote 1 notes that using multiple comparison functions per
//! attribute yields a comparison *matrix*; combining them back into a single
//! score per attribute keeps the comparison-vector formulation. These
//! combinators perform that collapse.

use crate::traits::{SharedComparator, StringComparator};

/// Weighted average of several comparators. Weights are normalized at
/// construction; an empty ensemble scores 0 for distinct strings.
#[derive(Clone, Default)]
pub struct WeightedEnsemble {
    members: Vec<(SharedComparator, f64)>,
}

impl WeightedEnsemble {
    /// An empty ensemble.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a member with the given (non-negative) weight. Zero and negative
    /// weights are dropped.
    pub fn with(mut self, comparator: SharedComparator, weight: f64) -> Self {
        if weight > 0.0 && weight.is_finite() {
            self.members.push((comparator, weight));
        }
        self
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl StringComparator for WeightedEnsemble {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        let total: f64 = self.members.iter().map(|(_, w)| w).sum();
        if total == 0.0 {
            return if a == b { 1.0 } else { 0.0 };
        }
        self.members
            .iter()
            .map(|(c, w)| w * c.similarity(a, b))
            .sum::<f64>()
            / total
    }

    fn name(&self) -> &str {
        "weighted-ensemble"
    }
}

/// Maximum over several comparators: "similar under *any* view".
/// Useful to combine a syntactic kernel with a semantic glossary, as in
/// Section III-C of the paper.
#[derive(Clone, Default)]
pub struct MaxOf {
    members: Vec<SharedComparator>,
}

impl MaxOf {
    /// An empty combinator (scores 0 for distinct strings).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a member.
    pub fn with(mut self, comparator: SharedComparator) -> Self {
        self.members.push(comparator);
        self
    }
}

impl StringComparator for MaxOf {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        self.members
            .iter()
            .map(|c| c.similarity(a, b))
            .fold(0.0_f64, f64::max)
    }

    fn name(&self) -> &str {
        "max-of"
    }
}

/// Minimum over several comparators: "similar under *every* view".
#[derive(Clone, Default)]
pub struct MinOf {
    members: Vec<SharedComparator>,
}

impl MinOf {
    /// An empty combinator (scores 1 — the neutral element of min).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a member.
    pub fn with(mut self, comparator: SharedComparator) -> Self {
        self.members.push(comparator);
        self
    }
}

impl StringComparator for MinOf {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 1.0;
        }
        self.members
            .iter()
            .map(|c| c.similarity(a, b))
            .fold(1.0_f64, f64::min)
    }

    fn name(&self) -> &str {
        "min-of"
    }
}

/// Hard threshold gate: passes the inner similarity through when it reaches
/// `threshold`, otherwise clamps to 0. Models the "IF name > threshold1"
/// conditions of identification rules (Fig. 1) at the comparator level.
#[derive(Clone)]
pub struct ThresholdGate {
    inner: SharedComparator,
    threshold: f64,
}

impl ThresholdGate {
    /// Gate `inner` at `threshold` (clamped to `[0,1]`).
    pub fn new(inner: SharedComparator, threshold: f64) -> Self {
        Self {
            inner,
            threshold: threshold.clamp(0.0, 1.0),
        }
    }
}

impl StringComparator for ThresholdGate {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        let s = self.inner.similarity(a, b);
        if s >= self.threshold {
            s
        } else {
            0.0
        }
    }

    fn name(&self) -> &str {
        "threshold-gate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamming::NormalizedHamming;
    use crate::levenshtein::Levenshtein;
    use crate::traits::Exact;
    use std::sync::Arc;

    #[test]
    fn weighted_ensemble_averages() {
        let e = WeightedEnsemble::new()
            .with(Arc::new(Exact), 1.0)
            .with(Arc::new(NormalizedHamming::new()), 1.0);
        // Tim/Kim: exact 0, hamming 2/3 → 1/3.
        assert!((e.similarity("Tim", "Kim") - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn weighted_ensemble_normalizes_weights() {
        let heavy = WeightedEnsemble::new()
            .with(Arc::new(Exact), 10.0)
            .with(Arc::new(NormalizedHamming::new()), 30.0);
        let light = WeightedEnsemble::new()
            .with(Arc::new(Exact), 0.1)
            .with(Arc::new(NormalizedHamming::new()), 0.3);
        assert!((heavy.similarity("Tim", "Kim") - light.similarity("Tim", "Kim")).abs() < 1e-12);
    }

    #[test]
    fn weighted_ensemble_drops_bad_weights() {
        let e = WeightedEnsemble::new()
            .with(Arc::new(Exact), 0.0)
            .with(Arc::new(Exact), -1.0)
            .with(Arc::new(Exact), f64::NAN);
        assert!(e.is_empty());
        assert_eq!(e.similarity("a", "a"), 1.0);
        assert_eq!(e.similarity("a", "b"), 0.0);
    }

    #[test]
    fn max_of_takes_best_view() {
        let g = crate::semantic::Glossary::new().add_group(["mechanic", "machinist"]);
        let m = MaxOf::new()
            .with(Arc::new(g))
            .with(Arc::new(NormalizedHamming::new()));
        // Glossary gives 1.0, hamming 5/9... wait that's machinist/mechanic: glossary wins.
        assert_eq!(m.similarity("mechanic", "machinist"), 1.0);
        // Unknown pair: hamming wins over glossary's 0.
        assert!((m.similarity("Tim", "Kim") - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn min_of_takes_worst_view() {
        let m = MinOf::new()
            .with(Arc::new(Exact))
            .with(Arc::new(NormalizedHamming::new()));
        assert_eq!(m.similarity("Tim", "Kim"), 0.0);
        assert_eq!(m.similarity("Tim", "Tim"), 1.0);
    }

    #[test]
    fn empty_combinators() {
        assert_eq!(MaxOf::new().similarity("a", "b"), 0.0);
        assert_eq!(MaxOf::new().similarity("a", "a"), 1.0);
        assert_eq!(MinOf::new().similarity("a", "b"), 1.0);
    }

    #[test]
    fn threshold_gate() {
        let g = ThresholdGate::new(Arc::new(Levenshtein::new()), 0.8);
        assert_eq!(g.similarity("duplicate", "duplicate"), 1.0);
        // levenshtein("abc","abd") = 2/3 < 0.8 → gated to 0.
        assert_eq!(g.similarity("abc", "abd"), 0.0);
        // levenshtein("abcde","abcdf") = 0.8 ≥ 0.8 → passes through.
        assert!((g.similarity("abcde", "abcdf") - 0.8).abs() < 1e-12);
    }
}
