//! String, numeric and semantic similarity kernels for duplicate detection.
//!
//! This crate implements the *comparison functions* of the classical duplicate
//! detection literature (Elmagarmid et al., TKDE 2007; Batini & Scannapieco,
//! 2006) that "Duplicate Detection in Probabilistic Data" (Panse et al.,
//! ICDE 2010) incorporates into its probabilistic value matching (Section
//! III-C and Eq. 5 of the paper).
//!
//! All comparators are **normalized**: they return a similarity in `[0, 1]`
//! where `1.0` means identical and `0.0` means maximally dissimilar. The paper
//! explicitly restricts itself to normalized comparison functions (footnote 1)
//! so that comparison vectors live in `[0,1]^n`.
//!
//! # Kernels
//!
//! * [`NormalizedHamming`] — the kernel used in every worked example of the
//!   paper (`sim(Tim, Kim) = 2/3`, `sim(machinist, mechanic) = 5/9`, …).
//! * [`Levenshtein`] / [`DamerauLevenshtein`] — edit distances, normalized.
//! * [`Jaro`] / [`JaroWinkler`] — the record-linkage classics.
//! * [`QGram`] — q-gram profile similarity (Dice, Jaccard, Cosine, Overlap).
//! * [`Lcs`] — longest-common-subsequence similarity.
//! * [`SoundexComparator`] — phonetic encoding.
//! * [`MongeElkan`], [`TokenJaccard`], [`TokenSort`] — token-level
//!   comparators.
//! * [`Glossary`], [`Taxonomy`] — semantic similarity from synonym sets and
//!   ontologies (Section III-C "semantic means").
//! * [`combine`] — weighted ensembles, max/min combinators and gates.
//!
//! # Kernel tiers
//!
//! The hot kernels are layered so every input gets the fastest exact
//! implementation available (see [`bitparallel`]):
//!
//! 1. **Bit-parallel fast path** — chosen automatically when the inputs
//!    allow it: Myers' 1999 bit-vector algorithm for [`Levenshtein`]
//!    (single-`u64` for patterns ≤ 64 chars, Hyyrö's blocked multi-word
//!    form above), byte-chunked XOR + popcount for [`NormalizedHamming`]
//!    on ASCII, and a `u128`-bitset matching scan for [`Jaro`] /
//!    [`JaroWinkler`] on ASCII inputs up to 128 bytes.
//! 2. **Scalar fallback** — the classical character-level loops, taken for
//!    non-ASCII or oversized inputs and retained as the exactness oracle:
//!    the fast path must produce bitwise-identical results, which the
//!    `bitparallel_oracle` property tests enforce on arbitrary Unicode
//!    strings across the 64/65-char word boundary.
//!
//! Callers that compare the same strings many times (the interned matching
//! path in `probdedup-matching`) can additionally precompute a
//! [`PreparedText`] per distinct string —
//! [`StringComparator::similarity_prepared`] then skips the per-comparison
//! ASCII scans, length counts and Myers `Peq` table builds. The
//! [`Normalizer`] has a matching single-allocation fast path for ASCII
//! inputs on the preparation side.
//!
//! # Example
//!
//! ```
//! use probdedup_textsim::{NormalizedHamming, StringComparator};
//!
//! let h = NormalizedHamming::new();
//! // The paper's Section IV-A example: sim(Tim, Kim) = 2/3.
//! assert!((h.similarity("Tim", "Kim") - 2.0 / 3.0).abs() < 1e-12);
//! ```

pub mod alignment;
pub mod bitparallel;
pub mod combine;
pub mod hamming;
pub mod jaro;
pub mod lcs;
pub mod levenshtein;
pub mod ngram;
pub mod normalize;
pub mod numeric;
pub mod phonetic;
pub mod semantic;
pub mod token;
pub mod traits;

pub use alignment::SmithWaterman;
pub use bitparallel::{
    class_absent_bound, class_mask, hamming_bytes, myers_distance, myers_distance_within,
    PatternBits, PreparedText,
};
pub use combine::{MaxOf, MinOf, ThresholdGate, WeightedEnsemble};
pub use hamming::NormalizedHamming;
pub use jaro::{Jaro, JaroWinkler};
pub use lcs::Lcs;
pub use levenshtein::{DamerauLevenshtein, Levenshtein};
pub use ngram::{ProfileSimilarity, QGram};
pub use normalize::Normalizer;
pub use numeric::{AbsoluteScaled, RelativeNumeric};
pub use phonetic::SoundexComparator;
pub use semantic::{Glossary, Taxonomy};
pub use token::{MongeElkan, TokenJaccard, TokenSort};
pub use traits::{Exact, SharedComparator, StringComparator};

#[cfg(test)]
mod crate_tests {
    use super::*;

    /// Every comparator exported at the top level must be normalized and
    /// reflexive on a sample of inputs. The per-module tests cover exact
    /// values; this is a cross-module smoke test.
    #[test]
    fn all_comparators_normalized_and_reflexive() {
        let comparators: Vec<Box<dyn StringComparator>> = vec![
            Box::new(NormalizedHamming::new()),
            Box::new(Levenshtein::new()),
            Box::new(DamerauLevenshtein::new()),
            Box::new(Jaro::new()),
            Box::new(JaroWinkler::default()),
            Box::new(QGram::bigram(ProfileSimilarity::Dice)),
            Box::new(QGram::trigram(ProfileSimilarity::Jaccard)),
            Box::new(Lcs::new()),
            Box::new(SoundexComparator::strict()),
            Box::new(SmithWaterman::new()),
            Box::new(Exact),
        ];
        let samples = [
            ("", ""),
            ("a", ""),
            ("", "a"),
            ("Tim", "Tim"),
            ("Tim", "Kim"),
            ("machinist", "mechanic"),
            ("John", "Johan"),
            ("a longer string with spaces", "another string"),
        ];
        for c in &comparators {
            for (a, b) in samples {
                let s = c.similarity(a, b);
                assert!((0.0..=1.0).contains(&s), "{}({a:?},{b:?}) = {s}", c.name());
                if a == b {
                    assert!(
                        (s - 1.0).abs() < 1e-12,
                        "{} not reflexive on {a:?}",
                        c.name()
                    );
                }
            }
        }
    }
}
