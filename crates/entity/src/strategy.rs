//! The clustering strategies entity resolution can run, selectable
//! end-to-end (pipeline, session, CLI `--strategy`, daemon `?strategy=`).

/// How the match graph is turned into an entity partition.
///
/// All three strategies are deterministic functions of the decided pairs:
/// nodes are visited in ascending row order, local-search moves require a
/// strict improvement with deterministic tie-breaks, so the output is
/// byte-stable across thread counts and shard splits (whenever the
/// underlying decisions are — see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterStrategy {
    /// Transitive closure of Match edges (union-find). The baseline: any
    /// chain of matches merges, however many NonMatch verdicts disagree.
    Components,
    /// Ailon-style greedy pivot correlation clustering: visit rows in
    /// ascending order; each still-unassigned row becomes a pivot and
    /// absorbs its unassigned positive neighbors. Chains *through* an
    /// assigned row no longer merge, which already breaks many
    /// inconsistent triangles.
    CorrelationGreedy,
    /// [`CorrelationGreedy`](Self::CorrelationGreedy) followed by a
    /// best-move local-search pass: each row may move to the neighboring
    /// cluster (or a fresh singleton) that strictly improves its net
    /// agreement weight `Σ w⁺(in-cluster matches) − Σ w⁻(in-cluster
    /// non-matches)`, repeated to a fixed point (bounded rounds). This is
    /// the strategy that *repairs* inconsistent triangles by net edge
    /// weight.
    CorrelationRepaired,
}

impl ClusterStrategy {
    /// Every strategy, in `id` order.
    pub const ALL: [ClusterStrategy; 3] = [
        ClusterStrategy::Components,
        ClusterStrategy::CorrelationGreedy,
        ClusterStrategy::CorrelationRepaired,
    ];

    /// Stable kebab-case name (CLI `--strategy` values, daemon
    /// `?strategy=` values).
    pub const fn name(self) -> &'static str {
        match self {
            ClusterStrategy::Components => "components",
            ClusterStrategy::CorrelationGreedy => "correlation-greedy",
            ClusterStrategy::CorrelationRepaired => "correlation-repaired",
        }
    }

    /// Stable discriminant — the `strategy` byte of
    /// [`CachedEntities`](probdedup_core::CachedEntities) (snapshot
    /// section 9, so the values are part of the on-disk format).
    pub const fn id(self) -> u8 {
        match self {
            ClusterStrategy::Components => 0,
            ClusterStrategy::CorrelationGreedy => 1,
            ClusterStrategy::CorrelationRepaired => 2,
        }
    }

    /// Parse a [`name`](Self::name); `None` for anything else.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Inverse of [`id`](Self::id); `None` for unknown discriminants.
    pub const fn from_id(id: u8) -> Option<Self> {
        match id {
            0 => Some(ClusterStrategy::Components),
            1 => Some(ClusterStrategy::CorrelationGreedy),
            2 => Some(ClusterStrategy::CorrelationRepaired),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClusterStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_ids_round_trip() {
        for s in ClusterStrategy::ALL {
            assert_eq!(ClusterStrategy::from_name(s.name()), Some(s));
            assert_eq!(ClusterStrategy::from_id(s.id()), Some(s));
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(ClusterStrategy::from_name("nope"), None);
        assert_eq!(ClusterStrategy::from_id(3), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        for (i, s) in ClusterStrategy::ALL.into_iter().enumerate() {
            assert_eq!(s.id() as usize, i);
        }
    }
}
