//! Entity resolution over pairwise dedup verdicts — the merge/purge step
//! the paper's pipeline stops short of.
//!
//! The dedup pipeline ends with a Match / Possible / NonMatch partition
//! of the candidate pairs; this crate turns that into *entities*: a
//! streaming [`MatchGraphBuilder`] collects the verdicts into a signed,
//! similarity-weighted [`MatchGraph`], a [`ClusterStrategy`] partitions
//! it, and [`EntityResolution::canonical_records`] fuses each cluster
//! into one canonical record through `probdedup_core::fuse_xtuples`.
//!
//! Three strategies compete on measured quality (`probdedup-eval`'s
//! cluster metrics):
//!
//! * [`ClusterStrategy::Components`] — transitive closure of Match edges
//!   (the classical baseline; gluing everything a match chain reaches).
//! * [`ClusterStrategy::CorrelationGreedy`] — Ailon-style greedy pivot
//!   correlation clustering under a fixed (ascending row) pivot order.
//! * [`ClusterStrategy::CorrelationRepaired`] — greedy pivot plus a
//!   best-move local search that repairs inconsistent triangles
//!   (`A≈B, B≈C, A≉C`) by net edge weight.
//!
//! # Determinism
//!
//! Every strategy is a pure function of the decided pairs — insertion
//! order is erased by the graph build, pivots follow row order, and
//! local-search moves demand strict improvement with deterministic
//! tie-breaks. Output is therefore byte-stable across thread counts and
//! shard splits whenever the decisions themselves are (exact matching
//! guarantees that; bounded+cached matching certifies only the class
//! partition, so correlation weights may differ there).
//!
//! Warm [`DedupSession`](probdedup_core::DedupSession)s memoize
//! resolutions per strategy through [`SessionEntities`]; the memo rides
//! snapshot section 9, so a restored session serves byte-identical
//! entities without re-clustering.
//!
//! # Example
//!
//! ```
//! use probdedup_core::PairDecision;
//! use probdedup_decision::MatchClass;
//! use probdedup_entity::{resolve_decisions, ClusterStrategy};
//!
//! // An inconsistent triangle: 0≈1 strongly, 1≈2 weakly, 0≉2 strongly.
//! let decisions = vec![
//!     PairDecision { pair: (0, 1), similarity: 0.92, class: MatchClass::Match },
//!     PairDecision { pair: (1, 2), similarity: 0.70, class: MatchClass::Match },
//!     PairDecision { pair: (0, 2), similarity: 0.08, class: MatchClass::NonMatch },
//! ];
//!
//! // Transitive closure glues all three rows into one entity...
//! let naive = resolve_decisions(3, &decisions, ClusterStrategy::Components);
//! assert_eq!(naive.clusters, vec![vec![0, 1, 2]]);
//! assert_eq!(naive.stats.inconsistent_triangles, 1);
//!
//! // ...while the repaired strategy splits the weak link by net weight.
//! let repaired = resolve_decisions(3, &decisions, ClusterStrategy::CorrelationRepaired);
//! assert_eq!(repaired.clusters, vec![vec![0, 1], vec![2]]);
//! ```

mod cluster;
pub mod graph;
pub mod resolve;
pub mod strategy;

pub use graph::{MatchGraph, MatchGraphBuilder};
pub use resolve::{
    resolve_decisions, resolve_graph, EntityResolution, EntityStats, PipelineEntities,
    ResolveEntities, SessionEntities,
};
pub use strategy::ClusterStrategy;
