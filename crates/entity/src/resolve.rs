//! Entity resolution proper: turn decided pairs into an
//! [`EntityResolution`] under a [`ClusterStrategy`], with canonical-record
//! fusion hooks and session memoization.

use probdedup_core::{
    fuse_xtuples, CachedEntities, DedupPipeline, DedupResult, DedupSession, PairDecision,
};
use probdedup_model::error::ModelError;
use probdedup_model::relation::XRelation;
use probdedup_model::xtuple::XTuple;

use crate::cluster::{canonical_partition, components, greedy_pivot, repair};
use crate::graph::{MatchGraph, MatchGraphBuilder};
use crate::strategy::ClusterStrategy;

/// Counters describing one resolution (graph shape + clustering work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EntityStats {
    /// Combined-relation rows clustered.
    pub rows: usize,
    /// Entities in the partition (clusters, singletons included).
    pub entities: usize,
    /// Rows merged away: `rows − entities`.
    pub duplicates: usize,
    /// Largest cluster.
    pub max_cluster_size: usize,
    /// Match edges in the graph.
    pub positive_edges: usize,
    /// NonMatch edges in the graph.
    pub negative_edges: usize,
    /// Possible-band edges (kept out of clustering).
    pub possible_edges: usize,
    /// Inconsistent triangles (`A≈B, B≈C, A≉C`) in the graph — a property
    /// of the verdicts, identical for every strategy.
    pub inconsistent_triangles: usize,
    /// Local-search moves the repair pass performed (0 for the
    /// closed-form strategies).
    pub repair_moves: u64,
}

/// A resolved entity partition of a dedup run.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityResolution {
    /// The strategy that produced it.
    pub strategy: ClusterStrategy,
    /// Rows of the combined relation the row indices refer to.
    pub rows: usize,
    /// The full partition: every row in exactly one cluster, clusters
    /// ordered by smallest member, members ascending.
    pub clusters: Vec<Vec<usize>>,
    /// The Possible-band edges `(i, j, similarity)` — the clerical-review
    /// residue the partition deliberately does not act on.
    pub possible: Vec<(usize, usize, f64)>,
    /// Graph and clustering counters.
    pub stats: EntityStats,
}

impl EntityResolution {
    /// Clusters that actually merged rows (size ≥ 2).
    pub fn duplicate_clusters(&self) -> impl Iterator<Item = &[usize]> {
        self.clusters
            .iter()
            .filter(|c| c.len() >= 2)
            .map(Vec::as_slice)
    }

    /// One canonical record per entity, in cluster order: cluster members
    /// fused pairwise through [`fuse_xtuples`] (ascending row order, so
    /// the fold is deterministic); singletons pass through unchanged.
    /// `relation` must be the combined relation the resolution was
    /// computed over.
    pub fn canonical_records(&self, relation: &XRelation) -> Vec<XTuple> {
        self.clusters
            .iter()
            .map(|cluster| {
                let mut fused = relation
                    .get(cluster[0])
                    .expect("resolution rows index its relation")
                    .clone();
                for &row in &cluster[1..] {
                    fused = fuse_xtuples(
                        &fused,
                        relation
                            .get(row)
                            .expect("resolution rows index its relation"),
                    );
                }
                fused
            })
            .collect()
    }

    /// One-line report, e.g. `strategy correlation-repaired: 50 rows → 31
    /// entities (12 duplicate clusters, largest 4); 3 inconsistent
    /// triangles, 2 repair moves, 5 possible edges left to review`.
    pub fn summary(&self) -> String {
        let dup_clusters = self.duplicate_clusters().count();
        format!(
            "strategy {}: {} rows → {} entities ({} duplicate cluster{}, largest {}); \
             {} inconsistent triangle{}, {} repair move{}, {} possible edge{} left to review",
            self.strategy,
            self.stats.rows,
            self.stats.entities,
            dup_clusters,
            if dup_clusters == 1 { "" } else { "s" },
            self.stats.max_cluster_size,
            self.stats.inconsistent_triangles,
            if self.stats.inconsistent_triangles == 1 {
                ""
            } else {
                "s"
            },
            self.stats.repair_moves,
            if self.stats.repair_moves == 1 {
                ""
            } else {
                "s"
            },
            self.stats.possible_edges,
            if self.stats.possible_edges == 1 {
                ""
            } else {
                "s"
            },
        )
    }
}

/// Build the match graph of a decision list (streaming, order-invariant).
fn build_graph(rows: usize, decisions: &[PairDecision]) -> MatchGraph {
    let mut builder = MatchGraphBuilder::new(rows);
    for d in decisions {
        builder.add_decision(d);
    }
    builder.finish()
}

/// Assemble an [`EntityResolution`] from a graph and a known partition
/// (either freshly clustered or replayed from a session's entity cache).
fn assemble(
    graph: &MatchGraph,
    strategy: ClusterStrategy,
    clusters: Vec<Vec<usize>>,
    repair_moves: u64,
) -> EntityResolution {
    let stats = EntityStats {
        rows: graph.rows(),
        entities: clusters.len(),
        duplicates: graph.rows() - clusters.len(),
        max_cluster_size: clusters.iter().map(Vec::len).max().unwrap_or(0),
        positive_edges: graph.positive_edge_count(),
        negative_edges: graph.negative_edge_count(),
        possible_edges: graph.possible().len(),
        inconsistent_triangles: graph.inconsistent_triangles(),
        repair_moves,
    };
    EntityResolution {
        strategy,
        rows: graph.rows(),
        clusters,
        possible: graph.possible().to_vec(),
        stats,
    }
}

/// Resolve a finished [`MatchGraph`] under `strategy`.
pub fn resolve_graph(graph: &MatchGraph, strategy: ClusterStrategy) -> EntityResolution {
    let (clusters, moves) = match strategy {
        ClusterStrategy::Components => (components(graph), 0),
        ClusterStrategy::CorrelationGreedy => (canonical_partition(&greedy_pivot(graph)), 0),
        ClusterStrategy::CorrelationRepaired => {
            let mut assign = greedy_pivot(graph);
            let moves = repair(graph, &mut assign);
            (canonical_partition(&assign), moves)
        }
    };
    assemble(graph, strategy, clusters, moves)
}

/// Resolve a decision list over `rows` combined-relation rows (any pair
/// order — the graph build canonicalizes).
pub fn resolve_decisions(
    rows: usize,
    decisions: &[PairDecision],
    strategy: ClusterStrategy,
) -> EntityResolution {
    resolve_graph(&build_graph(rows, decisions), strategy)
}

/// Entity resolution as a step on a finished [`DedupResult`].
pub trait ResolveEntities {
    /// Cluster the decided pairs into entities under `strategy`.
    fn resolve_entities(&self, strategy: ClusterStrategy) -> EntityResolution;
}

impl ResolveEntities for DedupResult {
    fn resolve_entities(&self, strategy: ClusterStrategy) -> EntityResolution {
        resolve_decisions(self.relation.len(), &self.decisions, strategy)
    }
}

/// Entity resolution as a pipeline step: run, then cluster.
pub trait PipelineEntities {
    /// Run the pipeline over `sources` and resolve the result under
    /// `strategy`, returning both.
    fn run_entities(
        &self,
        sources: &[&XRelation],
        strategy: ClusterStrategy,
    ) -> Result<(DedupResult, EntityResolution), ModelError>;
}

impl PipelineEntities for DedupPipeline {
    fn run_entities(
        &self,
        sources: &[&XRelation],
        strategy: ClusterStrategy,
    ) -> Result<(DedupResult, EntityResolution), ModelError> {
        let result = self.run(sources)?;
        let resolution = result.resolve_entities(strategy);
        Ok((result, resolution))
    }
}

/// Entity resolution over a warm [`DedupSession`], memoized through the
/// session's entity cache (snapshot section 9): the first resolve per
/// strategy clusters and caches; later resolves — including resolves
/// after a snapshot save → open round-trip — replay the cached partition
/// byte-identically and only rebuild the (cheap, linear) graph counters.
pub trait SessionEntities {
    /// Resolve under `strategy`, consulting and updating the session's
    /// entity cache.
    fn resolve_entities(&mut self, strategy: ClusterStrategy) -> EntityResolution;

    /// Read-only resolve: replays the cache when warm, otherwise clusters
    /// from scratch without memoizing (identical output either way).
    fn peek_entities(&self, strategy: ClusterStrategy) -> EntityResolution;
}

impl SessionEntities for DedupSession {
    fn resolve_entities(&mut self, strategy: ClusterStrategy) -> EntityResolution {
        if let Some(hit) = self.cached_entities(strategy.id()) {
            let (moves, clusters) = (hit.moves, hit.clusters.clone());
            let result = self.result();
            let graph = build_graph(result.relation.len(), &result.decisions);
            return assemble(&graph, strategy, clusters, moves);
        }
        let result = self.result();
        let resolution = resolve_decisions(result.relation.len(), &result.decisions, strategy);
        self.cache_entities(CachedEntities {
            strategy: strategy.id(),
            moves: resolution.stats.repair_moves,
            clusters: resolution.clusters.clone(),
        });
        resolution
    }

    fn peek_entities(&self, strategy: ClusterStrategy) -> EntityResolution {
        let result = self.result();
        match self.cached_entities(strategy.id()) {
            Some(hit) => {
                let graph = build_graph(result.relation.len(), &result.decisions);
                assemble(&graph, strategy, hit.clusters.clone(), hit.moves)
            }
            None => resolve_decisions(result.relation.len(), &result.decisions, strategy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdedup_decision::MatchClass;

    fn decision(pair: (usize, usize), similarity: f64, class: MatchClass) -> PairDecision {
        PairDecision {
            pair,
            similarity,
            class,
        }
    }

    /// The constructed inconsistent-triangle fixture of the issue: A≈B
    /// strongly, B≈C weakly, A≉C strongly.
    fn triangle() -> Vec<PairDecision> {
        vec![
            decision((0, 1), 0.9, MatchClass::Match),
            decision((1, 2), 0.7, MatchClass::Match),
            decision((0, 2), 0.1, MatchClass::NonMatch),
        ]
    }

    #[test]
    fn components_glue_the_inconsistent_triangle() {
        let r = resolve_decisions(3, &triangle(), ClusterStrategy::Components);
        assert_eq!(r.clusters, vec![vec![0, 1, 2]]);
        assert_eq!(r.stats.inconsistent_triangles, 1);
        assert_eq!(r.stats.repair_moves, 0);
    }

    #[test]
    fn repair_splits_the_inconsistent_triangle() {
        let r = resolve_decisions(3, &triangle(), ClusterStrategy::CorrelationRepaired);
        // Net weight keeps the strong pair {0, 1} and splits C off: C's
        // tie to the cluster is 0.7 − 0.9 < 0.
        assert_eq!(r.clusters, vec![vec![0, 1], vec![2]]);
        assert_eq!(r.stats.inconsistent_triangles, 1);
    }

    #[test]
    fn resolution_is_invariant_under_pair_order() {
        let mut decisions = triangle();
        decisions.push(decision((0, 3), 0.75, MatchClass::Possible));
        let forward: Vec<EntityResolution> = ClusterStrategy::ALL
            .into_iter()
            .map(|s| resolve_decisions(4, &decisions, s))
            .collect();
        decisions.reverse();
        for (s, f) in ClusterStrategy::ALL.into_iter().zip(forward) {
            assert_eq!(resolve_decisions(4, &decisions, s), f, "strategy {s}");
        }
    }

    #[test]
    fn possible_edges_do_not_cluster() {
        let decisions = vec![decision((0, 1), 0.75, MatchClass::Possible)];
        for s in ClusterStrategy::ALL {
            let r = resolve_decisions(2, &decisions, s);
            assert_eq!(r.clusters, vec![vec![0], vec![1]], "strategy {s}");
            assert_eq!(r.possible, vec![(0, 1, 0.75)]);
            assert_eq!(r.stats.possible_edges, 1);
        }
    }

    #[test]
    fn stats_and_summary_agree() {
        let r = resolve_decisions(3, &triangle(), ClusterStrategy::CorrelationRepaired);
        assert_eq!(r.stats.rows, 3);
        assert_eq!(r.stats.entities, 2);
        assert_eq!(r.stats.duplicates, 1);
        assert_eq!(r.stats.max_cluster_size, 2);
        assert_eq!(r.stats.positive_edges, 2);
        assert_eq!(r.stats.negative_edges, 1);
        let s = r.summary();
        assert!(s.contains("correlation-repaired"), "{s}");
        assert!(s.contains("3 rows → 2 entities"), "{s}");
    }

    #[test]
    fn empty_input_resolves_to_nothing() {
        for s in ClusterStrategy::ALL {
            let r = resolve_decisions(0, &[], s);
            assert!(r.clusters.is_empty());
            assert_eq!(r.stats, EntityStats::default());
        }
    }
}
