//! The match graph: pairwise verdicts as a signed, similarity-weighted
//! graph over the combined relation's row indices.
//!
//! Built *streaming* — decisions are pushed one at a time in any order —
//! and canonicalized on [`finish`](MatchGraphBuilder::finish) (adjacency
//! sorted by neighbor), so the graph, and everything clustered from it,
//! is invariant under the pair order of the input.

use probdedup_core::PairDecision;
use probdedup_decision::MatchClass;

/// Agreement weight of a decision: its similarity clamped to `[0, 1]`
/// (the standard pipeline models already emit normalized degrees; a
/// non-normalized matching weight saturates at full agreement).
fn agreement(similarity: f64) -> f64 {
    if similarity.is_nan() {
        0.5
    } else {
        similarity.clamp(0.0, 1.0)
    }
}

/// Streaming builder for a [`MatchGraph`] over `rows` nodes.
#[derive(Debug, Clone)]
pub struct MatchGraphBuilder {
    pos: Vec<Vec<(usize, f64)>>,
    neg: Vec<Vec<(usize, f64)>>,
    possible: Vec<(usize, usize, f64)>,
}

impl MatchGraphBuilder {
    /// An empty graph over `rows` nodes.
    pub fn new(rows: usize) -> Self {
        Self {
            pos: vec![Vec::new(); rows],
            neg: vec![Vec::new(); rows],
            possible: Vec::new(),
        }
    }

    /// Add one pairwise verdict. `Match` becomes a positive edge weighted
    /// by the similarity, `NonMatch` a negative edge weighted by
    /// `1 − similarity` (a confident non-match repels strongly), and
    /// `Possible` is kept separately — the clerical-review band does not
    /// cluster (see [`MatchGraph::possible`]).
    pub fn add_decision(&mut self, d: &PairDecision) {
        let (i, j) = d.pair;
        debug_assert!(i < j && j < self.pos.len(), "canonical in-range pair");
        match d.class {
            MatchClass::Match => {
                let w = agreement(d.similarity);
                self.pos[i].push((j, w));
                self.pos[j].push((i, w));
            }
            MatchClass::NonMatch => {
                let w = 1.0 - agreement(d.similarity);
                self.neg[i].push((j, w));
                self.neg[j].push((i, w));
            }
            MatchClass::Possible => self.possible.push((i, j, d.similarity)),
        }
    }

    /// Canonicalize: adjacency sorted by neighbor id, possible edges by
    /// pair. After this the graph carries no trace of insertion order.
    pub fn finish(mut self) -> MatchGraph {
        for adj in self.pos.iter_mut().chain(self.neg.iter_mut()) {
            adj.sort_unstable_by_key(|&(u, _)| u);
        }
        self.possible.sort_unstable_by_key(|&(i, j, _)| (i, j));
        let pos_edges = self.pos.iter().map(Vec::len).sum::<usize>() / 2;
        let neg_edges = self.neg.iter().map(Vec::len).sum::<usize>() / 2;
        MatchGraph {
            pos: self.pos,
            neg: self.neg,
            possible: self.possible,
            pos_edges,
            neg_edges,
        }
    }
}

/// The finished match graph (see [`MatchGraphBuilder`]).
#[derive(Debug, Clone)]
pub struct MatchGraph {
    pos: Vec<Vec<(usize, f64)>>,
    neg: Vec<Vec<(usize, f64)>>,
    possible: Vec<(usize, usize, f64)>,
    pos_edges: usize,
    neg_edges: usize,
}

impl MatchGraph {
    /// Number of nodes (combined-relation rows).
    pub fn rows(&self) -> usize {
        self.pos.len()
    }

    /// Number of Match edges.
    pub fn positive_edge_count(&self) -> usize {
        self.pos_edges
    }

    /// Number of NonMatch edges.
    pub fn negative_edge_count(&self) -> usize {
        self.neg_edges
    }

    /// Positive (Match) neighbors of `v` with their agreement weights,
    /// ascending by neighbor id.
    pub fn positive_neighbors(&self, v: usize) -> &[(usize, f64)] {
        &self.pos[v]
    }

    /// Negative (NonMatch) neighbors of `v` with their repulsion weights,
    /// ascending by neighbor id.
    pub fn negative_neighbors(&self, v: usize) -> &[(usize, f64)] {
        &self.neg[v]
    }

    /// The Possible-band edges `(i, j, similarity)` in canonical pair
    /// order. Deliberately excluded from clustering: the pipeline already
    /// routed them to clerical review, and silently merging (or
    /// splitting) on them would launder that uncertainty away.
    pub fn possible(&self) -> &[(usize, usize, f64)] {
        &self.possible
    }

    /// Number of inconsistent triangles: row triples where two pairs
    /// matched but the closing pair did not (`A≈B, B≈C, A≉C`) — exactly
    /// the configurations transitive closure glosses over and the repair
    /// strategy arbitrates by net weight. Each triangle has one NonMatch
    /// edge, so counting per negative edge counts each once.
    pub fn inconsistent_triangles(&self) -> usize {
        let mut count = 0;
        for a in 0..self.rows() {
            for &(b, _) in &self.neg[a] {
                if b <= a {
                    continue;
                }
                count += sorted_intersection_len(&self.pos[a], &self.pos[b]);
            }
        }
        count
    }
}

/// Size of the intersection of two neighbor lists sorted by id.
fn sorted_intersection_len(a: &[(usize, f64)], b: &[(usize, f64)]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(pair: (usize, usize), similarity: f64, class: MatchClass) -> PairDecision {
        PairDecision {
            pair,
            similarity,
            class,
        }
    }

    fn graph(rows: usize, decisions: &[PairDecision]) -> MatchGraph {
        let mut b = MatchGraphBuilder::new(rows);
        for d in decisions {
            b.add_decision(d);
        }
        b.finish()
    }

    #[test]
    fn edges_land_in_their_bands() {
        let g = graph(
            4,
            &[
                decision((0, 1), 0.9, MatchClass::Match),
                decision((1, 2), 0.3, MatchClass::NonMatch),
                decision((2, 3), 0.7, MatchClass::Possible),
            ],
        );
        assert_eq!(g.positive_edge_count(), 1);
        assert_eq!(g.negative_edge_count(), 1);
        assert_eq!(g.possible(), &[(2, 3, 0.7)]);
        assert_eq!(g.positive_neighbors(0), &[(1, 0.9)]);
        assert_eq!(g.positive_neighbors(1), &[(0, 0.9)]);
        // NonMatch weight is 1 − similarity.
        assert_eq!(g.negative_neighbors(1), &[(2, 0.7)]);
        assert!(g.positive_neighbors(3).is_empty());
    }

    #[test]
    fn finish_is_invariant_under_insertion_order() {
        let decisions = [
            decision((0, 1), 0.9, MatchClass::Match),
            decision((0, 2), 0.8, MatchClass::Match),
            decision((1, 2), 0.2, MatchClass::NonMatch),
            decision((2, 3), 0.7, MatchClass::Possible),
            decision((0, 3), 0.75, MatchClass::Possible),
        ];
        let forward = graph(4, &decisions);
        let mut reversed = decisions;
        reversed.reverse();
        let backward = graph(4, &reversed);
        for v in 0..4 {
            assert_eq!(
                forward.positive_neighbors(v),
                backward.positive_neighbors(v)
            );
            assert_eq!(
                forward.negative_neighbors(v),
                backward.negative_neighbors(v)
            );
        }
        assert_eq!(forward.possible(), backward.possible());
    }

    #[test]
    fn triangle_counting_counts_each_once() {
        // 0≈1, 1≈2, 0≉2: one inconsistent triangle.
        let g = graph(
            3,
            &[
                decision((0, 1), 0.9, MatchClass::Match),
                decision((1, 2), 0.85, MatchClass::Match),
                decision((0, 2), 0.1, MatchClass::NonMatch),
            ],
        );
        assert_eq!(g.inconsistent_triangles(), 1);
        // A consistent triangle has none.
        let g = graph(
            3,
            &[
                decision((0, 1), 0.9, MatchClass::Match),
                decision((1, 2), 0.85, MatchClass::Match),
                decision((0, 2), 0.8, MatchClass::Match),
            ],
        );
        assert_eq!(g.inconsistent_triangles(), 0);
    }

    #[test]
    fn weights_are_clamped() {
        let g = graph(
            2,
            &[decision((0, 1), 7.5, MatchClass::Match)], // matching weight > 1
        );
        assert_eq!(g.positive_neighbors(0), &[(1, 1.0)]);
    }
}
