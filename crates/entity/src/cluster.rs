//! The clustering algorithms behind [`ClusterStrategy`]: connected
//! components, greedy pivot, and the best-move local-search repair.
//!
//! [`ClusterStrategy`]: crate::ClusterStrategy

use std::collections::BTreeMap;

use probdedup_core::UnionFind;

use crate::graph::MatchGraph;

/// Strict-improvement threshold of the local search: a move must beat the
/// current placement by more than this, so floating-point noise cannot
/// make two placements oscillate forever.
const EPS: f64 = 1e-12;

/// Local-search round cap. Each round is a full ascending sweep; the
/// search normally reaches a fixed point in two or three rounds, and the
/// cap makes termination unconditional.
pub(crate) const MAX_REPAIR_ROUNDS: usize = 16;

/// Transitive closure of the positive edges — every node in its
/// component, singletons included, smallest-member order.
pub(crate) fn components(graph: &MatchGraph) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(graph.rows());
    for v in 0..graph.rows() {
        for &(u, _) in graph.positive_neighbors(v) {
            uf.union(v, u);
        }
    }
    uf.clusters_with_map().0
}

/// Ailon-style greedy pivot: visit nodes ascending; each unassigned node
/// pivots a new cluster and absorbs its unassigned positive neighbors.
/// Returns the cluster id per node. Deterministic by construction (the
/// pivot order is the node order), and every cluster's pivot is its
/// smallest member — a smaller positive neighbor would have pivoted (or
/// been absorbed) first.
pub(crate) fn greedy_pivot(graph: &MatchGraph) -> Vec<usize> {
    let n = graph.rows();
    let mut assign = vec![usize::MAX; n];
    let mut next = 0;
    for v in 0..n {
        if assign[v] != usize::MAX {
            continue;
        }
        assign[v] = next;
        for &(u, _) in graph.positive_neighbors(v) {
            if assign[u] == usize::MAX {
                assign[u] = next;
            }
        }
        next += 1;
    }
    assign
}

/// Best-move local search over `assign`: each node may move to the
/// neighboring cluster (or a fresh singleton) maximizing its net
/// agreement `Σ w⁺(positive edges inside) − Σ w⁻(negative edges
/// inside)`; only strictly improving moves are taken. Returns the number
/// of moves performed.
///
/// Deterministic: nodes sweep in ascending order, candidate clusters are
/// scored in ascending id order with ties resolved toward the current
/// placement first and the smallest cluster id second, and each move
/// strictly increases the (bounded) global objective, so the fixed point
/// — and every step toward it — is a pure function of the graph.
pub(crate) fn repair(graph: &MatchGraph, assign: &mut [usize]) -> u64 {
    let n = graph.rows();
    let mut moves = 0u64;
    let mut next_fresh = assign.iter().copied().max().map_or(0, |m| m + 1);
    for _ in 0..MAX_REPAIR_ROUNDS {
        let mut changed = false;
        for v in 0..n {
            let cur = assign[v];
            // Net agreement of placing v in each adjacent cluster (the
            // BTreeMap gives ascending-id iteration, hence deterministic
            // tie-breaks).
            let mut score: BTreeMap<usize, f64> = BTreeMap::new();
            score.insert(cur, 0.0);
            for &(u, w) in graph.positive_neighbors(v) {
                *score.entry(assign[u]).or_insert(0.0) += w;
            }
            for &(u, w) in graph.negative_neighbors(v) {
                *score.entry(assign[u]).or_insert(0.0) -= w;
            }
            let (mut best_c, mut best_s) = (cur, score[&cur]);
            for (&c, &s) in &score {
                if s > best_s + EPS {
                    best_c = c;
                    best_s = s;
                }
            }
            // A fresh singleton scores 0: strictly better ⇒ split v out.
            if 0.0 > best_s + EPS {
                best_c = next_fresh;
            }
            if best_c != cur {
                if best_c == next_fresh {
                    next_fresh += 1;
                }
                assign[v] = best_c;
                moves += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    moves
}

/// Canonicalize an assignment vector into the partition contract shared
/// with [`UnionFind::clusters_with_map`]: clusters ordered by smallest
/// member, members ascending (first-seen order over ascending nodes *is*
/// smallest-member order).
pub(crate) fn canonical_partition(assign: &[usize]) -> Vec<Vec<usize>> {
    let mut slot: BTreeMap<usize, usize> = BTreeMap::new();
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for (v, &a) in assign.iter().enumerate() {
        let s = *slot.entry(a).or_insert_with(|| {
            clusters.push(Vec::new());
            clusters.len() - 1
        });
        clusters[s].push(v);
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MatchGraphBuilder;
    use probdedup_core::PairDecision;
    use probdedup_decision::MatchClass;

    fn graph(rows: usize, edges: &[(usize, usize, f64, MatchClass)]) -> MatchGraph {
        let mut b = MatchGraphBuilder::new(rows);
        for &(i, j, similarity, class) in edges {
            b.add_decision(&PairDecision {
                pair: (i, j),
                similarity,
                class,
            });
        }
        b.finish()
    }

    #[test]
    fn components_cover_all_nodes() {
        let g = graph(
            5,
            &[
                (0, 1, 0.9, MatchClass::Match),
                (1, 2, 0.9, MatchClass::Match),
                (3, 4, 0.2, MatchClass::NonMatch),
            ],
        );
        assert_eq!(components(&g), vec![vec![0, 1, 2], vec![3], vec![4]]);
    }

    #[test]
    fn greedy_pivot_breaks_chains_through_assigned_nodes() {
        // 0≈1, 1≈2 but 0 and 2 never compared: pivot 0 takes {0, 1},
        // leaving 2 to pivot alone — unlike transitive closure.
        let g = graph(
            3,
            &[
                (0, 1, 0.9, MatchClass::Match),
                (1, 2, 0.9, MatchClass::Match),
            ],
        );
        let assign = greedy_pivot(&g);
        assert_eq!(canonical_partition(&assign), vec![vec![0, 1], vec![2]]);
        assert_eq!(components(&g), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn repair_splits_a_weakly_attached_node() {
        // 0≈1 weakly (0.55) while 0≉2 and 0≉3 strongly; 1≈2≈3 strongly.
        // Greedy pivots {0, 1}, {2, 3}; repair moves 1 over to {2, 3}
        // (net 1.8 beats 0.55) leaving 0 alone.
        let g = graph(
            4,
            &[
                (0, 1, 0.55, MatchClass::Match),
                (1, 2, 0.9, MatchClass::Match),
                (1, 3, 0.9, MatchClass::Match),
                (2, 3, 0.9, MatchClass::Match),
                (0, 2, 0.1, MatchClass::NonMatch),
                (0, 3, 0.1, MatchClass::NonMatch),
            ],
        );
        let mut assign = greedy_pivot(&g);
        assert_eq!(canonical_partition(&assign), vec![vec![0, 1], vec![2, 3]]);
        let moves = repair(&g, &mut assign);
        assert!(moves >= 1);
        assert_eq!(canonical_partition(&assign), vec![vec![0], vec![1, 2, 3]]);
    }

    #[test]
    fn repair_is_a_fixed_point_on_consistent_graphs() {
        let g = graph(
            4,
            &[
                (0, 1, 0.9, MatchClass::Match),
                (2, 3, 0.9, MatchClass::Match),
                (0, 2, 0.1, MatchClass::NonMatch),
            ],
        );
        let mut assign = greedy_pivot(&g);
        let before = canonical_partition(&assign);
        assert_eq!(repair(&g, &mut assign), 0);
        assert_eq!(canonical_partition(&assign), before);
    }

    #[test]
    fn canonical_partition_orders_by_smallest_member() {
        assert_eq!(
            canonical_partition(&[9, 4, 9, 7]),
            vec![vec![0, 2], vec![1], vec![3]]
        );
        assert_eq!(canonical_partition(&[]), Vec::<Vec<usize>>::new());
    }
}
