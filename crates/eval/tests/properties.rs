//! Property tests for metric identities.

use std::collections::HashSet;

use proptest::prelude::*;

use probdedup_eval::sweep::{best_f1, grid, sweep_thresholds};
use probdedup_eval::{ConfusionCounts, EffectivenessMetrics, ReductionMetrics};

/// Two pair sets over a shared row universe.
type PairSets = (HashSet<(usize, usize)>, HashSet<(usize, usize)>, usize);

/// Strategy: predicted and truth pair sets over `n` rows.
fn arb_pair_sets() -> impl Strategy<Value = PairSets> {
    (4usize..16).prop_flat_map(|n| {
        let pairs = move || {
            proptest::collection::hash_set(
                (0..n, 0..n)
                    .prop_filter_map("self", |(a, b)| (a != b).then(|| (a.min(b), a.max(b)))),
                0..(n * 2),
            )
        };
        (pairs(), pairs(), Just(n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Confusion counts always partition the n·(n−1)/2 pair universe.
    #[test]
    fn confusion_partitions((predicted, truth, n) in arb_pair_sets()) {
        let c = ConfusionCounts::from_pair_sets(&predicted, &truth, n);
        prop_assert_eq!(c.total() as usize, n * (n - 1) / 2);
        prop_assert_eq!((c.tp + c.fp) as usize, predicted.len());
        prop_assert_eq!((c.tp + c.fn_) as usize, truth.len());
    }

    /// Metric identities: F1 is the harmonic mean; FN% = 1 − recall;
    /// everything is in [0, 1].
    #[test]
    fn metric_identities((predicted, truth, n) in arb_pair_sets()) {
        let c = ConfusionCounts::from_pair_sets(&predicted, &truth, n);
        let m = EffectivenessMetrics::from_counts(&c);
        for v in [m.precision, m.recall, m.f1, m.false_positive_pct, m.false_negative_pct] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        prop_assert!((m.false_negative_pct - (1.0 - m.recall)).abs() < 1e-12);
        if m.precision > 0.0 && m.recall > 0.0 {
            let hm = 2.0 * m.precision * m.recall / (m.precision + m.recall);
            prop_assert!((m.f1 - hm).abs() < 1e-12);
        }
        // F1 (a harmonic mean) lies between its components.
        prop_assert!(m.f1 <= m.precision.max(m.recall) + 1e-12);
        if m.precision > 0.0 && m.recall > 0.0 {
            prop_assert!(m.f1 >= m.precision.min(m.recall) - 1e-12);
        }
    }

    /// Reduction metrics: PC and RR in [0,1]; the full pair set has PC 1.
    #[test]
    fn reduction_metric_bounds((candidates, truth, n) in arb_pair_sets()) {
        let m = ReductionMetrics::evaluate(&candidates, &truth, n);
        prop_assert!((0.0..=1.0).contains(&m.pairs_completeness));
        prop_assert!((0.0..=1.0).contains(&m.reduction_ratio));
        let mut full = HashSet::new();
        for i in 0..n {
            for j in (i + 1)..n {
                full.insert((i, j));
            }
        }
        let m_full = ReductionMetrics::evaluate(&full, &truth, n);
        prop_assert_eq!(m_full.pairs_completeness, 1.0);
        prop_assert_eq!(m_full.reduction_ratio, 0.0);
    }

    /// Threshold sweeps: recall is non-increasing in the threshold, and
    /// best_f1 picks an attained maximum.
    #[test]
    fn sweep_monotonicity(scored in proptest::collection::vec((0.0f64..=1.0, any::<bool>()), 1..40)) {
        let universe = (scored.len() * 3) as u64;
        let points = sweep_thresholds(&scored, 0, universe, &grid(0.0, 1.0, 11));
        for w in points.windows(2) {
            prop_assert!(w[1].metrics.recall <= w[0].metrics.recall + 1e-12);
        }
        let best = best_f1(&points).unwrap();
        for p in &points {
            prop_assert!(best.metrics.f1 >= p.metrics.f1 - 1e-12);
        }
    }
}
