//! Pairwise confusion counts.

use std::collections::HashSet;

/// Pairwise confusion counts of a duplicate-detection run: predictions and
/// truth are both sets of unordered row pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionCounts {
    /// Predicted duplicate, truly duplicate.
    pub tp: u64,
    /// Predicted duplicate, truly distinct.
    pub fp: u64,
    /// Predicted distinct (or never compared), truly duplicate.
    pub fn_: u64,
    /// Predicted distinct, truly distinct.
    pub tn: u64,
}

impl ConfusionCounts {
    /// Compare a predicted match-pair set against the true duplicate-pair
    /// set, over a universe of `n` rows (so that true negatives are
    /// well-defined: all `n·(n−1)/2` pairs not in either set).
    ///
    /// Both sets must contain canonical `(lo, hi)` pairs.
    pub fn from_pair_sets(
        predicted: &HashSet<(usize, usize)>,
        truth: &HashSet<(usize, usize)>,
        n: usize,
    ) -> Self {
        let tp = predicted.intersection(truth).count() as u64;
        let fp = predicted.len() as u64 - tp;
        let fn_ = truth.len() as u64 - tp;
        let total = (n as u64) * (n as u64).saturating_sub(1) / 2;
        let tn = total - tp - fp - fn_;
        Self { tp, fp, fn_, tn }
    }

    /// Total number of pairs accounted for.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(usize, usize)]) -> HashSet<(usize, usize)> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn counts_partition_the_pair_space() {
        // 5 rows → 10 pairs. Truth: {(0,1),(2,3)}. Predicted: {(0,1),(1,2)}.
        let c =
            ConfusionCounts::from_pair_sets(&set(&[(0, 1), (1, 2)]), &set(&[(0, 1), (2, 3)]), 5);
        assert_eq!(c.tp, 1);
        assert_eq!(c.fp, 1);
        assert_eq!(c.fn_, 1);
        assert_eq!(c.tn, 7);
        assert_eq!(c.total(), 10);
    }

    #[test]
    fn perfect_prediction() {
        let truth = set(&[(0, 1), (0, 2), (1, 2)]);
        let c = ConfusionCounts::from_pair_sets(&truth, &truth, 4);
        assert_eq!(c.tp, 3);
        assert_eq!(c.fp, 0);
        assert_eq!(c.fn_, 0);
        assert_eq!(c.tn, 3);
    }

    #[test]
    fn empty_everything() {
        let c = ConfusionCounts::from_pair_sets(&set(&[]), &set(&[]), 0);
        assert_eq!(c.total(), 0);
    }
}
