//! Plain-text report tables: the experiment harness prints paper-style
//! rows with aligned columns.

/// A simple aligned-column text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: AsRef<str>>(header: &[S]) -> Self {
        Self {
            header: header.iter().map(|s| s.as_ref().to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded or truncated to the header width).
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        let mut row: Vec<String> = cells.iter().map(|s| s.as_ref().to_string()).collect();
        row.resize(self.header.len(), String::new());
        row.truncate(self.header.len());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns, a header separator, and two-space
    /// gutters.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        for row in &self.rows {
            out.push('\n');
            out.push_str(&render_row(row));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["method", "PC", "RR"]);
        t.row(&["multipass", "1.000", "0.93"]);
        t.row(&["blocking-alt", "0.98", "0.991"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[1].starts_with("---"));
        // All data lines align on the PC column.
        let pc_col = lines[0].find("PC").unwrap();
        assert_eq!(&lines[2][pc_col..pc_col + 5], "1.000");
        assert_eq!(&lines[3][pc_col..pc_col + 4], "0.98");
    }

    #[test]
    fn rows_padded_and_truncated() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
        t.row(&["x", "y", "ignored-extra"]);
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(!s.contains("ignored-extra"));
    }

    #[test]
    fn empty_table_renders_header() {
        let t = Table::new(&["solo"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
