//! Cluster-level quality metrics: score a predicted entity partition
//! against a ground-truth partition, beyond what pairwise verdict
//! counting can see.
//!
//! Both partitions use the pipeline's deterministic contract — every row
//! of a universe `0..n` in exactly one cluster, clusters ordered by
//! smallest member, members ascending (`UnionFind::clusters_with_map`,
//! `GroundTruth::true_clusters`, entity resolutions all emit it).

use std::collections::HashMap;

use crate::confusion::ConfusionCounts;
use crate::metrics::EffectivenessMetrics;

/// How many clusters have each size, smallest size first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SizeHistogram {
    /// `(cluster_size, cluster_count)` pairs, ascending by size.
    pub buckets: Vec<(usize, usize)>,
}

impl SizeHistogram {
    /// Histogram of a partition's cluster sizes.
    pub fn from_partition(partition: &[Vec<usize>]) -> Self {
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for cluster in partition {
            *counts.entry(cluster.len()).or_insert(0) += 1;
        }
        let mut buckets: Vec<(usize, usize)> = counts.into_iter().collect();
        buckets.sort_unstable();
        Self { buckets }
    }

    /// Number of clusters counted.
    pub fn clusters(&self) -> usize {
        self.buckets.iter().map(|&(_, n)| n).sum()
    }

    /// Largest cluster size (0 for an empty partition).
    pub fn max_size(&self) -> usize {
        self.buckets.last().map_or(0, |&(size, _)| size)
    }
}

impl std::fmt::Display for SizeHistogram {
    /// `1×12 2×5 3×1` — size×count pairs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (size, count)) in self.buckets.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{size}×{count}")?;
        }
        Ok(())
    }
}

/// Cluster-level comparison of a predicted partition against truth.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterMetrics {
    /// Pairwise effectiveness over co-cluster pairs: a pair counts as
    /// predicted (resp. true) duplicate iff both rows share a predicted
    /// (resp. true) cluster. The standard pairwise precision/recall/F1 of
    /// the clustering literature.
    pub pairwise: EffectivenessMetrics,
    /// Closest-cluster F1: for each truth cluster, the best F1 any single
    /// predicted cluster achieves against it (precision in the predicted
    /// cluster, recall in the truth cluster), averaged over truth
    /// clusters. Punishes both shattering and gluing; 1.0 iff the
    /// partitions are identical on every truth cluster.
    pub closest_cluster_f1: f64,
    /// Number of predicted clusters.
    pub predicted_clusters: usize,
    /// Number of truth clusters.
    pub truth_clusters: usize,
    /// Size histogram of the predicted partition.
    pub predicted_sizes: SizeHistogram,
    /// Size histogram of the truth partition.
    pub truth_sizes: SizeHistogram,
}

impl ClusterMetrics {
    /// Score `predicted` against `truth` over the universe `0..n`. Both
    /// must partition exactly the rows `0..n` (the shared partition
    /// contract); rows outside the universe panic in debug builds.
    ///
    /// Runs in `O(n + Σ|cluster|)`: pairwise counts come from the joint
    /// (predicted, truth) cluster-id contingency counts — no pair set is
    /// materialized.
    pub fn from_partitions(predicted: &[Vec<usize>], truth: &[Vec<usize>], n: usize) -> Self {
        let pred_of = cluster_index(predicted, n);
        let truth_of = cluster_index(truth, n);

        // Joint contingency counts: |predicted cluster ∩ truth cluster|.
        let mut joint: HashMap<(usize, usize), u64> = HashMap::new();
        for row in 0..n {
            *joint.entry((pred_of[row], truth_of[row])).or_insert(0) += 1;
        }
        let choose2 = |k: u64| k * k.saturating_sub(1) / 2;
        let tp: u64 = joint.values().map(|&k| choose2(k)).sum();
        let predicted_pairs: u64 = predicted.iter().map(|c| choose2(c.len() as u64)).sum();
        let truth_pairs: u64 = truth.iter().map(|c| choose2(c.len() as u64)).sum();
        let total = choose2(n as u64);
        let fp = predicted_pairs - tp;
        let fn_ = truth_pairs - tp;
        let counts = ConfusionCounts {
            tp,
            fp,
            fn_,
            tn: total - tp - fp - fn_,
        };

        // Closest-cluster F1 per truth cluster, from the same joint
        // counts regrouped by truth cluster.
        let mut overlaps: Vec<Vec<(usize, u64)>> = vec![Vec::new(); truth.len()];
        for (&(p, t), &k) in &joint {
            overlaps[t].push((p, k));
        }
        let closest_cluster_f1 = if truth.is_empty() {
            1.0 // vacuously perfect, matching the 0/0 convention
        } else {
            truth
                .iter()
                .enumerate()
                .map(|(t, t_rows)| {
                    overlaps[t]
                        .iter()
                        .map(|&(p, k)| {
                            let precision = k as f64 / predicted[p].len() as f64;
                            let recall = k as f64 / t_rows.len() as f64;
                            2.0 * precision * recall / (precision + recall)
                        })
                        .fold(0.0, f64::max)
                })
                .sum::<f64>()
                / truth.len() as f64
        };

        Self {
            pairwise: EffectivenessMetrics::from_counts(&counts),
            closest_cluster_f1,
            predicted_clusters: predicted.len(),
            truth_clusters: truth.len(),
            predicted_sizes: SizeHistogram::from_partition(predicted),
            truth_sizes: SizeHistogram::from_partition(truth),
        }
    }
}

impl std::fmt::Display for ClusterMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pairwise {} | ccF1={:.3} | clusters {} vs {} true | sizes [{}] vs [{}]",
            self.pairwise,
            self.closest_cluster_f1,
            self.predicted_clusters,
            self.truth_clusters,
            self.predicted_sizes,
            self.truth_sizes,
        )
    }
}

/// Invert a partition into a cluster-index-per-row vector.
fn cluster_index(partition: &[Vec<usize>], n: usize) -> Vec<usize> {
    let mut of = vec![usize::MAX; n];
    for (i, cluster) in partition.iter().enumerate() {
        for &row in cluster {
            debug_assert!(row < n, "partition row {row} outside universe {n}");
            of[row] = i;
        }
    }
    debug_assert!(
        of.iter().all(|&i| i != usize::MAX),
        "partition does not cover the universe"
    );
    of
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_are_perfect() {
        let p = vec![vec![0, 1, 2], vec![3], vec![4, 5]];
        let m = ClusterMetrics::from_partitions(&p, &p, 6);
        assert_eq!(m.pairwise.precision, 1.0);
        assert_eq!(m.pairwise.recall, 1.0);
        assert_eq!(m.pairwise.f1, 1.0);
        assert_eq!(m.closest_cluster_f1, 1.0);
        assert_eq!(m.predicted_clusters, 3);
        assert_eq!(m.truth_clusters, 3);
        assert_eq!(m.predicted_sizes, m.truth_sizes);
    }

    #[test]
    fn textbook_contingency() {
        // Truth {0,1,2},{3,4}; predicted glues everything.
        let truth = vec![vec![0, 1, 2], vec![3, 4]];
        let predicted = vec![vec![0, 1, 2, 3, 4]];
        let m = ClusterMetrics::from_partitions(&predicted, &truth, 5);
        // TP = C(3,2)+C(2,2) = 4 of the C(5,2) = 10 predicted pairs.
        assert!((m.pairwise.precision - 0.4).abs() < 1e-12);
        assert_eq!(m.pairwise.recall, 1.0);
        // ccF1: {0,1,2} vs the glued cluster → F1(3/5, 1) = 0.75;
        // {3,4} → F1(2/5, 1) = 4/7.
        let expected = (0.75 + 4.0 / 7.0) / 2.0;
        assert!((m.closest_cluster_f1 - expected).abs() < 1e-12, "{m}");
    }

    #[test]
    fn shattering_hurts_recall_and_cc_f1() {
        let truth = vec![vec![0, 1, 2, 3]];
        let predicted = vec![vec![0, 1], vec![2, 3]];
        let m = ClusterMetrics::from_partitions(&predicted, &truth, 4);
        assert_eq!(m.pairwise.precision, 1.0);
        // 2 of the 6 true pairs survive.
        assert!((m.pairwise.recall - 2.0 / 6.0).abs() < 1e-12);
        // Best single cluster covers half: F1(1, 0.5) = 2/3.
        assert!((m.closest_cluster_f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_singletons_against_all_singletons() {
        let p: Vec<Vec<usize>> = (0..4).map(|i| vec![i]).collect();
        let m = ClusterMetrics::from_partitions(&p, &p, 4);
        // No pairs on either side: vacuously perfect.
        assert_eq!(m.pairwise.f1, 1.0);
        assert_eq!(m.closest_cluster_f1, 1.0);
        assert_eq!(m.predicted_sizes.buckets, vec![(1, 4)]);
        assert_eq!(m.predicted_sizes.max_size(), 1);
        assert_eq!(m.predicted_sizes.clusters(), 4);
    }

    #[test]
    fn empty_universe() {
        let m = ClusterMetrics::from_partitions(&[], &[], 0);
        assert_eq!(m.pairwise.f1, 1.0);
        assert_eq!(m.closest_cluster_f1, 1.0);
        assert_eq!(m.predicted_sizes, SizeHistogram::default());
    }

    #[test]
    fn histogram_display_is_compact() {
        let h = SizeHistogram::from_partition(&[vec![0], vec![1], vec![2, 3]]);
        assert_eq!(h.to_string(), "1×2 2×1");
    }
}
