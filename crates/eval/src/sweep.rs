//! Threshold sweeps: precision/recall curves over a grid of decision
//! thresholds, and best-F1 selection — the "repeat with better suitable
//! thresholds" loop of Section III-E, automated.

use crate::confusion::ConfusionCounts;
use crate::metrics::EffectivenessMetrics;

/// One point of a threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The threshold applied (`sim ≥ threshold` ⇒ predicted duplicate).
    pub threshold: f64,
    /// Metrics at this threshold.
    pub metrics: EffectivenessMetrics,
}

/// Sweep a match threshold over scored pairs.
///
/// `scored` holds `(similarity, is_true_duplicate)` per compared pair;
/// `missed_true_pairs` counts true duplicates that never got compared
/// (killed by reduction) — they are false negatives at *every* threshold.
/// `universe_pairs` is `n·(n−1)/2`, needed for true-negative counting.
///
/// Returns one point per threshold, in input order.
pub fn sweep_thresholds(
    scored: &[(f64, bool)],
    missed_true_pairs: u64,
    universe_pairs: u64,
    thresholds: &[f64],
) -> Vec<SweepPoint> {
    thresholds
        .iter()
        .map(|&t| {
            let mut c = ConfusionCounts::default();
            for &(sim, is_dup) in scored {
                match (sim >= t, is_dup) {
                    (true, true) => c.tp += 1,
                    (true, false) => c.fp += 1,
                    (false, true) => c.fn_ += 1,
                    (false, false) => {} // counted via universe below
                }
            }
            c.fn_ += missed_true_pairs;
            c.tn = universe_pairs - c.tp - c.fp - c.fn_;
            SweepPoint {
                threshold: t,
                metrics: EffectivenessMetrics::from_counts(&c),
            }
        })
        .collect()
}

/// The sweep point with the best F1 (ties: lower threshold).
pub fn best_f1(points: &[SweepPoint]) -> Option<SweepPoint> {
    points.iter().copied().max_by(|a, b| {
        a.metrics
            .f1
            .partial_cmp(&b.metrics.f1)
            .expect("finite F1")
            .then(b.threshold.partial_cmp(&a.threshold).expect("finite t"))
    })
}

/// An evenly spaced threshold grid over `[lo, hi]` with `steps` points.
pub fn grid(lo: f64, hi: f64, steps: usize) -> Vec<f64> {
    let steps = steps.max(2);
    (0..steps)
        .map(|i| lo + (hi - lo) * i as f64 / (steps - 1) as f64)
        .collect()
}

/// Calibration: the lowest threshold whose precision reaches
/// `min_precision` — i.e. the highest-recall operating point that still
/// meets a precision requirement (the usual production constraint:
/// "automatic merges must be ≥ 99% correct, send the rest to review").
/// Returns `None` when no sweep point qualifies.
pub fn threshold_for_precision(points: &[SweepPoint], min_precision: f64) -> Option<SweepPoint> {
    points
        .iter()
        .filter(|p| p.metrics.precision >= min_precision)
        .max_by(|a, b| {
            a.metrics
                .recall
                .partial_cmp(&b.metrics.recall)
                .expect("finite recall")
                .then(b.threshold.partial_cmp(&a.threshold).expect("finite t"))
        })
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Clearly separable scores: high thresholds give precision 1, low
    /// thresholds give recall 1; the crossover has F1 = 1.
    #[test]
    fn separable_scores_have_perfect_point() {
        let scored = vec![(0.9, true), (0.85, true), (0.2, false), (0.1, false)];
        let points = sweep_thresholds(&scored, 0, 6, &grid(0.0, 1.0, 21));
        let best = best_f1(&points).unwrap();
        assert!((best.metrics.f1 - 1.0).abs() < 1e-12);
        assert!(best.threshold > 0.2 && best.threshold <= 0.85);
    }

    #[test]
    fn recall_monotonically_falls_with_threshold() {
        let scored = vec![(0.9, true), (0.6, true), (0.5, false), (0.3, true)];
        let points = sweep_thresholds(&scored, 0, 6, &grid(0.0, 1.0, 11));
        for w in points.windows(2) {
            assert!(w[1].metrics.recall <= w[0].metrics.recall + 1e-12);
        }
    }

    #[test]
    fn missed_pairs_cap_recall() {
        let scored = vec![(0.9, true)];
        // One true pair compared, one missed by reduction → recall ≤ 0.5.
        let points = sweep_thresholds(&scored, 1, 3, &[0.5]);
        assert!((points[0].metrics.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn grid_spacing() {
        let g = grid(0.0, 1.0, 5);
        assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(grid(0.0, 1.0, 1).len(), 2);
    }

    #[test]
    fn empty_scored_pairs() {
        let points = sweep_thresholds(&[], 0, 0, &[0.5]);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].metrics.recall, 1.0); // vacuous
    }

    #[test]
    fn precision_targeted_calibration() {
        // Scores: duplicates at 0.9/0.8/0.6, non-duplicate at 0.7.
        let scored = vec![(0.9, true), (0.8, true), (0.7, false), (0.6, true)];
        let points = sweep_thresholds(&scored, 0, 10, &grid(0.0, 1.0, 21));
        // Perfect precision requires t > 0.7; the best such point keeps
        // the 0.8 and 0.9 duplicates → recall 2/3.
        let p = super::threshold_for_precision(&points, 1.0).unwrap();
        assert!(
            p.threshold > 0.7 && p.threshold <= 0.8,
            "t = {}",
            p.threshold
        );
        assert!((p.metrics.recall - 2.0 / 3.0).abs() < 1e-12);
        // An unreachable precision target yields None... here precision 1.0
        // is reachable, so ask beyond 1.0.
        assert!(super::threshold_for_precision(&points, 1.1).is_none());
        // A lax target picks the highest-recall (lowest) qualifying point.
        let lax = super::threshold_for_precision(&points, 0.7).unwrap();
        assert_eq!(lax.metrics.recall, 1.0);
    }
}
