//! Candidate-set quality metrics for search-space reduction: pairs
//! completeness (how many true duplicates survive into the candidate set —
//! an upper bound on end-to-end recall) and reduction ratio (how much of
//! the quadratic pair space was pruned). Section V's methods trade these
//! two off; experiment E1 sweeps them.

use std::collections::HashSet;

/// Quality of a candidate pair set produced by a reduction method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReductionMetrics {
    /// `|candidates ∩ truth| / |truth|` — recall of the candidate set.
    pub pairs_completeness: f64,
    /// `1 − |candidates| / (n·(n−1)/2)`.
    pub reduction_ratio: f64,
    /// Number of candidate pairs.
    pub candidates: usize,
    /// Number of true duplicate pairs.
    pub true_pairs: usize,
    /// Harmonic mean of pairs completeness and reduction ratio (a common
    /// single-figure summary of the trade-off).
    pub harmonic_mean: f64,
}

impl ReductionMetrics {
    /// Evaluate a candidate set against the truth over `n` rows.
    pub fn evaluate(
        candidates: &HashSet<(usize, usize)>,
        truth: &HashSet<(usize, usize)>,
        n: usize,
    ) -> Self {
        let covered = candidates.intersection(truth).count();
        let pairs_completeness = if truth.is_empty() {
            1.0
        } else {
            covered as f64 / truth.len() as f64
        };
        let total = n * n.saturating_sub(1) / 2;
        let reduction_ratio = if total == 0 {
            0.0
        } else {
            1.0 - candidates.len() as f64 / total as f64
        };
        let harmonic_mean = if pairs_completeness + reduction_ratio <= 0.0 {
            0.0
        } else {
            2.0 * pairs_completeness * reduction_ratio / (pairs_completeness + reduction_ratio)
        };
        Self {
            pairs_completeness,
            reduction_ratio,
            candidates: candidates.len(),
            true_pairs: truth.len(),
            harmonic_mean,
        }
    }
}

impl std::fmt::Display for ReductionMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PC={:.3} RR={:.3} HM={:.3} ({} candidates / {} true pairs)",
            self.pairs_completeness,
            self.reduction_ratio,
            self.harmonic_mean,
            self.candidates,
            self.true_pairs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(usize, usize)]) -> HashSet<(usize, usize)> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn full_comparison_has_pc_one_rr_zero() {
        let n = 5;
        let mut all = HashSet::new();
        for i in 0..n {
            for j in (i + 1)..n {
                all.insert((i, j));
            }
        }
        let truth = set(&[(0, 1), (2, 4)]);
        let m = ReductionMetrics::evaluate(&all, &truth, n);
        assert_eq!(m.pairs_completeness, 1.0);
        assert_eq!(m.reduction_ratio, 0.0);
        assert_eq!(m.candidates, 10);
    }

    #[test]
    fn partial_candidate_set() {
        // Truth {(0,1),(2,3)}, candidates {(0,1),(1,2)} over 5 rows.
        let m = ReductionMetrics::evaluate(&set(&[(0, 1), (1, 2)]), &set(&[(0, 1), (2, 3)]), 5);
        assert!((m.pairs_completeness - 0.5).abs() < 1e-12);
        assert!((m.reduction_ratio - 0.8).abs() < 1e-12);
        let hm = 2.0 * 0.5 * 0.8 / 1.3;
        assert!((m.harmonic_mean - hm).abs() < 1e-12);
    }

    #[test]
    fn empty_truth_is_vacuously_complete() {
        let m = ReductionMetrics::evaluate(&set(&[(0, 1)]), &set(&[]), 3);
        assert_eq!(m.pairs_completeness, 1.0);
    }

    #[test]
    fn display() {
        let m = ReductionMetrics::evaluate(&set(&[(0, 1)]), &set(&[(0, 1)]), 3);
        assert!(m.to_string().contains("PC=1.000"));
    }
}
