//! Verification metrics for duplicate detection (Section III-E of Panse et
//! al., ICDE 2010): *"the effectiveness of the applied identification is
//! checked in terms of recall, precision, false negative percentage, false
//! positive percentage and F₁-measure"* — plus the candidate-set metrics
//! (pairs completeness, reduction ratio) needed to evaluate search-space
//! reduction, threshold sweeps, and plain-text report tables.
//!
//! # Example
//!
//! ```
//! use std::collections::HashSet;
//! use probdedup_eval::{ConfusionCounts, EffectivenessMetrics};
//!
//! let predicted: HashSet<(usize, usize)> = [(0, 1), (2, 3)].into();
//! let truth: HashSet<(usize, usize)> = [(0, 1), (1, 4)].into();
//! let counts = ConfusionCounts::from_pair_sets(&predicted, &truth, 5);
//! assert_eq!((counts.tp, counts.fp, counts.fn_), (1, 1, 1));
//! let m = EffectivenessMetrics::from_counts(&counts);
//! assert!((m.precision - 0.5).abs() < 1e-12);
//! assert!((m.recall - 0.5).abs() < 1e-12);
//! assert!((m.f1 - 0.5).abs() < 1e-12);
//! ```

pub mod cluster_metrics;
pub mod confusion;
pub mod metrics;
pub mod reduction_metrics;
pub mod report;
pub mod sweep;

pub use cluster_metrics::{ClusterMetrics, SizeHistogram};
pub use confusion::ConfusionCounts;
pub use metrics::EffectivenessMetrics;
pub use reduction_metrics::ReductionMetrics;
pub use report::Table;
pub use sweep::{best_f1, grid, sweep_thresholds, threshold_for_precision, SweepPoint};
