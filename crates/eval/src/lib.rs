//! Verification metrics for duplicate detection (Section III-E of Panse et
//! al., ICDE 2010): *"the effectiveness of the applied identification is
//! checked in terms of recall, precision, false negative percentage, false
//! positive percentage and F₁-measure"* — plus the candidate-set metrics
//! (pairs completeness, reduction ratio) needed to evaluate search-space
//! reduction, threshold sweeps, and plain-text report tables.

pub mod confusion;
pub mod metrics;
pub mod reduction_metrics;
pub mod report;
pub mod sweep;

pub use confusion::ConfusionCounts;
pub use metrics::EffectivenessMetrics;
pub use reduction_metrics::ReductionMetrics;
pub use report::Table;
pub use sweep::{best_f1, grid, sweep_thresholds, threshold_for_precision, SweepPoint};
