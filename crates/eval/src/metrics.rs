//! Effectiveness metrics derived from confusion counts (Section III-E).

use crate::confusion::ConfusionCounts;

/// The paper's verification metrics. Ill-defined ratios (0/0) report as
/// `1.0` for precision/recall on empty denominators — the conventional
/// "vacuously perfect" reading — so that empty test cases don't explode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectivenessMetrics {
    /// `tp / (tp + fp)`.
    pub precision: f64,
    /// `tp / (tp + fn)`.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// False positive percentage: `fp / (fp + tn)` (share of true
    /// non-duplicate pairs wrongly matched).
    pub false_positive_pct: f64,
    /// False negative percentage: `fn / (tp + fn)` (share of true
    /// duplicate pairs missed; `1 − recall`).
    pub false_negative_pct: f64,
}

impl EffectivenessMetrics {
    /// Derive all metrics from counts.
    pub fn from_counts(c: &ConfusionCounts) -> Self {
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                1.0
            } else {
                num as f64 / den as f64
            }
        };
        let precision = ratio(c.tp, c.tp + c.fp);
        let recall = ratio(c.tp, c.tp + c.fn_);
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        let false_positive_pct = if c.fp + c.tn == 0 {
            0.0
        } else {
            c.fp as f64 / (c.fp + c.tn) as f64
        };
        Self {
            precision,
            recall,
            f1,
            false_positive_pct,
            false_negative_pct: 1.0 - recall,
        }
    }
}

impl std::fmt::Display for EffectivenessMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.3} R={:.3} F1={:.3} FP%={:.4} FN%={:.3}",
            self.precision, self.recall, self.f1, self.false_positive_pct, self.false_negative_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        let c = ConfusionCounts {
            tp: 8,
            fp: 2,
            fn_: 4,
            tn: 86,
        };
        let m = EffectivenessMetrics::from_counts(&c);
        assert!((m.precision - 0.8).abs() < 1e-12);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12);
        let expected_f1 = 2.0 * 0.8 * (2.0 / 3.0) / (0.8 + 2.0 / 3.0);
        assert!((m.f1 - expected_f1).abs() < 1e-12);
        assert!((m.false_positive_pct - 2.0 / 88.0).abs() < 1e-12);
        assert!((m.false_negative_pct - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn f1_is_harmonic_mean_identity() {
        for (tp, fp, fn_) in [(5u64, 3u64, 2u64), (1, 0, 0), (0, 5, 5)] {
            let c = ConfusionCounts {
                tp,
                fp,
                fn_,
                tn: 10,
            };
            let m = EffectivenessMetrics::from_counts(&c);
            if m.precision + m.recall > 0.0 {
                let hm = 2.0 / (1.0 / m.precision.max(1e-15) + 1.0 / m.recall.max(1e-15));
                if m.precision > 0.0 && m.recall > 0.0 {
                    assert!((m.f1 - hm).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn degenerate_cases() {
        let empty = EffectivenessMetrics::from_counts(&ConfusionCounts::default());
        assert_eq!(empty.precision, 1.0);
        assert_eq!(empty.recall, 1.0);
        assert_eq!(empty.false_positive_pct, 0.0);
        let all_wrong = EffectivenessMetrics::from_counts(&ConfusionCounts {
            tp: 0,
            fp: 10,
            fn_: 10,
            tn: 0,
        });
        assert_eq!(all_wrong.precision, 0.0);
        assert_eq!(all_wrong.recall, 0.0);
        assert_eq!(all_wrong.f1, 0.0);
        assert_eq!(all_wrong.false_positive_pct, 1.0);
    }

    #[test]
    fn display_renders_all_fields() {
        let m = EffectivenessMetrics::from_counts(&ConfusionCounts {
            tp: 1,
            fp: 1,
            fn_: 1,
            tn: 1,
        });
        let s = m.to_string();
        assert!(s.contains("P=") && s.contains("F1=") && s.contains("FN%="));
    }
}
