//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset its benches use under the same crate name:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`], [`black_box`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The harness is intentionally simple: per benchmark it calibrates an
//! iteration count targeting ~`TARGET_SAMPLE` of work, takes `sample_size`
//! samples, and prints the median/min/max ns-per-iteration on stdout. No
//! HTML reports, no statistical regression analysis — but numbers are
//! stable enough to compare configurations of the same build on the same
//! machine, which is what the workspace's before/after tables need.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample time budget used for iteration-count calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(12);

/// Hard cap on one benchmark's total measured wall time.
const MAX_TOTAL: Duration = Duration::from_secs(3);

/// The benchmark context handed to `criterion_group!` targets.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 15,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(name, sample_size, |b| f(b));
        self
    }
}

/// A named group of benchmarks (`Criterion::benchmark_group`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmark a closure parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let samples = self.sample_size.unwrap_or(15);
        run_benchmark(&label, samples, |b| f(b, input));
        self
    }

    /// Benchmark a plain closure within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        let samples = self.sample_size.unwrap_or(15);
        run_benchmark(&label, samples, |b| f(b));
        self
    }

    /// Close the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Id carrying just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Drives the measured closure (`b.iter(..)`).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `iters` runs of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut routine: F) {
    // Calibrate: grow the iteration count until one sample is ≥ the target
    // (or a single iteration already exceeds it).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 24 {
            break;
        }
        // Aim directly for the target from the observed rate, growing at
        // least 2x to escape timer-resolution noise.
        let per_iter = b.elapsed.as_secs_f64() / iters as f64;
        let needed = if per_iter > 0.0 {
            (TARGET_SAMPLE.as_secs_f64() / per_iter).ceil() as u64
        } else {
            iters * 4
        };
        iters = needed.clamp(iters * 2, iters.saturating_mul(100)).max(1);
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    let total_start = Instant::now();
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        if total_start.elapsed() > MAX_TOTAL {
            break;
        }
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let (min, max) = (per_iter_ns[0], per_iter_ns[per_iter_ns.len() - 1]);
    println!(
        "bench {label:<48} median {} (min {}, max {}, {} iters x {} samples)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
        iters,
        per_iter_ns.len(),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` may execute bench binaries with --test; running
            // full benchmarks there would be wasteful, so mirror upstream
            // criterion and exit immediately.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
