//! Deterministic case runner support: the test RNG, config, and the
//! fail/reject outcome type the assertion macros produce.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a test case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// The case was discarded by `prop_assume!` — draw a replacement.
    Reject(&'static str),
}

impl TestCaseError {
    /// A failure outcome.
    pub fn fail(msg: String) -> Self {
        Self::Fail(msg)
    }

    /// A rejection outcome.
    pub fn reject(why: &'static str) -> Self {
        Self::Reject(why)
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a over the test's full name — the deterministic seed base.
pub fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// The generator strategies draw from: xoshiro256++ seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Deterministic construction from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
