//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Transform values, discarding (and redrawing) those mapped to `None`.
    fn prop_filter_map<T, F: Fn(Self::Value) -> Option<T>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            reason,
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        let derived = (self.f)(self.inner.new_value(rng));
        derived.new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, T, F: Fn(S::Value) -> Option<T>> Strategy for FilterMap<S, F> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.new_value(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map({:?}): rejected 10000 consecutive draws",
            self.reason
        );
    }
}
