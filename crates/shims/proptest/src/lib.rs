//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of proptest's API its property tests actually use,
//! under the same crate name:
//!
//! * [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_filter_map`,
//! * strategies for integer/float ranges, tuples, [`Just`], [`any`],
//!   simple regex-class string patterns (`"[a-d]{1,4}"`, `".{0,24}"`),
//!   and [`collection::vec`] / [`collection::hash_set`],
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, plus
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Semantic differences from upstream: cases are generated from a
//! deterministic per-test seed (derived from the test's module path and
//! name), and there is **no shrinking** — a failure reports the case number
//! and generated-input debug output instead of a minimised counterexample.

use std::ops::{Range, RangeInclusive};

pub mod strategy;
pub mod test_runner;

/// Strategy combinators and primitive strategies.
pub use strategy::{Just, Strategy};

/// `any::<T>()` — uniform samples of the whole type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Marker strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical "whole type" strategy.
pub trait Arbitrary: Sized {
    /// Sample one value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies (`proptest::collection::{vec, hash_set}`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a collection size: a fixed `usize` or a range.
    pub trait SizeRange {
        /// Pick a concrete size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    /// A `Vec` of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A `HashSet` of values from `element`; `size` is the number of
    /// *attempted* insertions (duplicates collapse, as in upstream).
    pub fn hash_set<S, Z>(element: S, size: Z) -> HashSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        Z: SizeRange,
    {
        HashSetStrategy { element, size }
    }

    /// Strategy returned by [`hash_set`].
    pub struct HashSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S, Z> Strategy for HashSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        Z: SizeRange,
    {
        type Value = HashSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Primitive strategies: ranges, strings, tuples.
// ---------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut test_runner::TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut test_runner::TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut test_runner::TestRng) -> f64 {
        // Scale a 53-bit integer over [0, 2^53] so the upper bound is
        // reachable.
        let (lo, hi) = (*self.start(), *self.end());
        let steps = (1u64 << 53) as f64;
        let u = (rng.next_u64() >> 11) as f64 / (steps - 1.0);
        lo + u.min(1.0) * (hi - lo)
    }
}

/// The pattern subset supported for string strategies: a sequence of atoms,
/// each an optionally quantified char class (`[a-dx]`), dot (`.` = printable
/// ASCII) or literal character; quantifiers are `{m}` / `{m,n}`.
fn generate_from_pattern(pattern: &str, rng: &mut test_runner::TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom into a set of candidate chars.
        let mut class: Vec<char> = Vec::new();
        match chars[i] {
            '[' => {
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                        for c in lo..=hi {
                            class.push(char::from_u32(c).expect("valid range char"));
                        }
                        i += 3;
                    } else {
                        class.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // consume ']'
            }
            '.' => {
                class.extend((0x20u8..0x7f).map(char::from));
                i += 1;
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "trailing escape in pattern {pattern:?}");
                class.push(chars[i]);
                i += 1;
            }
            c => {
                class.push(c);
                i += 1;
            }
        }
        // Optional quantifier.
        let (mut lo, mut hi) = (1usize, 1usize);
        if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            if let Some((a, b)) = body.split_once(',') {
                lo = a.trim().parse().expect("quantifier lower bound");
                hi = b.trim().parse().expect("quantifier upper bound");
            } else {
                lo = body.trim().parse().expect("quantifier count");
                hi = lo;
            }
            i = close + 1;
        }
        let n = lo + (rng.next_u64() as usize) % (hi - lo + 1);
        for _ in 0..n {
            let idx = (rng.next_u64() as usize) % class.len();
            out.push(class[idx]);
        }
    }
    out
}

impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut test_runner::TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn new_value(&self, rng: &mut test_runner::TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

// ---------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------

/// Assert inside a property (records a failure instead of panicking so the
/// harness can report the offending case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                $($fmt)+
            )));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// Discard the current case (e.g. when a generated input is out of scope);
/// the harness draws a replacement instead of counting a failure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// The property-test entry point. Supports the upstream surface this
/// workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u32..100, s in "[a-z]{1,4}") {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __base: u64 = $crate::test_runner::hash_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                let mut __case: u32 = 0;
                let mut __rejects: u32 = 0;
                while __case < __cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::from_seed(
                        __base
                            .wrapping_add((u64::from(__case)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                            .wrapping_add((u64::from(__rejects)).wrapping_mul(0xD1B5_4A32_D192_ED03)),
                    );
                    let __outcome: $crate::test_runner::TestCaseResult = (|| {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                        )*
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => __case += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(__why),
                        ) => {
                            __rejects += 1;
                            assert!(
                                __rejects < 10_000,
                                "proptest '{}': too many prop_assume rejections ({})",
                                stringify!($name),
                                __why
                            );
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "proptest '{}' failed at case {}/{} (seed base {:#018x}):\n{}",
                                stringify!($name),
                                __case,
                                __cfg.cases,
                                __base,
                                __msg
                            );
                        }
                    }
                }
            }
        )*
    };
}
