//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny API subset it actually uses under the same crate name:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `random::<T>()` / `random_range(range)`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and fully deterministic for a given seed, which is all
//! the workspace needs (seeded synthetic data, k-means++ initialisation,
//! world sampling). It makes no attempt to be a drop-in *bit-compatible*
//! replacement for upstream `rand`; only the API surface matches.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (same seed → same stream).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from raw bits (the subset of
/// upstream's `StandardUniform` distribution the workspace uses).
pub trait FromRng: Sized {
    /// Sample one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Integer types supporting uniform range sampling.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi]` (inclusive). `lo ≤ hi` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform sample in `[lo, end)` (exclusive end). `lo < end` must hold.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, end: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "empty range");
                // Width as u128 avoids overflow for full-width ranges.
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Rejection sampling keeps the distribution exactly uniform
                // (modulo bias over a u64 stream would be < 2⁻⁶⁴·span — not
                // observable, but exactness is free here).
                let zone = u128::from(u64::MAX) + 1 - ((u128::from(u64::MAX) + 1) % span);
                loop {
                    let x = u128::from(rng.next_u64());
                    if x < zone {
                        return (lo as i128 + (x % span) as i128) as $t;
                    }
                }
            }

            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, end: Self) -> Self {
                // end-1 is representable because lo < end.
                Self::sample_inclusive(rng, lo, end - 1)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled (upstream's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// High-level sampling methods (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// A uniform sample of `T` (e.g. `f64` in `[0, 1)`).
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform sample from an integer range (`a..b` or `a..=b`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64. Deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into four non-zero words.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<f64>(), c.random::<f64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v: i64 = r.random_range(-1..=1);
            assert!((-1..=1).contains(&v));
            let u = r.random_range(2..=3usize);
            assert!((2..=3).contains(&u));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
