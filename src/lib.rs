//! # probdedup — Duplicate Detection in Probabilistic Data
//!
//! A complete Rust implementation of *“Duplicate Detection in Probabilistic
//! Data”* (Fabian Panse, Maurice van Keulen, Ander de Keijzer, Norbert
//! Ritter; ICDE 2010 workshops), including every substrate the paper relies
//! on:
//!
//! * [`model`] — a probabilistic relational data model: uncertain attribute
//!   values with explicit non-existence (⊥), tuple-membership probabilities,
//!   Trio-style x-tuples, possible-world semantics and conditioning.
//! * [`textsim`] — normalized string/numeric/semantic comparison functions
//!   (normalized Hamming, Levenshtein, Jaro(-Winkler), q-grams, LCS,
//!   Soundex, Monge-Elkan, glossaries, taxonomies).
//! * [`matching`] — attribute value matching for uncertain values: the
//!   expected-similarity formulas (Eqs. 4/5), comparison vectors and the
//!   k×l comparison matrices of x-tuple pairs.
//! * [`decision`] — decision models: combination functions φ, knowledge-based
//!   identification rules, the Fellegi–Sunter model with EM estimation, and
//!   the paper's x-tuple derivation functions ϑ (similarity-based, Eq. 6;
//!   decision-based, Eqs. 7–9; expected matching result E(η)).
//! * [`reduction`] — search-space reduction adapted to probabilistic data:
//!   four sorted-neighborhood variants (multi-pass over worlds, certain keys
//!   via conflict resolution, sorting alternatives, uncertain-key ranking)
//!   and blocking variants (Figs. 8–14).
//! * [`datagen`] — seeded synthetic probabilistic datasets with ground truth.
//! * [`eval`] — verification metrics (Section III-E): precision, recall, F1,
//!   pairs completeness, reduction ratio, threshold sweeps.
//! * [`core`] — the end-to-end pipeline: preparation → reduction → matching
//!   → decision → clustering (+ fusion and probabilistic results).
//! * [`entity`] — entity resolution over the pairwise verdicts: match-graph
//!   build, connected components vs. correlation-clustering repair, and
//!   canonical-record fusion.
//!
//! ## Quickstart
//!
//! ```
//! use probdedup::model::{Relation, Schema};
//! use probdedup::prelude::*;
//!
//! // The paper's relation ℛ1 (Fig. 4), attribute-level uncertainty:
//! let schema = Schema::new(["name", "job"]);
//! let mut r1 = Relation::new(schema.clone());
//! r1.push(
//!     ProbTuple::builder(&schema)
//!         .certain("name", "Tim")
//!         .dist("job", [("machinist", 0.7), ("mechanic", 0.2)])
//!         .probability(1.0)
//!         .build()
//!         .unwrap(),
//! );
//!
//! let mut r2 = Relation::new(schema.clone());
//! r2.push(
//!     ProbTuple::builder(&schema)
//!         .dist("name", [("Tim", 0.7), ("Kim", 0.3)])
//!         .certain("job", "mechanic")
//!         .probability(0.8)
//!         .build()
//!         .unwrap(),
//! );
//!
//! // Expected similarity under the normalized Hamming kernel (Eq. 5):
//! let cmp = AttributeComparators::uniform(&schema, NormalizedHamming::new());
//! let c = compare_tuples(&r1.tuples()[0], &r2.tuples()[0], &cmp);
//! assert!((c[0] - 0.9).abs() < 1e-12);        // sim(name) = 0.9 (paper, Sec. IV-A)
//! assert!((c[1] - 53.0 / 90.0).abs() < 1e-12); // sim(job) ≈ 0.59
//! ```

pub mod paper;

pub use probdedup_core as core;
pub use probdedup_datagen as datagen;
pub use probdedup_decision as decision;
pub use probdedup_entity as entity;
pub use probdedup_eval as eval;
pub use probdedup_matching as matching;
pub use probdedup_model as model;
pub use probdedup_reduction as reduction;
pub use probdedup_serve as serve;
pub use probdedup_textsim as textsim;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use probdedup_core::pipeline::{DedupPipeline, DedupResult};
    pub use probdedup_decision::combine::{CombinationFunction, WeightedSum};
    pub use probdedup_decision::threshold::{MatchClass, Thresholds};
    pub use probdedup_entity::{ClusterStrategy, PipelineEntities, ResolveEntities};
    pub use probdedup_matching::pvalue_sim::pvalue_similarity;
    pub use probdedup_matching::vector::{compare_tuples, AttributeComparators};
    pub use probdedup_model::pvalue::PValue;
    pub use probdedup_model::relation::{Relation, XRelation};
    pub use probdedup_model::tuple::ProbTuple;
    pub use probdedup_model::value::Value;
    pub use probdedup_model::xtuple::XTuple;
    pub use probdedup_textsim::{NormalizedHamming, StringComparator};
}
