//! The paper's running examples as ready-made fixtures: the probabilistic
//! relations ℛ1/ℛ2 (Fig. 4), the x-relations ℛ3/ℛ4 (Fig. 5), their union
//! ℛ34, and the example keys of Section V. Examples, integration tests and
//! the experiment harness all reproduce figures from these fixtures.

use probdedup_model::pvalue::PValue;
use probdedup_model::relation::{Relation, XRelation};
use probdedup_model::schema::Schema;
use probdedup_model::tuple::ProbTuple;
use probdedup_model::value::Value;
use probdedup_model::xtuple::XTuple;
use probdedup_reduction::key::{KeyPart, KeySpec};

/// The `(name, job)` schema of all paper examples.
pub fn schema() -> Schema {
    Schema::new(["name", "job"])
}

/// Fig. 4 (left): the probabilistic relation ℛ1.
///
/// | tuple | name | job | p(t) |
/// |-------|------|-----|------|
/// | t11 | Tim | {machinist: .7, mechanic: .2} | 1.0 |
/// | t12 | {John: .5, Johan: .5} | {baker: .7, confectioner: .3} | 1.0 |
/// | t13 | {Tim: .6, Tom: .4} | machinist | 0.6 |
pub fn fig4_r1() -> Relation {
    let s = schema();
    let mut r = Relation::new(s.clone());
    r.push(
        ProbTuple::builder(&s)
            .certain("name", "Tim")
            .dist("job", [("machinist", 0.7), ("mechanic", 0.2)])
            .probability(1.0)
            .build()
            .expect("t11"),
    );
    r.push(
        ProbTuple::builder(&s)
            .dist("name", [("John", 0.5), ("Johan", 0.5)])
            .dist("job", [("baker", 0.7), ("confectioner", 0.3)])
            .probability(1.0)
            .build()
            .expect("t12"),
    );
    r.push(
        ProbTuple::builder(&s)
            .dist("name", [("Tim", 0.6), ("Tom", 0.4)])
            .certain("job", "machinist")
            .probability(0.6)
            .build()
            .expect("t13"),
    );
    r
}

/// Fig. 4 (right): the probabilistic relation ℛ2.
///
/// | tuple | name | job | p(t) |
/// |-------|------|-----|------|
/// | t21 | {John: .7, Jon: .3} | confectionist | 1.0 |
/// | t22 | {Tim: .7, Kim: .3} | mechanic | 0.8 |
/// | t23 | Timothy | {mechanist: .8, engineer: .2} | 0.7 |
pub fn fig4_r2() -> Relation {
    let s = schema();
    let mut r = Relation::new(s.clone());
    r.push(
        ProbTuple::builder(&s)
            .dist("name", [("John", 0.7), ("Jon", 0.3)])
            .certain("job", "confectionist")
            .probability(1.0)
            .build()
            .expect("t21"),
    );
    r.push(
        ProbTuple::builder(&s)
            .dist("name", [("Tim", 0.7), ("Kim", 0.3)])
            .certain("job", "mechanic")
            .probability(0.8)
            .build()
            .expect("t22"),
    );
    r.push(
        ProbTuple::builder(&s)
            .certain("name", "Timothy")
            .dist("job", [("mechanist", 0.8), ("engineer", 0.2)])
            .probability(0.7)
            .build()
            .expect("t23"),
    );
    r
}

/// Fig. 5 (left): the x-relation ℛ3 with x-tuples t31 and t32.
/// `t31`'s second alternative carries the `mu*` pattern value, expanded to
/// a uniform distribution over `{musician, museum guide}`.
pub fn fig5_r3() -> XRelation {
    let s = schema();
    let mu = PValue::uniform(["musician", "museum guide"]).expect("mu*");
    let mut r = XRelation::new(s.clone());
    r.push(
        XTuple::builder(&s)
            .alt(0.7, ["John", "pilot"])
            .alt_pvalues(0.3, [PValue::certain("Johan"), mu])
            .label("t31")
            .build()
            .expect("t31"),
    );
    r.push(
        XTuple::builder(&s)
            .alt(0.3, ["Tim", "mechanic"])
            .alt(0.2, ["Jim", "mechanic"])
            .alt(0.4, ["Jim", "baker"])
            .label("t32")
            .build()
            .expect("t32"),
    );
    r
}

/// Fig. 5 (right): the x-relation ℛ4 with x-tuples t41, t42 (maybe) and
/// t43 (maybe, with a ⊥ job in its first alternative).
pub fn fig5_r4() -> XRelation {
    let s = schema();
    let mut r = XRelation::new(s.clone());
    r.push(
        XTuple::builder(&s)
            .alt(0.8, ["John", "pilot"])
            .alt(0.2, ["Johan", "pianist"])
            .label("t41")
            .build()
            .expect("t41"),
    );
    r.push(
        XTuple::builder(&s)
            .alt(0.8, ["Tom", "mechanic"])
            .label("t42")
            .build()
            .expect("t42"),
    );
    r.push(
        XTuple::builder(&s)
            .alt(0.2, [Value::from("John"), Value::Null])
            .alt(0.6, ["Sean", "pilot"])
            .label("t43")
            .build()
            .expect("t43"),
    );
    r
}

/// ℛ34 = ℛ3 ∪ ℛ4 (Section V-A), row order t31, t32, t41, t42, t43.
pub fn r34() -> XRelation {
    let (r34, _) = fig5_r3().union(&fig5_r4()).expect("compatible schemas");
    r34
}

/// Row indices of the labelled tuples within [`r34`].
pub mod rows {
    /// t31.
    pub const T31: usize = 0;
    /// t32.
    pub const T32: usize = 1;
    /// t41.
    pub const T41: usize = 2;
    /// t42.
    pub const T42: usize = 3;
    /// t43.
    pub const T43: usize = 4;
}

/// The Section V sorting key: first 3 characters of the name + first 2 of
/// the job.
pub fn sorting_key() -> KeySpec {
    KeySpec::paper_example(0, 1)
}

/// The Fig. 14 blocking key: first character of the name + first character
/// of the job.
pub fn blocking_key() -> KeySpec {
    KeySpec::new(vec![KeyPart::prefix(0, 1), KeyPart::prefix(1, 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_match_figure_shapes() {
        assert_eq!(fig4_r1().len(), 3);
        assert_eq!(fig4_r2().len(), 3);
        assert_eq!(fig5_r3().len(), 2);
        assert_eq!(fig5_r4().len(), 3);
        let combined = r34();
        assert_eq!(combined.len(), 5);
        assert_eq!(combined.get(rows::T32).unwrap().label(), Some("t32"));
        assert_eq!(combined.get(rows::T43).unwrap().label(), Some("t43"));
    }

    #[test]
    fn fig5_membership_probabilities() {
        let r = r34();
        assert!((r.get(rows::T31).unwrap().probability() - 1.0).abs() < 1e-12);
        assert!((r.get(rows::T32).unwrap().probability() - 0.9).abs() < 1e-12);
        assert!((r.get(rows::T42).unwrap().probability() - 0.8).abs() < 1e-12);
        assert!(r.get(rows::T42).unwrap().is_maybe());
        assert!(r.get(rows::T43).unwrap().is_maybe());
    }
}
