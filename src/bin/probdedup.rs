//! `probdedup` — command-line duplicate detection for probabilistic data.
//!
//! ```text
//! probdedup generate --entities 500 --seed 42 --out-prefix data/census
//! probdedup stats    --input data/census.source0.pxr
//! probdedup dedup    --input data/census.source0.pxr --input data/census.source1.pxr \
//!                    --reduction snm-alternatives --window 6 --lambda 0.72 --mu 0.82
//! ```
//!
//! Relations are read and written in the text format of
//! [`probdedup::model::format`] (extension convention: `.pxr`,
//! "probabilistic x-relation").

use std::process::ExitCode;
use std::sync::Arc;

use probdedup::core::pipeline::{DedupPipeline, ReductionStrategy};
use probdedup::core::prepare::Preparation;
use probdedup::core::session::DedupSession;
use probdedup::datagen::GroundTruth;
use probdedup::datagen::{generate, DatasetConfig, Dictionaries};
use probdedup::decision::combine::WeightedSum;
use probdedup::decision::derive_sim::ExpectedSimilarity;
use probdedup::decision::threshold::Thresholds;
use probdedup::decision::xmodel::SimilarityBasedModel;
use probdedup::entity::{ClusterStrategy, PipelineEntities};
use probdedup::eval::ClusterMetrics;
use probdedup::matching::vector::AttributeComparators;
use probdedup::model::format::{parse_xrelation, write_xrelation};
use probdedup::model::relation::XRelation;
use probdedup::model::schema::Schema;
use probdedup::model::snapshot::SnapshotError;
use probdedup::model::stats::RelationStats;
use probdedup::reduction::{KeyPart, KeySpec, RankingFunction, WorldSelection};
use probdedup::serve::server::{ServeConfig, Server};
use probdedup::textsim::JaroWinkler;

const USAGE: &str = "\
probdedup — duplicate detection in probabilistic data (Panse et al., ICDE 2010)

USAGE:
  probdedup generate --out-prefix PREFIX [--entities N] [--sources K] [--seed S]
      Write synthetic probabilistic sources PREFIX.sourceI.pxr and the
      ground truth PREFIX.truth (entity id per combined row).

  probdedup stats --input FILE.pxr
      Print the uncertainty profile of a relation.

  probdedup dedup --input FILE.pxr [--input FILE2.pxr ...]
      [--reduction full|snm-alternatives|snm-ranked|snm-multipass|blocking]
      [--key attr:len[,attr:len...]] [--window W]
      [--lambda T] [--mu T] [--threads N]
      [--shards K] [--memory-budget BYTES[k|m|g]]
      Run the one-shot pipeline and print decisions and duplicate clusters.
      With --shards > 1 the sharded out-of-core front door partitions the
      corpus by blocking-key hash / key-rank stripe, matches each shard
      independently, and merges — same result, bounded memory. A
      --memory-budget decomposes into cache/memo capacities and the
      external-sort and block-spill ceilings.

  probdedup ingest --input FILE.pxr [--input FILE2.pxr ...]
      (same options as dedup; plus --cache true|false, default true here)
      Feed the inputs one at a time through a persistent DedupSession:
      each batch is interned incrementally, only new-vs-resident candidate
      pairs are classified, and the merged result is printed at the end
      (identical partition to a one-shot dedup over the same inputs).

  probdedup entities --input FILE.pxr [--input FILE2.pxr ...]
      [--strategy components|correlation-greedy|correlation-repaired]
      [--truth FILE.truth]
      (same pipeline options as dedup)
      Run the pipeline, then resolve the pairwise verdicts into entity
      clusters: build the similarity-weighted match graph over the
      decided pairs and cluster it with the chosen strategy —
      connected components over Match edges (default), greedy
      correlation clustering, or greedy + a local-search repair pass
      that resolves inconsistent triangles. With --truth (the file
      `generate` writes) the predicted partition is scored against the
      ground truth with cluster-level pairwise precision/recall/F1 and
      closest-cluster F1.

  probdedup snapshot save --out FILE.snap --input FILE.pxr [...]
      (same pipeline options as ingest)
      Run a session over the inputs and persist its warm state —
      interner pools, similarity caches, key memos, decisions — to
      FILE.snap via an atomic crash-safe write.

  probdedup snapshot load --snapshot FILE.snap --input FILE.pxr [...]
      (same pipeline options as the save that wrote the snapshot)
      Re-open the session warm and rerun over the inputs: an unchanged
      corpus replays entirely from the snapshot (zero key renders).

  probdedup serve [--addr HOST:PORT] [--arity N]
      [--snapshot-dir DIR] [--autosave-secs S] [--wal-dir DIR]
      [--max-inflight N] [--request-timeout-secs S]
      (same pipeline options as ingest; --arity fixes the relation width,
      default 4, since the daemon builds its pipeline before any input)
      Run the HTTP serving front door: named warm sessions with dedup /
      ingest / query / partition / snapshot endpoints plus /stats,
      /health, /sessions and /shutdown. With --snapshot-dir, sessions
      autoload on boot and autosave on graceful shutdown (SIGTERM,
      ctrl-c, POST /shutdown) and every --autosave-secs. With --wal-dir,
      every accepted ingest/dedup batch is fsynced to NAME.wal *before*
      it mutates the session, and boot replays snapshot + journal tail —
      a kill -9 loses no acknowledged batch (the directory is probed for
      writability at boot; an unwritable one exits with code 6).
      --max-inflight bounds concurrently executing session requests
      (excess is shed with 503 + Retry-After); --request-timeout-secs
      sets the per-connection read/write deadline (default 60). Prints
      `listening on HOST:PORT` once ready (use port 0 for an ephemeral
      port).

COMMON PIPELINE OPTIONS (dedup / ingest / snapshot / serve):
  --reduction full|snm-alternatives|snm-ranked|snm-multipass|blocking
  --key attr:len[,attr:len...]   --window W
  --lambda T  --mu T  --threads N  --cache true|false
  --memo-capacity N   bound the session's pair-decision memo to N
                      entries (second-chance eviction; unbounded default)
  --memory-budget B   bound the pipeline's memory appetite to ~B bytes
                      (suffixes k/m/g; derives cache, memo and spill
                      ceilings — see dedup --shards)

EXIT CODES:
  0 success   2 usage error   3 I/O error   4 data parse error
  5 corrupt or mismatched snapshot   6 unusable write-ahead journal
";

/// A CLI failure with its exit code: distinct codes let scripts tell a
/// typo (2) from a missing file (3), a malformed relation (4) or a
/// corrupt/mismatched snapshot (5).
enum CliError {
    /// Bad flags, unknown subcommand, invalid option values.
    Usage(String),
    /// The operating system said no (missing file, permissions, disk).
    Io(String),
    /// An input file exists but does not parse as probabilistic data.
    Parse(String),
    /// A snapshot failed validation (corruption, version or config
    /// mismatch) — the file was not silently misread.
    Snapshot(String),
    /// The write-ahead journal is unusable: the `--wal-dir` is not
    /// writable, or a journal failed to open/replay at boot. Distinct
    /// from a plain I/O error so supervisors can tell "fix the disk /
    /// permissions" from "input file missing".
    Wal(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            Self::Usage(_) => 2,
            Self::Io(_) => 3,
            Self::Parse(_) => 4,
            Self::Snapshot(_) => 5,
            Self::Wal(_) => 6,
        }
    }

    fn message(&self) -> &str {
        match self {
            Self::Usage(m) | Self::Io(m) | Self::Parse(m) | Self::Snapshot(m) | Self::Wal(m) => m,
        }
    }
}

/// Classify a [`SnapshotError`]: the I/O layer failing to read the file is
/// an I/O error; everything else means the bytes themselves are bad.
fn snapshot_error(path: &str, e: SnapshotError) -> CliError {
    match e {
        SnapshotError::Io(io) => CliError::Io(format!("{path}: {io}")),
        other => CliError::Snapshot(format!("{path}: {other}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {}", err.message());
            if matches!(err, CliError::Usage(_)) {
                eprintln!("{USAGE}");
            }
            ExitCode::from(err.exit_code())
        }
    }
}

/// A tiny argument cursor: `--flag value` pairs after the subcommand.
struct Args {
    items: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, CliError> {
        let mut items = Vec::new();
        let mut it = raw.iter();
        while let Some(flag) = it.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| CliError::Usage(format!("expected --flag, got {flag:?}")))?;
            let value = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
            items.push((name.to_string(), value.clone()));
        }
        Ok(Self { items })
    }

    fn all(&self, name: &str) -> Vec<&str> {
        self.items
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.all(name).into_iter().next_back()
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name}: cannot parse {v:?}"))),
            None => Ok(default),
        }
    }
}

fn run() -> Result<(), CliError> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = raw
        .split_first()
        .ok_or_else(|| CliError::Usage("missing subcommand".to_string()))?;
    if cmd == "snapshot" {
        return cmd_snapshot(rest);
    }
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "stats" => cmd_stats(&args),
        "dedup" => cmd_dedup(&args),
        "entities" => cmd_entities(&args),
        "ingest" => cmd_ingest(&args),
        "serve" => cmd_serve(&args),
        other => Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
    }
}

fn cmd_generate(args: &Args) -> Result<(), CliError> {
    let prefix = args
        .get("out-prefix")
        .ok_or_else(|| CliError::Usage("--out-prefix is required".to_string()))?;
    let cfg = DatasetConfig {
        entities: args.get_parsed("entities", 500usize)?,
        sources: args.get_parsed("sources", 2usize)?,
        seed: args.get_parsed("seed", 42u64)?,
        ..DatasetConfig::default()
    };
    let ds = generate(&Dictionaries::people(), &cfg);
    for (i, rel) in ds.relations.iter().enumerate() {
        let path = format!("{prefix}.source{i}.pxr");
        std::fs::write(&path, write_xrelation(rel))
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        println!("wrote {path} ({} x-tuples)", rel.len());
    }
    let truth_path = format!("{prefix}.truth");
    let truth_lines: Vec<String> = (0..ds.truth.len())
        .map(|row| format!("{row} {}", ds.truth.entity_of(row)))
        .collect();
    std::fs::write(&truth_path, truth_lines.join("\n") + "\n")
        .map_err(|e| CliError::Io(format!("{truth_path}: {e}")))?;
    println!(
        "wrote {truth_path} ({} rows, {} entities, {} true duplicate pairs)",
        ds.truth.len(),
        ds.truth.entity_count(),
        ds.truth.true_pair_count()
    );
    Ok(())
}

fn load_relation(path: &str) -> Result<XRelation, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    parse_xrelation(&text).map_err(|e| CliError::Parse(format!("{path}: {e}")))
}

fn cmd_stats(args: &Args) -> Result<(), CliError> {
    let path = args
        .get("input")
        .ok_or_else(|| CliError::Usage("--input is required".to_string()))?;
    let rel = load_relation(path)?;
    println!("{path}:");
    println!("{}", RelationStats::for_xrelation(&rel));
    Ok(())
}

fn parse_key(spec: &str, schema: &probdedup::model::schema::Schema) -> Result<KeySpec, CliError> {
    let mut parts = Vec::new();
    for item in spec.split(',') {
        let (attr, len) = item
            .split_once(':')
            .ok_or_else(|| CliError::Usage(format!("key part {item:?} needs attr:len")))?;
        let idx = schema
            .index_of(attr.trim())
            .ok_or_else(|| CliError::Usage(format!("unknown key attribute {attr:?}")))?;
        let len: usize = len
            .trim()
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid prefix length in {item:?}")))?;
        parts.push(KeyPart::prefix(idx, len));
    }
    if parts.is_empty() {
        return Err(CliError::Usage("key must have at least one part".into()));
    }
    Ok(KeySpec::new(parts))
}

/// Shared option parsing of `dedup` / `ingest`: load the inputs and build
/// the configured pipeline over their schema. `--cache true|false`
/// toggles the interned similarity cache (default: `default_cache` —
/// off for one-shot dedup, on for sessions, where the warm caches are
/// the point).
fn parse_pipeline(
    args: &Args,
    default_cache: bool,
) -> Result<(Vec<String>, Vec<XRelation>, DedupPipeline), CliError> {
    let inputs: Vec<String> = args.all("input").iter().map(|s| s.to_string()).collect();
    if inputs.is_empty() {
        return Err(CliError::Usage("at least one --input is required".into()));
    }
    let relations: Vec<XRelation> = inputs
        .iter()
        .map(|p| load_relation(p))
        .collect::<Result<_, _>>()?;
    let schema = relations[0].schema().clone();
    let pipeline = build_pipeline(args, &schema, default_cache)?;
    Ok((inputs, relations, pipeline))
}

/// Build the configured pipeline over `schema` from the shared flags —
/// the input-driven commands pass the schema of their first input,
/// `serve` a placeholder schema of `--arity` width (only arity and
/// attribute names for `--key` matter to the pipeline).
fn build_pipeline(
    args: &Args,
    schema: &probdedup::model::schema::Schema,
    default_cache: bool,
) -> Result<DedupPipeline, CliError> {
    let window = args.get_parsed("window", 6usize)?;
    let key = match args.get("key") {
        Some(spec) => parse_key(spec, schema)?,
        None => {
            // Default: 3-prefix of the first attribute + 2-prefix of the
            // last text attribute.
            KeySpec::new(vec![
                KeyPart::prefix(0, 3),
                KeyPart::prefix(schema.arity().saturating_sub(2).max(1), 2),
            ])
        }
    };
    let reduction = match args.get("reduction").unwrap_or("snm-alternatives") {
        "full" => ReductionStrategy::Full,
        "snm-alternatives" => ReductionStrategy::SortingAlternatives { spec: key, window },
        "snm-ranked" => ReductionStrategy::RankedKeys {
            spec: key,
            window,
            ranking: RankingFunction::ExpectedScore,
        },
        "snm-multipass" => ReductionStrategy::MultipassWorlds {
            spec: key,
            window,
            selection: WorldSelection::DiverseTopK { k: 3, pool: 32 },
        },
        "blocking" => ReductionStrategy::BlockingAlternatives { spec: key },
        other => return Err(CliError::Usage(format!("unknown reduction {other:?}"))),
    };

    let lambda = args.get_parsed("lambda", 0.72f64)?;
    let mu = args.get_parsed("mu", 0.82f64)?;
    let threads = args.get_parsed("threads", 4usize)?;
    let weights: Vec<f64> = std::iter::once(3.0)
        .chain(std::iter::repeat_n(1.0, schema.arity() - 1))
        .collect();
    let memo_capacity = match args.get("memo-capacity") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| CliError::Usage(format!("--memo-capacity: cannot parse {v:?}")))?,
        ),
        None => None,
    };
    let memory_budget = match args.get("memory-budget") {
        Some(v) => Some(parse_bytes(v)?),
        None => None,
    };
    let pipeline = DedupPipeline::builder()
        .preparation(Preparation::standard_all(schema.arity()))
        .comparators(AttributeComparators::uniform(schema, JaroWinkler::new()))
        .model(Arc::new(SimilarityBasedModel::new(
            Arc::new(WeightedSum::normalized(weights).map_err(|e| CliError::Usage(e.to_string()))?),
            Arc::new(ExpectedSimilarity),
            Thresholds::new(lambda, mu).map_err(|e| CliError::Usage(e.to_string()))?,
        )))
        .reduction(reduction)
        .threads(threads)
        .cache_similarities(args.get_parsed("cache", default_cache)?)
        .decision_memo_capacity(memo_capacity)
        .memory_budget(memory_budget)
        .build();
    Ok(pipeline)
}

/// Parse a byte count with optional `k`/`m`/`g` suffix (`64m`, `2g`,
/// `100000`).
fn parse_bytes(v: &str) -> Result<u64, CliError> {
    let v = v.trim();
    let (digits, factor) = match v.char_indices().last() {
        Some((i, 'k') | (i, 'K')) => (&v[..i], 1u64 << 10),
        Some((i, 'm') | (i, 'M')) => (&v[..i], 1u64 << 20),
        Some((i, 'g') | (i, 'G')) => (&v[..i], 1u64 << 30),
        _ => (v, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| CliError::Usage(format!("--memory-budget: cannot parse {v:?}")))?;
    n.checked_mul(factor)
        .ok_or_else(|| CliError::Usage(format!("--memory-budget: {v:?} overflows")))
}

/// Print a [`DedupResult`]: summary, matches, possibles, clusters.
fn print_result(result: &probdedup::core::pipeline::DedupResult) {
    println!("{}", result.summary());
    println!("matches:");
    for d in result.matches() {
        println!(
            "  {} ↔ {}  (sim {:.3})",
            result.handle(d.pair.0),
            result.handle(d.pair.1),
            d.similarity
        );
    }
    println!("possible matches (clerical review):");
    for d in result.possible_matches() {
        println!(
            "  {} ↔ {}  (sim {:.3})",
            result.handle(d.pair.0),
            result.handle(d.pair.1),
            d.similarity
        );
    }
    println!("duplicate clusters:");
    for cluster in &result.clusters {
        let members: Vec<String> = cluster
            .iter()
            .map(|&r| result.handle(r).to_string())
            .collect();
        println!("  {{{}}}", members.join(", "));
    }
}

fn cmd_dedup(args: &Args) -> Result<(), CliError> {
    let (_, relations, pipeline) = parse_pipeline(args, false)?;
    let refs: Vec<&XRelation> = relations.iter().collect();
    let shards = args.get_parsed("shards", 1usize)?;
    let result = if shards > 1 {
        let (result, stats) =
            pipeline
                .sharded(shards)
                .run_with_stats(&refs)
                .map_err(|e| match e {
                    probdedup::core::shard::ShardError::Io(io) => CliError::Io(io.to_string()),
                    probdedup::core::shard::ShardError::Model(m) => CliError::Parse(m.to_string()),
                })?;
        let (max, min) = stats.skew();
        println!(
            "sharded over {} shards: {} candidates (skew max {max} / min {min}), \
             {} sort runs spilled ({} bytes), {} blocks ({} spilled)",
            stats.shards,
            result.candidates,
            stats.sort.runs_spilled,
            stats.sort.spilled_bytes,
            stats.blocks.blocks,
            stats.blocks.spilled_blocks,
        );
        result
    } else {
        pipeline
            .run(&refs)
            .map_err(|e| CliError::Parse(e.to_string()))?
    };
    print_result(&result);
    Ok(())
}

/// `entities`: one-shot pipeline run, then entity resolution over the
/// pairwise verdicts. With `--truth` the predicted partition is scored
/// against the ground-truth clustering.
fn cmd_entities(args: &Args) -> Result<(), CliError> {
    let strategy = match args.get("strategy") {
        None => ClusterStrategy::Components,
        Some(name) => ClusterStrategy::from_name(name).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown strategy {name:?} (expected components, \
                 correlation-greedy or correlation-repaired)"
            ))
        })?,
    };
    let (_, relations, pipeline) = parse_pipeline(args, false)?;
    let refs: Vec<&XRelation> = relations.iter().collect();
    let (result, resolution) = pipeline
        .run_entities(&refs, strategy)
        .map_err(|e| CliError::Parse(e.to_string()))?;
    println!("{}", result.summary());
    println!("{}", resolution.summary());
    println!("entity clusters (size ≥ 2):");
    for cluster in resolution.duplicate_clusters() {
        let members: Vec<String> = cluster
            .iter()
            .map(|&r| result.handle(r).to_string())
            .collect();
        println!("  {{{}}}", members.join(", "));
    }
    if let Some(path) = args.get("truth") {
        let truth = load_truth(path, resolution.rows)?;
        let metrics = ClusterMetrics::from_partitions(
            &resolution.clusters,
            &truth.true_clusters(),
            resolution.rows,
        );
        println!("vs truth: {metrics}");
    }
    Ok(())
}

/// Parse the `row entity` lines `generate` writes as `PREFIX.truth`.
fn load_truth(path: &str, rows: usize) -> Result<GroundTruth, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    let mut entity = vec![u64::MAX; rows];
    let mut seen = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let bad = || CliError::Parse(format!("{path}:{}: expected `row entity`", lineno + 1));
        let (row, ent) = line.split_once(' ').ok_or_else(bad)?;
        let row: usize = row.parse().map_err(|_| bad())?;
        let ent: u64 = ent.trim().parse().map_err(|_| bad())?;
        if row >= rows {
            return Err(CliError::Parse(format!(
                "{path}:{}: row {row} out of range for {rows} input rows",
                lineno + 1
            )));
        }
        entity[row] = ent;
        seen += 1;
    }
    if seen != rows || entity.contains(&u64::MAX) {
        return Err(CliError::Parse(format!(
            "{path}: truth covers {seen} of {rows} input rows"
        )));
    }
    Ok(GroundTruth::new(entity))
}

/// The session front door: ingest the input files one at a time, printing
/// what each batch added, then the merged resident result. The final
/// partition is identical to `dedup` over the same inputs (the session's
/// split-invariance contract).
fn cmd_ingest(args: &Args) -> Result<(), CliError> {
    let (inputs, relations, pipeline) = parse_pipeline(args, true)?;
    let mut session = pipeline.session();
    for (path, rel) in inputs.iter().zip(&relations) {
        let step = session
            .ingest(rel)
            .map_err(|e| CliError::Parse(e.to_string()))?;
        println!("ingested {path}: {}", step.summary());
    }
    println!(
        "session: {} key renders, {} interned values, {} pairs classified",
        session.key_render_count(),
        session.interned_value_count(),
        session.decided_count(),
    );
    print_result(&session.result());
    Ok(())
}

/// `serve`: run the HTTP serving front door until a graceful shutdown
/// (SIGTERM, ctrl-c, or a client `POST /shutdown`). The pipeline is
/// built up front over a placeholder schema of `--arity` width — the
/// daemon has no inputs at boot; clients post relations — so `--key`
/// refers to attributes as `attr0..attrN-1`.
fn cmd_serve(args: &Args) -> Result<(), CliError> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878").to_string();
    let arity = args.get_parsed("arity", 4usize)?;
    if arity == 0 {
        return Err(CliError::Usage("--arity must be at least 1".into()));
    }
    let schema = Schema::new((0..arity).map(|i| format!("attr{i}")));
    let pipeline = build_pipeline(args, &schema, true)?;

    let mut config = ServeConfig::new(&addr, pipeline);
    if let Some(dir) = args.get("snapshot-dir") {
        config = config.snapshot_dir(dir);
    }
    if let Some(secs) = args.get("autosave-secs") {
        let secs: f64 = secs
            .parse()
            .map_err(|_| CliError::Usage(format!("--autosave-secs: cannot parse {secs:?}")))?;
        if secs <= 0.0 {
            return Err(CliError::Usage("--autosave-secs must be positive".into()));
        }
        if config.snapshot_dir.is_none() {
            return Err(CliError::Usage(
                "--autosave-secs requires --snapshot-dir".into(),
            ));
        }
        config = config.autosave_interval(std::time::Duration::from_secs_f64(secs));
    }
    if let Some(dir) = args.get("wal-dir") {
        config = config.wal_dir(dir);
    }
    if let Some(bound) = args.get("max-inflight") {
        let bound: u64 = bound
            .parse()
            .map_err(|_| CliError::Usage(format!("--max-inflight: cannot parse {bound:?}")))?;
        if bound == 0 {
            return Err(CliError::Usage(
                "--max-inflight must be at least 1 (0 would shed everything)".into(),
            ));
        }
        config = config.max_inflight(bound);
    }
    if let Some(secs) = args.get("request-timeout-secs") {
        let secs: f64 = secs.parse().map_err(|_| {
            CliError::Usage(format!("--request-timeout-secs: cannot parse {secs:?}"))
        })?;
        if secs <= 0.0 {
            return Err(CliError::Usage(
                "--request-timeout-secs must be positive".into(),
            ));
        }
        config = config.request_timeout(std::time::Duration::from_secs_f64(secs));
    }

    let server = Server::bind(config).map_err(|e| match e {
        probdedup::serve::ServeError::Snapshot(path, err) => {
            snapshot_error(&path.display().to_string(), err)
        }
        e @ (probdedup::serve::ServeError::WalDir(..) | probdedup::serve::ServeError::Wal(..)) => {
            CliError::Wal(e.to_string())
        }
        other => CliError::Io(other.to_string()),
    })?;
    let restored = server.restored_sessions();
    if !restored.is_empty() {
        println!(
            "restored {} session(s): {}",
            restored.len(),
            restored.join(", ")
        );
    }
    // Scripts (the CI smoke test) scrape this line for the bound port.
    println!("listening on {}", server.local_addr());
    let summary = server.run();
    println!(
        "shut down: {} requests served, {} session(s) saved",
        summary.requests, summary.sessions_saved
    );
    Ok(())
}

/// Dispatch `snapshot save` / `snapshot load` — session persistence from
/// the command line.
fn cmd_snapshot(rest: &[String]) -> Result<(), CliError> {
    let (verb, rest) = rest.split_first().ok_or_else(|| {
        CliError::Usage("snapshot needs a verb: snapshot save | snapshot load".to_string())
    })?;
    let args = Args::parse(rest)?;
    match verb.as_str() {
        "save" => cmd_snapshot_save(&args),
        "load" => cmd_snapshot_load(&args),
        other => Err(CliError::Usage(format!(
            "unknown snapshot verb {other:?} (expected save or load)"
        ))),
    }
}

/// `snapshot save`: run a session over the inputs, then persist its warm
/// state atomically to `--out`.
fn cmd_snapshot_save(args: &Args) -> Result<(), CliError> {
    let out = args
        .get("out")
        .ok_or_else(|| CliError::Usage("--out is required".to_string()))?
        .to_string();
    let (_, relations, pipeline) = parse_pipeline(args, true)?;
    let refs: Vec<&XRelation> = relations.iter().collect();
    let mut session = pipeline.session();
    let result = session
        .run(&refs)
        .map_err(|e| CliError::Parse(e.to_string()))?;
    session.save(&out).map_err(|e| snapshot_error(&out, e))?;
    println!(
        "saved {out}: {} rows, {} decided pairs, {} interned values, {} key renders",
        session.rows(),
        session.decided_count(),
        session.interned_value_count(),
        session.key_render_count(),
    );
    print_result(&result);
    Ok(())
}

/// `snapshot load`: re-open a saved session warm (the pipeline options
/// must match the save) and rerun over the inputs — an unchanged corpus
/// replays with zero key renders.
fn cmd_snapshot_load(args: &Args) -> Result<(), CliError> {
    let path = args
        .get("snapshot")
        .ok_or_else(|| CliError::Usage("--snapshot is required".to_string()))?
        .to_string();
    let (_, relations, pipeline) = parse_pipeline(args, true)?;
    let mut session = DedupSession::open(&path, &pipeline).map_err(|e| snapshot_error(&path, e))?;
    let renders_at_open = session.key_render_count();
    println!(
        "loaded {path}: {} rows, {} decided pairs, {} interned values",
        session.rows(),
        session.decided_count(),
        session.interned_value_count(),
    );
    let refs: Vec<&XRelation> = relations.iter().collect();
    let result = session
        .run(&refs)
        .map_err(|e| CliError::Parse(e.to_string()))?;
    println!(
        "warm rerun: {} key renders",
        session.key_render_count() - renders_at_open
    );
    print_result(&result);
    Ok(())
}
