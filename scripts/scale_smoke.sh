#!/usr/bin/env bash
# Scale smoke test of the sharded out-of-core front door, driven through
# the release CLI the way an operator would: generate a 20k-entity
# two-source corpus, dedup it sharded under a deliberately small
# --memory-budget, dedup it unsharded as the reference, and assert the
# merged sharded result is identical (modulo the sharded run's extra
# shard-stats line).
#
#   cargo build --release && scripts/scale_smoke.sh
#
# Environment: BIN overrides the binary under test (default
# target/release/probdedup); ENTITIES / SHARDS / BUDGET override the
# corpus size, shard count and memory budget.
set -euo pipefail

BIN=${BIN:-target/release/probdedup}
ENTITIES=${ENTITIES:-20000}
SHARDS=${SHARDS:-8}
BUDGET=${BUDGET:-1m}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "FAIL: $1" >&2
    exit 1
}

echo "== generate: $ENTITIES entities across 2 sources"
"$BIN" generate --out-prefix "$WORK/scale" --entities "$ENTITIES" --sources 2 --seed 20100301

COMMON=(--input "$WORK/scale.source0.pxr" --input "$WORK/scale.source1.pxr"
        --reduction snm-alternatives --window 6 --threads 4)

echo "== dedup: unsharded reference"
"$BIN" dedup "${COMMON[@]}" > "$WORK/reference.out"

echo "== dedup: $SHARDS shards under --memory-budget $BUDGET"
"$BIN" dedup "${COMMON[@]}" --shards "$SHARDS" --memory-budget "$BUDGET" \
    > "$WORK/sharded.out"

grep -q "^sharded over $SHARDS shards:" "$WORK/sharded.out" \
    || fail "sharded run did not report shard stats"
grep "^sharded over" "$WORK/sharded.out"

# The budget must be tight enough that the external sort really went
# out of core (its run buffer is ~budget/4 ÷ 24 bytes per entry, so the
# default 1m spills well below the default 20k entities).
grep -q " 0 sort runs spilled" "$WORK/sharded.out" \
    && fail "budget $BUDGET did not force the external sort to spill"

# Everything below the stats line must be byte-identical to the
# unsharded run: same candidates, same decisions, same clusters.
grep -v "^sharded over" "$WORK/sharded.out" > "$WORK/sharded.clean"
diff -u "$WORK/reference.out" "$WORK/sharded.clean" \
    || fail "sharded result differs from the unsharded reference"

echo "PASS: sharded merge identical to the unsharded reference"
