#!/usr/bin/env bash
# End-to-end smoke test of the serving front door, driven exactly the
# way an operator would: boot the release daemon over a fixture corpus,
# exercise every endpoint with curl, SIGTERM it, restart over the
# autosaved snapshots, and assert the warm restart — identical partition
# body and zero key renders since open.
#
#   cargo build --release && scripts/serve_smoke.sh
#
# Environment: BIN overrides the binary under test (default
# target/release/probdedup).
set -euo pipefail

BIN=${BIN:-target/release/probdedup}
WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $1" >&2
    for log in "$WORK"/serve*.log; do
        [ -f "$log" ] && { echo "--- $log ---" >&2; cat "$log" >&2; }
    done
    exit 1
}

# Boot the daemon with the given log file; sets SERVER_PID and ADDR.
boot() {
    local log=$1
    "$BIN" serve --addr 127.0.0.1:0 --arity 4 --snapshot-dir "$WORK/snaps" \
        --wal-dir "$WORK/wal" \
        >"$log" 2>&1 &
    SERVER_PID=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR=$(sed -n 's/^listening on //p' "$log" | head -n1)
        [ -n "$ADDR" ] && return 0
        kill -0 "$SERVER_PID" 2>/dev/null || fail "daemon exited during boot"
        sleep 0.1
    done
    fail "daemon never reported its listen address"
}

req() { curl -fsS --max-time 30 "$@"; }

echo "== fixture corpus"
"$BIN" generate --out-prefix "$WORK/census" --entities 60 --sources 2 --seed 7

echo "== first life: boot, ingest, query, stats, snapshot"
boot "$WORK/serve1.log"
req -X POST --data-binary @"$WORK/census.source0.pxr" \
    "http://$ADDR/sessions/census/ingest" | grep -q '"rows_added"' \
    || fail "ingest source0"
req -X POST --data-binary @"$WORK/census.source1.pxr" \
    "http://$ADDR/sessions/census/ingest" | grep -q '"rows_added"' \
    || fail "ingest source1"

PART1=$(req "http://$ADDR/sessions/census/partition")
echo "$PART1" | grep -q '"clusters"' || fail "partition body"

ENT1=$(req "http://$ADDR/sessions/census/entities?strategy=correlation-repaired")
echo "$ENT1" | grep -q '"entities"' || fail "entities body"
curl -s -o /dev/null -w '%{http_code}' \
    "http://$ADDR/sessions/census/entities?strategy=kmeans" | grep -q 400 \
    || fail "unknown strategy should 400"

req "http://$ADDR/sessions/census/query?i=0&j=1" | grep -q '"class"' \
    || fail "query endpoint"
req "http://$ADDR/health" | grep -q '"status": "ok"' || fail "health"
req "http://$ADDR/stats" | grep -q '"requests": ' || fail "stats"
req -X POST "http://$ADDR/sessions/census/snapshot" | grep -q '"bytes"' \
    || fail "explicit snapshot"

# Error paths must answer with errors, not kill the daemon.
curl -s -o /dev/null -w '%{http_code}' \
    "http://$ADDR/sessions/nope/partition" | grep -q 404 \
    || fail "missing session should 404"
curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary 'not a relation' \
    "http://$ADDR/sessions/census/ingest" | grep -q 400 \
    || fail "bad body should 400"

echo "== graceful SIGTERM triggers autosave"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "daemon exited non-zero on SIGTERM"
SERVER_PID=""
grep -q 'session(s) saved' "$WORK/serve1.log" || fail "no shutdown autosave line"
[ -f "$WORK/snaps/census.snap" ] || fail "census.snap not written"

echo "== second life: warm restart from the autosaved snapshot"
boot "$WORK/serve2.log"
grep -q 'restored 1 session(s): census' "$WORK/serve2.log" \
    || fail "restart did not restore the session"

PART2=$(req "http://$ADDR/sessions/census/partition")
[ "$PART1" = "$PART2" ] || fail "partition changed across restart:
  before: $PART1
  after:  $PART2"

# The entity resolution was memoized into the session before the
# snapshot (section 9), so the restarted daemon must serve the
# byte-identical body without re-clustering.
ENT2=$(req "http://$ADDR/sessions/census/entities?strategy=correlation-repaired")
[ "$ENT1" = "$ENT2" ] || fail "entity resolution changed across restart:
  before: $ENT1
  after:  $ENT2"

# Drive reads through the restored warm state, then assert nothing
# re-rendered: the restore rebuilt pools/tables without key renders and
# the queries answered from the decision memo and warm caches.
for pair in "0 1" "2 5" "10 20"; do
    set -- $pair
    req "http://$ADDR/sessions/census/query?i=$1&j=$2" >/dev/null \
        || fail "post-restart query $1,$2"
done
req "http://$ADDR/stats" | grep -q '"key_renders_since_open": 0' \
    || fail "warm restart re-rendered keys"

echo "== client-driven graceful shutdown"
req -X POST "http://$ADDR/shutdown" | grep -q 'shutting down' || fail "shutdown"
wait "$SERVER_PID" || fail "daemon exited non-zero after /shutdown"
SERVER_PID=""
grep -q 'session(s) saved' "$WORK/serve2.log" || fail "no autosave on /shutdown"

echo "== third life: kill -9 mid-ingest loses nothing (the WAL contract)"
boot "$WORK/serve3.log"
# This batch is acknowledged (the journal fsynced it) but never
# snapshotted — the only copy outlives the crash in $WORK/wal.
req -X POST --data-binary @"$WORK/census.source0.pxr" \
    "http://$ADDR/sessions/fresh/ingest" | grep -q '"rows_added"' \
    || fail "ingest into fresh session"
PART3=$(req "http://$ADDR/sessions/fresh/partition")
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

boot "$WORK/serve4.log"
PART4=$(req "http://$ADDR/sessions/fresh/partition")
[ "$PART3" = "$PART4" ] || fail "kill -9 lost an acknowledged batch:
  before: $PART3
  after:  $PART4"
STATS=$(req "http://$ADDR/stats")
echo "$STATS" | grep -q '"journal_replayed_records": 0' \
    && fail "recovery must report replayed journal records: $STATS"
echo "$STATS" | grep -q '"journal_replayed_records": ' \
    || fail "stats missing journal_replayed_records: $STATS"
req -X POST "http://$ADDR/shutdown" >/dev/null || fail "final shutdown"
wait "$SERVER_PID" || fail "daemon exited non-zero after final shutdown"
SERVER_PID=""

echo "serve smoke: OK"
